//! Scenario-conformance harness: the campaign contracts every registered
//! scenario must uphold, checked uniformly across the whole registry.
//!
//! A scenario that joins the registry (see `cb_bench::registry`) inherits
//! three promises the rest of the tooling builds on:
//!
//! 1. **Replay determinism** — running the same `(seed, plan)` twice
//!    produces the same fingerprint, byte-identical masked provenance, and
//!    identical telemetry. This is what makes failure artifacts replayable
//!    and `trace explain/blame` trustworthy.
//! 2. **Worker-count invariance** — a campaign's outcome (which seeds
//!    passed, which failed with what fingerprint, total events) is a pure
//!    function of `(scenario, seeds, plan)`; the thread count used to sweep
//!    must not leak in.
//! 3. **Well-formed provenance** — the exported span graph is acyclic,
//!    violation spans anchor to retained parents, and when nothing was
//!    evicted every parent edge resolves.
//!
//! New scenarios get these checks for free by registering; a scenario that
//! can't pass them has no business in the campaign runner.

use cb_bench::registry::{all_scenarios, scenario_names, workload_arm};
use cb_harness::prelude::*;
use cb_trace::{is_acyclic, SpanIndex, SpanKind};
use cb_workload::WorkloadProfile;

/// Telemetry digest with the wall-clock metrics masked out: histograms
/// keyed `*_wall_ns` time the host machine, not the simulation, and are
/// nondeterministic by design (same reason provenance masks `wall_ns`).
/// Everything else — counters, gauges, sim-clock histograms — must be a
/// pure function of `(seed, plan)`.
fn masked_telemetry_digest(reg: &Registry) -> String {
    let mut out = String::new();
    for (k, v) in reg.counters() {
        out.push_str(&format!("c {k}={v}\n"));
    }
    for (k, v) in reg.gauges() {
        out.push_str(&format!("g {k}={v}\n"));
    }
    for (k, h) in reg.hists() {
        if k.contains("wall_ns") {
            // Deterministic in count only; values time the host.
            out.push_str(&format!("h {k} count={}\n", h.count()));
        } else if h.is_empty() {
            out.push_str(&format!("h {k} empty\n"));
        } else {
            out.push_str(&format!(
                "h {k} count={} min={} max={} p50={} p99={}\n",
                h.count(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99)
            ));
        }
    }
    out
}

/// Seeds swept per scenario. Small (tier-1 runs in debug) but enough to mix
/// passing and failing runs on the fault-injected scenarios.
const SEEDS: u64 = 4;
const BASE_SEED: u64 = 1;

/// Contracts 1 and 3: per `(scenario, seed)`, two direct runs under the
/// scenario's default plan must agree byte-for-byte, and each report's
/// provenance graph must be structurally sound.
#[test]
fn replay_is_deterministic_and_provenance_well_formed() {
    for scenario in all_scenarios() {
        for seed in BASE_SEED..BASE_SEED + SEEDS {
            let plan = scenario.default_plan(seed);
            let a = scenario.run(seed, &plan);
            let b = scenario.run(seed, &plan);
            let tag = format!("{} seed {seed}", scenario.name());

            assert_eq!(a.fingerprint, b.fingerprint, "{tag}: fingerprint drift");
            assert_eq!(
                a.events_processed, b.events_processed,
                "{tag}: event count drift"
            );
            assert_eq!(
                a.provenance_masked_json().to_string_pretty(),
                b.provenance_masked_json().to_string_pretty(),
                "{tag}: masked provenance not byte-identical on replay"
            );
            assert_eq!(
                masked_telemetry_digest(&a.telemetry),
                masked_telemetry_digest(&b.telemetry),
                "{tag}: telemetry drift on replay"
            );
            let verdicts = |r: &RunReport| -> Vec<(String, bool)> {
                r.verdicts
                    .iter()
                    .map(|v| (v.name.clone(), v.passed))
                    .collect()
            };
            assert_eq!(verdicts(&a), verdicts(&b), "{tag}: verdict drift");

            // Contract 3 on the first report.
            let spans = &a.provenance;
            assert!(is_acyclic(spans), "{tag}: cycle in span parent edges");
            let index = SpanIndex::new(spans);
            for v in spans.iter().filter(|s| s.kind == SpanKind::Violation) {
                assert!(!v.parents.is_empty(), "{tag}: unanchored violation span");
                for p in &v.parents {
                    assert!(
                        index.get(*p).is_some(),
                        "{tag}: violation parent {p} not in tail"
                    );
                }
            }
            let non_synthetic = spans
                .iter()
                .filter(|s| s.kind != SpanKind::Violation)
                .count() as u64;
            if a.spans_evicted == 0 && non_synthetic == a.spans_recorded {
                for s in spans {
                    for p in &s.parents {
                        assert!(index.get(*p).is_some(), "{tag}: dangling parent {p}");
                    }
                }
            }
        }
    }
}

/// Contracts 1 and 2 under the open-loop workload arm: every registered
/// scenario must keep its promises when driven by the aggregate client
/// population too (`campaign --workload`). Replay must be byte-identical
/// (fingerprint, masked provenance, telemetry — which now carries the
/// `workload.*` counters and governor dwell histograms), and the campaign
/// outcome must stay invariant across 1/2/4/8 workers.
#[test]
fn workload_arm_keeps_replay_determinism_and_worker_invariance() {
    let profile = WorkloadProfile::by_name("steady").expect("steady profile");
    for name in scenario_names() {
        let scenario =
            workload_arm(name, &profile).unwrap_or_else(|| panic!("{name} has no workload arm"));
        let tag = format!("{name} (workload arm)");

        // Contract 1: two direct runs agree byte-for-byte.
        let seed = BASE_SEED;
        let plan = scenario.default_plan(seed);
        let a = scenario.run(seed, &plan);
        let b = scenario.run(seed, &plan);
        assert_eq!(a.fingerprint, b.fingerprint, "{tag}: fingerprint drift");
        assert_eq!(
            a.provenance_masked_json().to_string_pretty(),
            b.provenance_masked_json().to_string_pretty(),
            "{tag}: masked provenance not byte-identical on replay"
        );
        assert_eq!(
            masked_telemetry_digest(&a.telemetry),
            masked_telemetry_digest(&b.telemetry),
            "{tag}: telemetry drift on replay"
        );

        // Contract 2: outcome invariant across worker counts (2 seeds
        // keep the sweep debug-mode cheap; the stock-scenario test above
        // already covers the wider seed range).
        let mut digests: Vec<(usize, String)> = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let cfg = CampaignConfig {
                base_seed: BASE_SEED,
                seeds: 2,
                workers,
                check_determinism: false,
                shrink: false,
                artifact_dir: None,
                plan_override: None,
                keep_reports: false,
            };
            let outcome = run_campaign(scenario.as_ref(), &cfg);
            let failures: Vec<String> = outcome
                .failures
                .iter()
                .map(|f| format!("seed {} fp {}", f.report.seed, f.report.fingerprint))
                .collect();
            digests.push((
                workers,
                format!(
                    "passed={} failures={failures:?} events={}",
                    outcome.passed, outcome.total_events
                ),
            ));
        }
        for pair in digests.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "{tag}: campaign outcome differs between {} and {} workers",
                pair[0].0, pair[1].0
            );
        }
    }
}

/// Contract 2: a campaign's observable outcome must not depend on how many
/// worker threads swept it. Compares pass/fail sets (with per-failure
/// fingerprints), determinism flags, and total event counts across
/// 1-, 2-, 4-, and 8-worker sweeps of the same seed range.
#[test]
fn campaign_outcome_is_worker_count_invariant() {
    for scenario in all_scenarios() {
        let mut digests: Vec<(usize, String)> = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let cfg = CampaignConfig {
                base_seed: BASE_SEED,
                seeds: SEEDS,
                workers,
                check_determinism: false,
                shrink: false,
                artifact_dir: None,
                plan_override: None,
                keep_reports: false,
            };
            let outcome = run_campaign(scenario.as_ref(), &cfg);
            let failures: Vec<String> = outcome
                .failures
                .iter()
                .map(|f| {
                    format!(
                        "seed {} fp {} oracles {:?}",
                        f.report.seed,
                        f.report.fingerprint,
                        f.report.failing_oracles()
                    )
                })
                .collect();
            digests.push((
                workers,
                format!(
                    "passed={} failures={failures:?} nondet={:?} events={}",
                    outcome.passed, outcome.nondeterministic_seeds, outcome.total_events
                ),
            ));
        }
        for pair in digests.windows(2) {
            assert_eq!(
                pair[0].1,
                pair[1].1,
                "{}: campaign outcome differs between {} and {} workers",
                scenario.name(),
                pair[0].0,
                pair[1].0
            );
        }
    }
}
