//! Integration tests for decision provenance: the causal span graph that
//! campaign reports embed, and the blame/explain queries over it.
//!
//! Three layers:
//! 1. Property tests that the exported span graph is acyclic and
//!    parent-resolvable, and — crucially — **independent of the campaign
//!    worker count** (1/2/4/8 threads must record byte-identical masked
//!    provenance, the dual-clock discipline applied to spans).
//! 2. A seed-exact E11 regression: on the storm arm's recorded
//!    `tree.reachable` violation, `blame` walks from the synthesised
//!    violation span back to at least one originating lookahead decision,
//!    crossing nodes.
//! 3. Masked provenance is byte-identical across two runs of the same
//!    `(scenario, seed, plan)`.

use cb_harness::prelude::*;
use cb_harness::toy::RingScenario;
use cb_trace::{blame, explain, is_acyclic, SpanIndex, SpanKind};
use proptest::prelude::*;

/// The ring scenario's guaranteed violation: node 3 partitioned away,
/// never healed — its successor's heartbeats starve.
fn ring_violating_plan() -> FaultPlan {
    let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
    FaultPlan::none().partition(&[3], &others, 0, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn provenance_graph_is_acyclic_resolvable_and_worker_independent(seed in 1u64..200) {
        let scenario = RingScenario::default();
        let mut masked_exports: Vec<String> = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let cfg = CampaignConfig {
                base_seed: seed,
                seeds: 1,
                workers,
                check_determinism: false,
                shrink: false,
                artifact_dir: None,
                plan_override: Some(ring_violating_plan()),
                keep_reports: false,
            };
            let outcome = run_campaign(&scenario, &cfg);
            prop_assert_eq!(outcome.failures.len(), 1, "plan must violate");
            let report = &outcome.failures[0].report;
            let spans = &report.provenance;
            prop_assert!(!spans.is_empty());

            // Parent edges form a DAG (evicted parents are external roots).
            prop_assert!(is_acyclic(spans), "cycle in span parent edges");

            // Violation spans are synthesised with parents anchored to the
            // collected tail: every one of their parent edges must resolve.
            let index = SpanIndex::new(spans);
            let violations: Vec<_> = spans
                .iter()
                .filter(|s| s.kind == SpanKind::Violation)
                .collect();
            prop_assert!(!violations.is_empty(), "failing report must embed a violation span");
            for v in &violations {
                prop_assert!(!v.parents.is_empty());
                for p in &v.parents {
                    prop_assert!(index.get(*p).is_some(), "violation parent {p} not in tail");
                }
            }

            // When the tail holds every span ever recorded, *all* parent
            // edges must resolve — nothing was evicted or truncated.
            let non_synthetic = spans.iter().filter(|s| s.kind != SpanKind::Violation).count();
            if report.spans_evicted == 0 && non_synthetic as u64 == report.spans_recorded {
                for s in spans {
                    for p in &s.parents {
                        prop_assert!(index.get(*p).is_some(), "dangling parent {p}");
                    }
                }
            }

            masked_exports.push(report.provenance_masked_json().to_string_compact());
        }
        // The recorded span graph is a pure function of (seed, plan): the
        // worker count must not leak into it.
        prop_assert!(
            masked_exports.windows(2).all(|w| w[0] == w[1]),
            "masked provenance differs across campaign worker counts"
        );
    }
}

/// Seed-exact E11 regression: the storm arm (lookahead control, 20-state
/// deadline) under an unhealed partition of nodes 7 and 8 violates
/// `tree.reachable`; `blame` from the synthesised violation span must walk
/// the causal chain back to at least one originating lookahead decision,
/// crossing nodes on the way.
#[test]
fn e11_storm_blame_reaches_an_originating_decision() {
    let scenario = cb_randtree::RandTreeCampaign {
        lookahead: true,
        storm: true,
        deadline_states: 20,
        ..Default::default()
    };
    let plan = FaultPlan::from_spec("part:7.8|0.1.2.3.4.5.6.9.10.11.12.13.14@2000-never")
        .expect("plan spec");
    let report = scenario.run(1, &plan);
    assert!(
        report.failing_oracles().contains(&"tree.reachable"),
        "expected tree.reachable violation, got {:?}",
        report.failing_oracles()
    );

    let spans = &report.provenance;
    let violation = spans
        .iter()
        .find(|s| s.kind == SpanKind::Violation)
        .expect("failing report embeds a violation span");
    let chain = blame(spans, violation.id).expect("violation span is retained");
    assert!(
        !chain.decisions.is_empty(),
        "blame must reach at least one originating decision span"
    );
    assert!(
        chain.nodes.len() >= 2,
        "the causal chain must cross nodes, got {:?}",
        chain.nodes
    );
    // The reached decision explains itself: option table with a winner.
    let text = explain(spans, chain.decisions[0]).expect("decision is explainable");
    assert!(text.contains("decide:"), "{text}");
    assert!(text.contains("options:"), "{text}");
}

/// Masked provenance (wall clocks blanked) is byte-identical across two
/// independent runs of the same `(scenario, seed, plan)` — the property the
/// replay tail-equality check relies on.
#[test]
fn masked_provenance_is_byte_identical_across_runs() {
    let scenario = RingScenario::default();
    let plan = ring_violating_plan();
    let a = scenario.run(7, &plan);
    let b = scenario.run(7, &plan);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "scenario must be deterministic"
    );
    assert_eq!(
        a.provenance_masked_json().to_string_compact(),
        b.provenance_masked_json().to_string_compact(),
        "masked provenance must be byte-identical across replays"
    );
}
