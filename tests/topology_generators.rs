//! Property tests for the generated large-fleet topologies.
//!
//! The 10k-node campaign arms build their networks from seeded generators
//! (`transit_stub_exact`, `fat_tree`) instead of hand-written shapes.
//! These tests pin the three properties the campaigns rely on: the
//! generators produce exactly the requested host count, every host pair is
//! connected with sane path properties, and the result is a pure function
//! of the generator seed — including when a campaign sweeps it from 1, 2,
//! 4, or 8 worker threads.

use cb_harness::prelude::*;
use cb_harness::telemetry_json;
use cb_simnet::prelude::*;
use cb_simnet::rng::SimRng;
use proptest::prelude::*;

/// A seeded sample of path properties across the id range — cheap to
/// compare for equality without materializing an n² matrix.
fn path_sample(topo: &Topology, seed: u64) -> Vec<(u64, u64, f64, u32)> {
    let n = topo.host_count() as u64;
    let mut rng = SimRng::seed_from(seed);
    (0..64)
        .map(|_| {
            let a = NodeId(rng.gen_below(n) as u32);
            let b = NodeId(rng.gen_below(n) as u32);
            let p = topo.path(a, b);
            (p.latency.as_nanos(), p.bandwidth_bps, p.loss, p.hops)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `transit_stub_exact` hits the requested size exactly — including
    /// sizes that don't divide evenly across stubs — and connects every
    /// sampled pair both ways.
    #[test]
    fn transit_stub_exact_is_size_exact_and_connected(
        seed in any::<u64>(),
        hosts in 2usize..2600,
    ) {
        let cfg = TransitStubConfig::balanced_for(hosts);
        let topo = Topology::transit_stub_exact(&cfg, hosts, &mut SimRng::seed_from(seed));
        prop_assert_eq!(topo.host_count(), hosts);
        let n = hosts as u64;
        let mut rng = SimRng::seed_from(seed ^ 0xC0FFEE);
        for _ in 0..32 {
            let a = NodeId(rng.gen_below(n) as u32);
            let b = NodeId(rng.gen_below(n) as u32);
            let fwd = topo.path(a, b);
            let rev = topo.path(b, a);
            if a == b {
                continue;
            }
            prop_assert!(fwd.latency > SimDuration::ZERO, "{:?}->{:?} dark", a, b);
            prop_assert!(fwd.bandwidth_bps > 0);
            prop_assert!(fwd.loss < 1.0, "{:?}->{:?} fully lossy", a, b);
            prop_assert_eq!(fwd.latency, rev.latency, "asymmetric {:?}<->{:?}", a, b);
        }
    }

    /// `FatTreeConfig::for_hosts` always covers the request, and the built
    /// tree is size-exact, connected, and tiered (more hops across pods
    /// than within an edge).
    #[test]
    fn fat_tree_for_hosts_covers_and_connects(
        seed in any::<u64>(),
        hosts in 2usize..3000,
    ) {
        let cfg = FatTreeConfig::for_hosts(hosts);
        prop_assert!(cfg.capacity() >= hosts, "k={} too small for {}", cfg.k, hosts);
        let topo = Topology::fat_tree(&cfg, &mut SimRng::seed_from(seed));
        prop_assert_eq!(topo.host_count(), hosts);
        let n = hosts as u64;
        let mut rng = SimRng::seed_from(seed ^ 0xFA7);
        for _ in 0..32 {
            let a = NodeId(rng.gen_below(n) as u32);
            let b = NodeId(rng.gen_below(n) as u32);
            if a == b {
                continue;
            }
            let p = topo.path(a, b);
            prop_assert!(p.latency > SimDuration::ZERO);
            prop_assert!(p.bandwidth_bps > 0);
            prop_assert!(p.hops >= 2 && p.hops <= 6, "fat-tree hops {}", p.hops);
        }
    }

    /// Generator output is a pure function of the seed: same seed, same
    /// paths; different seeds, different jittered latencies (for the
    /// families that jitter).
    #[test]
    fn generators_are_seed_deterministic(seed in any::<u64>(), hosts in 64usize..1500) {
        let cfg = TransitStubConfig::balanced_for(hosts);
        let a = Topology::transit_stub_exact(&cfg, hosts, &mut SimRng::seed_from(seed));
        let b = Topology::transit_stub_exact(&cfg, hosts, &mut SimRng::seed_from(seed));
        prop_assert_eq!(path_sample(&a, 1), path_sample(&b, 1));

        let ft = FatTreeConfig::for_hosts(hosts);
        let fa = Topology::fat_tree(&ft, &mut SimRng::seed_from(seed));
        let fb = Topology::fat_tree(&ft, &mut SimRng::seed_from(seed));
        prop_assert_eq!(path_sample(&fa, 2), path_sample(&fb, 2));
    }
}

/// A campaign sweep's outcome — pass/fail verdicts, per-seed fingerprints
/// (exercised via `check_determinism`), event totals, and the merged
/// masked telemetry — must not depend on how many worker threads split
/// the seeds. This is what makes generated-topology campaigns replayable
/// from any machine.
#[test]
fn campaign_outcome_is_worker_count_invariant() {
    let run = |workers: usize| {
        let scenario = cb_gossip::GossipCampaign::default();
        let cfg = CampaignConfig {
            seeds: 8,
            base_seed: 100,
            workers,
            shrink: false,
            artifact_dir: None,
            ..Default::default()
        };
        let outcome = run_campaign(&scenario, &cfg);
        let failing: Vec<u64> = outcome.failures.iter().map(|f| f.report.seed).collect();
        (
            outcome.passed,
            failing,
            outcome.nondeterministic_seeds.clone(),
            outcome.total_events,
            telemetry_json(&outcome.telemetry.masked()).to_string_pretty(),
        )
    };
    let baseline = run(1);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            baseline,
            run(workers),
            "campaign outcome changed at {workers} workers"
        );
    }
}
