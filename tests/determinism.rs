//! Cross-crate determinism: a run is a pure function of its seed.
//!
//! Every layer of the stack — simulator, runtime, resolvers, applications —
//! draws randomness only from seeded streams, so identical seeds must yield
//! byte-identical traces and identical experiment outcomes. These tests
//! pin that property end to end; if any component starts consulting an
//! outside source of entropy (hash-map iteration order, wall clock, …),
//! they fail.

use cb_gossip::{run_gossip, GossipConfig, PeerStrategy};
use cb_paxos::{run_paxos, PaxosConfig, ProposerRegime};
use cb_randtree::{run_join, ScenarioConfig, Setup};
use cb_simnet::prelude::*;

#[test]
fn randtree_join_is_deterministic_per_seed() {
    for setup in Setup::ALL {
        let cfg = ScenarioConfig {
            nodes: 15,
            seed: 42,
            ..Default::default()
        };
        let a = run_join(&cfg, setup);
        let b = run_join(&cfg, setup);
        assert_eq!(a.after_join.max_depth, b.after_join.max_depth, "{setup:?}");
        assert_eq!(
            a.after_join.mean_depth, b.after_join.mean_depth,
            "{setup:?}"
        );
        assert_eq!(a.msgs_sent, b.msgs_sent, "{setup:?}");
        assert_eq!(a.decisions, b.decisions, "{setup:?}");
    }
}

#[test]
fn randtree_seeds_actually_matter() {
    let outcomes: Vec<u64> = (1..=8)
        .map(|seed| {
            let cfg = ScenarioConfig {
                nodes: 15,
                seed,
                ..Default::default()
            };
            run_join(&cfg, Setup::ChoiceRandom).msgs_sent
        })
        .collect();
    let mut distinct = outcomes.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() > 1,
        "eight seeds produced identical traffic: {outcomes:?}"
    );
}

#[test]
fn gossip_outcome_is_deterministic_per_seed() {
    let cfg = GossipConfig {
        nodes: 16,
        rumors: 3,
        horizon: SimDuration::from_secs(30),
        seed: 7,
        ..Default::default()
    };
    let a = run_gossip(&cfg, PeerStrategy::Resolved);
    let b = run_gossip(&cfg, PeerStrategy::Resolved);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.t90_secs, b.t90_secs);
    assert_eq!(a.bytes_sent, b.bytes_sent);
}

#[test]
fn paxos_outcome_is_deterministic_per_seed() {
    let cfg = PaxosConfig {
        clients: 4,
        commands_per_client: 10,
        horizon: SimDuration::from_secs(60),
        seed: 9,
        ..Default::default()
    };
    let a = run_paxos(&cfg, ProposerRegime::Resolved);
    let b = run_paxos(&cfg, ProposerRegime::Resolved);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.mean_latency_secs, b.mean_latency_secs);
    assert_eq!(a.per_replica_commits, b.per_replica_commits);
}

#[test]
fn raw_sim_trace_fingerprints_match() {
    struct Echo;
    impl Actor for Echo {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            let n = ctx.host_count() as u32;
            let to = NodeId(ctx.rng().gen_below(n as u64) as u32);
            if to != ctx.id() {
                ctx.send(to, 1);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: NodeId, msg: u8) {
            if msg < 4 {
                ctx.send(from, msg + 1);
            }
        }
    }
    let run = |seed: u64| {
        let topo = Topology::star(6, SimDuration::from_millis(3), 5_000_000);
        let mut sim = Sim::new(topo, seed, |_| Echo);
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(5));
        sim.trace().fingerprint()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
