//! Cross-crate determinism: a run is a pure function of its seed.
//!
//! Every layer of the stack — simulator, runtime, resolvers, applications —
//! draws randomness only from seeded streams, so identical seeds must yield
//! byte-identical traces and identical experiment outcomes. These tests
//! pin that property end to end; if any component starts consulting an
//! outside source of entropy (hash-map iteration order, wall clock, …),
//! they fail.

use cb_gossip::{run_gossip, GossipConfig, PeerStrategy};
use cb_paxos::{run_paxos, PaxosConfig, ProposerRegime};
use cb_randtree::{run_join, ScenarioConfig, Setup};
use cb_simnet::prelude::*;

#[test]
fn randtree_join_is_deterministic_per_seed() {
    for setup in Setup::ALL {
        let cfg = ScenarioConfig {
            nodes: 15,
            seed: 42,
            ..Default::default()
        };
        let a = run_join(&cfg, setup);
        let b = run_join(&cfg, setup);
        assert_eq!(a.after_join.max_depth, b.after_join.max_depth, "{setup:?}");
        assert_eq!(
            a.after_join.mean_depth, b.after_join.mean_depth,
            "{setup:?}"
        );
        assert_eq!(a.msgs_sent, b.msgs_sent, "{setup:?}");
        assert_eq!(a.decisions, b.decisions, "{setup:?}");
    }
}

#[test]
fn randtree_seeds_actually_matter() {
    let outcomes: Vec<u64> = (1..=8)
        .map(|seed| {
            let cfg = ScenarioConfig {
                nodes: 15,
                seed,
                ..Default::default()
            };
            run_join(&cfg, Setup::ChoiceRandom).msgs_sent
        })
        .collect();
    let mut distinct = outcomes.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() > 1,
        "eight seeds produced identical traffic: {outcomes:?}"
    );
}

#[test]
fn gossip_outcome_is_deterministic_per_seed() {
    let cfg = GossipConfig {
        nodes: 16,
        rumors: 3,
        horizon: SimDuration::from_secs(30),
        seed: 7,
        ..Default::default()
    };
    let a = run_gossip(&cfg, PeerStrategy::Resolved);
    let b = run_gossip(&cfg, PeerStrategy::Resolved);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.t90_secs, b.t90_secs);
    assert_eq!(a.bytes_sent, b.bytes_sent);
}

#[test]
fn paxos_outcome_is_deterministic_per_seed() {
    let cfg = PaxosConfig {
        clients: 4,
        commands_per_client: 10,
        horizon: SimDuration::from_secs(60),
        seed: 9,
        ..Default::default()
    };
    let a = run_paxos(&cfg, ProposerRegime::Resolved);
    let b = run_paxos(&cfg, ProposerRegime::Resolved);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.mean_latency_secs, b.mean_latency_secs);
    assert_eq!(a.per_replica_commits, b.per_replica_commits);
}

#[test]
fn campaign_run_is_deterministic_under_faults() {
    // The harness's replay guarantee: a scenario run is a pure function of
    // (seed, fault plan). Crash/restart, a healed partition, and a loss
    // window all in one plan; two fresh runs must agree byte-for-byte on
    // the trace fingerprint and on every oracle verdict.
    use cb_harness::prelude::*;
    use cb_harness::toy::RingScenario;

    let scenario = RingScenario::default();
    let others: Vec<u32> = (0..8u32).filter(|&i| i != 2 && i != 5).collect();
    let plan = FaultPlan::none()
        .crash(1, 300)
        .restart(1, 900)
        .partition(&[2, 5], &others, 400, Some(1_500))
        .loss(0.10, 200, 2_000);

    let a = scenario.run(1234, &plan);
    let b = scenario.run(1234, &plan);
    assert_eq!(a.fingerprint, b.fingerprint, "same seed+plan, same trace");
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.violated(), b.violated());
    assert_eq!(a.failing_oracles(), b.failing_oracles());

    let c = scenario.run(1235, &plan);
    assert_ne!(a.fingerprint, c.fingerprint, "a different seed must differ");
}

#[test]
fn campaign_plan_spec_round_trip_preserves_the_run() {
    // Replay goes through the artifact's spec string: parsing the rendered
    // plan back must reproduce the identical run.
    use cb_harness::prelude::*;
    use cb_harness::toy::RingScenario;

    let scenario = RingScenario::default();
    let plan = scenario.default_plan(7);
    let reparsed = FaultPlan::from_spec(&plan.to_spec()).expect("round trip");
    let a = scenario.run(7, &plan);
    let b = scenario.run(7, &reparsed);
    assert_eq!(a.fingerprint, b.fingerprint);
}

#[test]
fn artifact_telemetry_is_deterministic_after_wall_masking() {
    // The telemetry section of a campaign artifact must be byte-identical
    // across same-seed runs once the wall-clock (fingerprint-exempt)
    // metrics are masked — and the masking must not disturb the key set.
    use cb_harness::prelude::*;
    use cb_harness::telemetry_json;

    let scenario = cb_randtree::RandTreeCampaign::default();
    let plan = scenario.default_plan(11);
    let a = scenario.run(11, &plan);
    let b = scenario.run(11, &plan);
    assert_eq!(a.fingerprint, b.fingerprint, "trace fingerprints agree");

    // Decisions happened, so the registries are non-trivial.
    assert!(
        a.telemetry
            .counter(cb_telemetry::keys::CORE_DECISIONS_TOTAL)
            > 0,
        "randtree exposes choices; decisions expected"
    );
    // The raw sections contain real wall-clock samples and therefore differ…
    let wall = a
        .telemetry
        .hist(cb_telemetry::keys::CORE_DECISION_LATENCY_WALL_NS)
        .expect("wall histogram present");
    assert!(!wall.is_empty(), "wall-clock side was sampled");
    // …but masking blanks exactly the wall keys, making the rendered JSON
    // byte-identical.
    let ja = telemetry_json(&a.telemetry.masked()).to_string_pretty();
    let jb = telemetry_json(&b.telemetry.masked()).to_string_pretty();
    assert_eq!(ja, jb, "masked telemetry sections must be byte-identical");

    // Masking preserves the schema: same counter keys before and after.
    let keys_raw: Vec<&str> = a.telemetry.counters().map(|(k, _)| k).collect();
    let masked = a.telemetry.masked();
    let keys_masked: Vec<&str> = masked.counters().map(|(k, _)| k).collect();
    assert_eq!(keys_raw, keys_masked);

    // A different seed produces different deterministic telemetry (the
    // masked section is a function of the seed, not a constant).
    let plan2 = scenario.default_plan(12);
    let c = scenario.run(12, &plan2);
    let jc = telemetry_json(&c.telemetry.masked()).to_string_pretty();
    assert_ne!(ja, jc, "different seeds should differ even after masking");
}

#[test]
fn full_artifact_json_telemetry_section_is_well_formed() {
    // The embedded `telemetry` section of a run report parses back and
    // carries the required critical-path statistics.
    use cb_harness::prelude::*;

    let scenario = cb_randtree::RandTreeCampaign::default();
    let plan = scenario.default_plan(3);
    let report = scenario.run(3, &plan);
    let json = report.to_json();
    let text = json.to_string_pretty();
    let back = Json::parse(&text).expect("artifact JSON parses");
    let tel = back.get("telemetry").expect("telemetry section present");
    for section in ["counters", "gauges", "histograms", "summary"] {
        assert!(tel.get(section).is_some(), "missing {section}");
    }
    let summary = tel.get("summary").unwrap();
    assert!(summary.get("decisions").and_then(Json::as_u64).unwrap() > 0);
    assert!(summary
        .get("decision_p50_sim_us")
        .and_then(Json::as_u64)
        .is_some());
    assert!(summary
        .get("decision_p99_sim_us")
        .and_then(Json::as_u64)
        .is_some());
    // Cache hit rate is present as a key even when no cached resolver ran.
    assert!(summary.get("cache_hit_rate").is_some());
    let hists = tel.get("histograms").unwrap();
    let lat = hists
        .get(cb_telemetry::keys::CORE_DECISION_LATENCY_SIM_US)
        .expect("decision latency histogram");
    assert!(lat.get("count").and_then(Json::as_u64).unwrap() > 0);
}

#[test]
fn raw_sim_trace_fingerprints_match() {
    struct Echo;
    impl Actor for Echo {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            let n = ctx.host_count() as u32;
            let to = NodeId(ctx.rng().gen_below(n as u64) as u32);
            if to != ctx.id() {
                ctx.send(to, 1);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: NodeId, msg: u8) {
            if msg < 4 {
                ctx.send(from, msg + 1);
            }
        }
    }
    let run = |seed: u64| {
        let topo = Topology::star(6, SimDuration::from_millis(3), 5_000_000);
        let mut sim = Sim::new(topo, seed, |_| Echo);
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(5));
        sim.trace().fingerprint()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn ten_thousand_node_gossip_campaign_replays_byte_identically() {
    // The internet-scale arm: a 10 000-node fleet on a generated
    // transit-stub topology, running the hierarchical event wheel with
    // lite tracing (both engage automatically at this size). Two replays
    // of the same (seed, plan) must agree on the trace fingerprint and
    // render byte-identical campaign artifacts once the wall-clock
    // telemetry keys are masked. The horizon is far below the campaign
    // default so the test fits a debug-mode budget; the full 60s arm runs
    // in CI via `campaign --scenario gossip --nodes 10000`.
    use cb_harness::prelude::*;

    let scenario = cb_gossip::GossipCampaign {
        nodes: 10_000,
        horizon: SimTime::from_secs(3),
        ..Default::default()
    };
    let plan = scenario.default_plan(5);
    let a = scenario.run(5, &plan);
    let b = scenario.run(5, &plan);
    assert_eq!(a.fingerprint, b.fingerprint, "same seed, same trace");
    assert_eq!(a.events_processed, b.events_processed);
    assert!(
        a.events_processed > 100_000,
        "a 10k fleet should generate serious traffic, got {}",
        a.events_processed
    );

    // Full artifact byte-identity, wall-clock telemetry masked. Verdicts
    // ride along, so oracle evaluation is pinned too (whatever the
    // verdicts are at this short horizon, they must replay identically).
    let render = |r: cb_harness::RunReport| {
        let masked = r.telemetry.masked();
        r.with_telemetry(masked).to_json().to_string_pretty()
    };
    assert_eq!(
        render(a),
        render(b),
        "masked artifacts must be byte-identical"
    );
}
