//! Property-based tests over the core data structures and invariants.

use cb_core::choice::{ChoiceRequest, NullEvaluator, OptionDesc, Prediction, Resolver};
use cb_core::model::net::NetworkModel;
use cb_core::resolve::{BanditPolicy, LearnedResolver, RandomResolver};
use cb_mck::hash::fingerprint;
use cb_paxos::{Ballot, Command, MAX_REPLICAS};
use cb_simnet::metrics::Histogram;
use cb_simnet::rng::SimRng;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::{NodeId, Topology};
use proptest::prelude::*;

proptest! {
    // ---- simnet: time ----

    #[test]
    fn time_addition_is_monotone(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let t2 = t + SimDuration::from_nanos(d);
        prop_assert!(t2 >= t);
        prop_assert_eq!(t2 - t, SimDuration::from_nanos(d));
    }

    #[test]
    fn duration_display_parses_back_magnitudes(ns in 0u64..u64::MAX / 2) {
        // Display never panics and always ends with a unit suffix.
        let text = format!("{}", SimDuration::from_nanos(ns));
        prop_assert!(text.ends_with('s') || text.ends_with("ns") || text.ends_with("us"));
    }

    // ---- simnet: rng ----

    #[test]
    fn gen_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert!(rng.gen_below(bound) < bound);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(any::<u16>(), 0..64)) {
        let mut rng = SimRng::seed_from(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }

    #[test]
    fn sample_indices_distinct(seed in any::<u64>(), n in 1usize..50, frac in 0usize..=100) {
        let k = n * frac / 100;
        let mut rng = SimRng::seed_from(seed);
        let mut picks = rng.sample_indices(n, k);
        prop_assert_eq!(picks.len(), k);
        picks.sort_unstable();
        picks.dedup();
        prop_assert_eq!(picks.len(), k);
    }

    // ---- simnet: metrics ----

    #[test]
    fn histogram_quantiles_bounded_by_min_max(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().expect("nonempty");
        let hi = *values.iter().max().expect("nonempty");
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            prop_assert!(est >= lo && est <= hi, "q{q}: {est} outside [{lo}, {hi}]");
        }
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    #[test]
    fn histogram_merge_equals_bulk(a in prop::collection::vec(0u64..100_000, 0..100),
                                   b in prop::collection::vec(0u64..100_000, 0..100)) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.min(), hall.min());
        prop_assert_eq!(ha.max(), hall.max());
        prop_assert_eq!(ha.quantile(0.5), hall.quantile(0.5));
    }

    // ---- simnet: topology ----

    #[test]
    fn star_paths_symmetric(n in 2usize..20, latency_ms in 1u64..100) {
        let topo = Topology::star(n, SimDuration::from_millis(latency_ms), 1_000_000);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let ab = topo.path(NodeId(a), NodeId(b));
                let ba = topo.path(NodeId(b), NodeId(a));
                prop_assert_eq!(ab.latency, ba.latency);
                prop_assert_eq!(ab.bandwidth_bps, ba.bandwidth_bps);
            }
        }
    }

    #[test]
    fn transit_stub_paths_positive_and_symmetric(seed in any::<u64>()) {
        let cfg = cb_simnet::topology::TransitStubConfig::default();
        let mut rng = SimRng::seed_from(seed);
        let topo = Topology::transit_stub(&cfg, &mut rng);
        for a in topo.hosts() {
            for b in topo.hosts() {
                if a == b { continue; }
                let p = topo.path(a, b);
                prop_assert!(p.latency > SimDuration::ZERO);
                prop_assert!(p.bandwidth_bps > 0);
                prop_assert!((0.0..1.0).contains(&p.loss));
                prop_assert_eq!(p.latency, topo.path(b, a).latency);
            }
        }
    }

    // ---- mck: hashing ----

    #[test]
    fn fingerprint_is_a_function(v in prop::collection::vec(any::<u32>(), 0..64)) {
        prop_assert_eq!(fingerprint(&v), fingerprint(&v));
    }

    #[test]
    fn fingerprint_detects_single_bit_flips(mut v in prop::collection::vec(any::<u32>(), 1..64), idx in any::<prop::sample::Index>()) {
        let before = fingerprint(&v);
        let i = idx.index(v.len());
        v[i] ^= 1;
        prop_assert_ne!(before, fingerprint(&v));
    }

    // ---- core: network model ----

    #[test]
    fn confidence_is_monotone_in_age(half_life_s in 1u64..1000, age1 in 0u64..10_000, age2 in 0u64..10_000) {
        let mut net = NetworkModel::new(SimDuration::from_secs(half_life_s));
        net.observe_latency(NodeId(1), SimDuration::from_millis(10), SimTime::ZERO);
        let (a, b) = (age1.min(age2), age1.max(age2));
        let ca = net.confidence(NodeId(1), SimTime::from_secs(a));
        let cb = net.confidence(NodeId(1), SimTime::from_secs(b));
        prop_assert!(ca >= cb, "confidence rose with age: {ca} < {cb}");
        prop_assert!((0.0..=1.0).contains(&ca));
    }

    #[test]
    fn ewma_stays_within_sample_range(samples in prop::collection::vec(1u64..10_000, 1..50)) {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        let lo = *samples.iter().min().expect("nonempty");
        let hi = *samples.iter().max().expect("nonempty");
        for (i, &s) in samples.iter().enumerate() {
            net.observe_latency(NodeId(1), SimDuration::from_millis(s), SimTime::from_secs(i as u64));
        }
        let est = net.estimate(NodeId(1)).expect("estimate").latency;
        prop_assert!(est >= SimDuration::from_millis(lo), "{est} below {lo}ms");
        prop_assert!(est <= SimDuration::from_millis(hi), "{est} above {hi}ms");
    }

    // ---- core: resolvers ----

    #[test]
    fn resolvers_return_valid_indices(seed in any::<u64>(), n in 1usize..32) {
        let options: Vec<OptionDesc> = (0..n as u64).map(OptionDesc::key).collect();
        let req = ChoiceRequest::new("prop", &options);
        let mut random = RandomResolver::new(seed);
        let mut learned = LearnedResolver::new(BanditPolicy::Ucb1 { c: 1.0 }, seed);
        for _ in 0..8 {
            prop_assert!(random.resolve(&req, &mut NullEvaluator) < n);
            prop_assert!(learned.resolve(&req, &mut NullEvaluator) < n);
        }
    }

    #[test]
    fn prediction_ordering_is_antisymmetric(o1 in -1e6f64..1e6, o2 in -1e6f64..1e6, v1 in 0u64..5, v2 in 0u64..5) {
        let a = Prediction { objective: o1, violations: v1, states_explored: 0 };
        let b = Prediction { objective: o2, violations: v2, states_explored: 0 };
        prop_assert!(!(a.better_than(&b) && b.better_than(&a)));
    }

    // ---- paxos: ballots and commands ----

    #[test]
    fn ballot_round_trips(round in 0u64..1_000_000, proposer in 0u64..MAX_REPLICAS) {
        let b = Ballot::new(round, proposer);
        prop_assert_eq!(b.round(), round);
        prop_assert_eq!(b.proposer(), proposer);
        let higher = b.bump_for((proposer + 1) % MAX_REPLICAS);
        prop_assert!(higher > b);
    }

    #[test]
    fn ballots_totally_ordered_without_collisions(r1 in 0u64..100_000, p1 in 0u64..MAX_REPLICAS,
                                                  r2 in 0u64..100_000, p2 in 0u64..MAX_REPLICAS) {
        let a = Ballot::new(r1, p1);
        let b = Ballot::new(r2, p2);
        prop_assert_eq!(a == b, r1 == r2 && p1 == p2);
    }

    #[test]
    fn command_round_trips(client in any::<u32>(), seq in any::<u32>()) {
        let c = Command::new(NodeId(client), seq);
        prop_assert_eq!(c.client(), NodeId(client));
        prop_assert_eq!(c.seq(), seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // ---- heavier: whole-simulation invariants (fewer cases) ----

    #[test]
    fn randtree_join_always_valid(seed in 1u64..1000) {
        use cb_randtree::{run_join, ScenarioConfig, Setup};
        let cfg = ScenarioConfig { nodes: 9, seed, ..Default::default() };
        let out = run_join(&cfg, Setup::ChoiceRandom);
        prop_assert!(out.after_join.well_formed);
        prop_assert_eq!(out.after_join.reachable, 9);
        prop_assert!(out.after_join.max_degree <= cb_randtree::MAX_CHILDREN);
    }

    // ---- harness: fault-plan shrinking ----

    #[test]
    fn shrunk_plan_still_violates_and_is_a_subset(seed in 1u64..200,
                                                  noise_crash in 0u32..8,
                                                  noise_loss in 1u32..30,
                                                  with_healed_partition in any::<bool>()) {
        use cb_harness::prelude::*;
        use cb_harness::toy::RingScenario;

        let scenario = RingScenario::default();
        // The culprit: an unhealed partition isolating node 3 — guaranteed
        // to starve its successor's heartbeats and violate the oracle.
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
        let mut plan = FaultPlan::none()
            .partition(&[3], &others, 0, None)
            // Noise the shrinker should strip: a healed crash and a short
            // loss window don't affect the verdict by themselves.
            .crash(noise_crash % 8, 200)
            .restart(noise_crash % 8, 500)
            .loss(noise_loss as f64 / 100.0, 100, 600);
        if with_healed_partition {
            let others2: Vec<u32> = (0..8u32).filter(|&i| i != 6).collect();
            plan = plan.partition(&[6], &others2, 300, Some(900));
        }

        let report = scenario.run(seed, &plan);
        prop_assert!(report.violated(), "culprit plan must violate: {:?}", report.verdicts);

        let (shrunk, shrunk_report) = shrink_plan(&scenario, seed, &plan, &report);
        prop_assert!(shrunk_report.violated(), "shrunk plan no longer violates");
        prop_assert_eq!(shrunk_report.failing_oracles(), report.failing_oracles());
        prop_assert!(shrunk.is_subset_of(&plan), "shrunk {} not a subset of {}", shrunk, plan);
        prop_assert!(shrunk.len() <= plan.len());
        prop_assert!(!shrunk.is_empty(), "an empty plan cannot violate");
    }

    #[test]
    fn plan_spec_round_trips(n_crash in 0usize..3, n_loss in 0usize..3, seed in any::<u64>()) {
        use cb_harness::prelude::*;
        let mut plan = FaultPlan::none();
        let mut s = seed;
        for _ in 0..n_crash {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let node = (s >> 33) as u32 % 16;
            let at = (s >> 17) % 10_000;
            plan = plan.crash(node, at).restart(node, at + 1 + (s % 5_000));
        }
        for _ in 0..n_loss {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let from = (s >> 20) % 8_000;
            plan = plan.loss(((s >> 7) % 90 + 1) as f64 / 100.0, from, from + 1 + (s % 4_000));
        }
        let spec = plan.to_spec();
        let back = FaultPlan::from_spec(&spec).expect("parse back");
        prop_assert_eq!(back.to_spec(), spec);
        prop_assert!(back.is_subset_of(&plan) && plan.is_subset_of(&back));
    }

    #[test]
    fn reliable_transport_preserves_per_flow_order(seed in any::<u64>(), count in 1u32..30) {
        use cb_simnet::prelude::*;
        #[derive(Default)]
        struct Collect { got: Vec<u32> }
        impl Actor for Collect {
            type Msg = u32;
            fn on_message(&mut self, _c: &mut Ctx<'_, u32>, _f: NodeId, m: u32) {
                self.got.push(m);
            }
        }
        let topo = Topology::star(2, SimDuration::from_millis(2), 2_000_000);
        let mut sim = Sim::new(topo, seed, |_| Collect::default());
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            for i in 0..count {
                // Mixed sizes try to tempt the transport into reordering.
                let bytes = if i % 3 == 0 { 30_000 } else { 100 };
                ctx.send_sized(NodeId(1), i, bytes);
            }
        });
        sim.run_until_quiescent(SimTime::from_secs(120));
        let got = &sim.actor(NodeId(1)).got;
        prop_assert_eq!(got.clone(), (0..count).collect::<Vec<_>>());
    }
}
