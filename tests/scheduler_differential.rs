//! Differential pinning of the hierarchical event wheel against the
//! `BinaryHeap` reference scheduler.
//!
//! The wheel replaced the heap as the engine's default event queue; the
//! heap stays behind `SchedulerKind::Heap` exactly so these tests can keep
//! holding the two implementations against each other forever. Across
//! randomly generated schedules and workloads the two must agree on
//! everything observable: the dispatch order of every event, the trace
//! fingerprint in both full and lite modes, and the sim-clock telemetry
//! counters (the masked surface — wall-clock metrics are the only thing
//! allowed to differ between any two runs).

use cb_simnet::prelude::*;
use cb_simnet::wheel::EventWheel;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// ---- queue level: pop order over adversarial timestamp distributions ----

/// Timestamp deltas spanning every wheel regime: sub-slot (collisions),
/// level 0, level 1, level 2, and the far-future overflow heap — plus
/// exact multiples of the slot and window widths, the boundary cases where
/// a wheel implementation is most likely to disagree with a heap.
fn adversarial_delta(rng: &mut SimRng) -> u64 {
    const SLOT_NS: u64 = 1 << 16; // level-0 slot width
    const WINDOW_NS: u64 = 1 << 26; // level-1 window width
    match rng.gen_below(8) {
        0 => rng.gen_below(SLOT_NS),                // same-slot collision
        1 => rng.gen_below(SLOT_NS * 1024),         // level 0
        2 => rng.gen_below(WINDOW_NS * 1024),       // level 1
        3 => rng.gen_below(WINDOW_NS * 1024 * 64),  // level 2
        4 => (1 + rng.gen_below(2048)) * SLOT_NS,   // slot-aligned
        5 => (1 + rng.gen_below(2048)) * WINDOW_NS, // window-aligned
        6 => rng.gen_below(1 << 46),                // deep overflow
        _ => 1 + rng.gen_below(100),                // near-now
    }
}

proptest! {
    /// The wheel pops in exactly the `(time, node, seq)` order a sorted
    /// reference produces, across random interleavings of pushes and pops
    /// whose timestamps straddle every level boundary.
    #[test]
    fn wheel_pops_in_reference_order(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let mut wheel: EventWheel<(u32, u64)> = EventWheel::new();
        let mut reference: BinaryHeap<Reverse<(u64, u32, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..600 {
            for _ in 0..=rng.gen_below(3) {
                let at = now + adversarial_delta(&mut rng);
                let node = rng.gen_below(64) as u32;
                wheel.push(at, node, seq, (node, seq));
                reference.push(Reverse((at, node, seq)));
                seq += 1;
            }
            for _ in 0..=rng.gen_below(3) {
                let got = wheel.pop();
                let want = reference.pop().map(|Reverse((at, node, s))| (at, (node, s)));
                prop_assert_eq!(got, want, "pop order diverged at seed {}", seed);
                if let Some((at, _)) = got {
                    // Keys are monotone, so new pushes land at or after the
                    // dispatch frontier, exactly like the engine clock.
                    now = at;
                }
            }
        }
        // Drain: the tail must come out in reference order too.
        while let Some(Reverse((at, node, s))) = reference.pop() {
            prop_assert_eq!(wheel.pop(), Some((at, (node, s))));
        }
        prop_assert_eq!(wheel.pop(), None);
        prop_assert!(wheel.is_empty());
    }
}

// ---- engine level: full-run equivalence over random workloads ----

/// A workload whose behavior is a function of the per-node sim RNG only:
/// timers re-arm with log-uniform delays (microseconds to tens of
/// seconds, so live events populate every wheel level at once), each
/// firing fans out a random mix of reliable and unreliable sends, and
/// receivers occasionally reply.
struct ChaosActor {
    n: u32,
}

impl Actor for ChaosActor {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        let jitter = SimDuration::from_micros(1 + ctx.rng().gen_below(50_000));
        ctx.set_timer(jitter, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _timer: TimerId, tag: u64) {
        for _ in 0..ctx.rng().gen_below(3) {
            let to = NodeId(ctx.rng().gen_below(self.n as u64) as u32);
            if to != ctx.id() {
                if ctx.rng().gen_below(2) == 0 {
                    ctx.send(to, tag as u32);
                } else {
                    ctx.send_unreliable(to, tag as u32);
                }
            }
        }
        // Log-uniform re-arm: 2^0..2^24 microseconds.
        let exp = ctx.rng().gen_below(25);
        let delay = SimDuration::from_micros(1 << exp);
        ctx.set_timer(delay, tag + 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
        if msg != u32::MAX && ctx.rng().gen_below(4) == 0 {
            ctx.send_unreliable(from, u32::MAX);
        }
    }
}

/// Builds a random topology family — star, generated transit-stub, or
/// fat-tree — from the schedule seed, so the differential covers the dense
/// and implicit path stores alike.
fn random_topology(seed: u64, hosts: usize) -> Topology {
    let mut rng = SimRng::seed_from(seed ^ 0x70_70);
    match seed % 3 {
        0 => Topology::star(
            hosts,
            SimDuration::from_micros(200 + rng.gen_below(3_000)),
            10_000_000,
        ),
        1 => Topology::transit_stub_exact(&TransitStubConfig::balanced_for(hosts), hosts, &mut rng),
        _ => Topology::fat_tree(&FatTreeConfig::for_hosts(hosts), &mut rng),
    }
}

fn run_chaos(
    kind: SchedulerKind,
    lite: bool,
    seed: u64,
    hosts: usize,
    horizon: SimTime,
) -> (u64, u64, MetricsSummary, SimTime, Vec<(SimTime, String)>) {
    let topo = random_topology(seed, hosts);
    let n = topo.host_count() as u32;
    let mut sim = Sim::new_with_scheduler(topo, seed, kind, move |_| ChaosActor { n });
    if lite {
        sim.set_lite(true);
    }
    sim.start_all();
    // A little scheduled fault traffic so crash/restart events ride the
    // same queue as timers and deliveries.
    sim.schedule_crash(NodeId(1), SimTime::from_millis(40));
    sim.schedule_restart(NodeId(1), SimTime::from_millis(400));
    sim.run_until(horizon);
    let records: Vec<(SimTime, String)> = sim
        .trace()
        .records()
        .map(|r| (r.at, format!("{:?}", r.event)))
        .collect();
    (
        sim.trace().fingerprint(),
        sim.events_processed(),
        sim.summary(),
        sim.now(),
        records,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full mode: byte-identical dispatch. Every trace record (timestamp
    /// and rendered event) must match between the schedulers, which pins
    /// the dispatch order itself, not just its hash.
    #[test]
    fn schedulers_dispatch_identically_on_random_workloads(
        seed in any::<u64>(),
        hosts in 6usize..40,
    ) {
        let horizon = SimTime::from_millis(1500);
        let h = run_chaos(SchedulerKind::Heap, false, seed, hosts, horizon);
        let w = run_chaos(SchedulerKind::Wheel, false, seed, hosts, horizon);
        prop_assert_eq!(h.0, w.0, "fingerprint diverged at seed {}", seed);
        prop_assert_eq!(h.1, w.1, "event count diverged at seed {}", seed);
        prop_assert!(
            h.1 > hosts as u64,
            "workload dispatched almost nothing ({} events for {} hosts)",
            h.1,
            hosts
        );
        prop_assert_eq!(h.3, w.3, "final clock diverged at seed {}", seed);
        prop_assert_eq!(h.4.len(), w.4.len(), "record count diverged at seed {}", seed);
        for (i, (a, b)) in h.4.iter().zip(&w.4).enumerate() {
            prop_assert_eq!(a, b, "dispatch order diverged at record {} (seed {})", i, seed);
        }
    }

    /// Lite mode (how large campaigns actually run) plus the masked
    /// telemetry surface: word fingerprints and every sim-clock counter
    /// agree; only wall-clock measurements may ever differ.
    #[test]
    fn lite_fingerprints_and_masked_telemetry_agree(
        seed in any::<u64>(),
        hosts in 6usize..40,
    ) {
        let horizon = SimTime::from_millis(1500);
        let h = run_chaos(SchedulerKind::Heap, true, seed, hosts, horizon);
        let w = run_chaos(SchedulerKind::Wheel, true, seed, hosts, horizon);
        prop_assert_eq!(h.0, w.0, "lite fingerprint diverged at seed {}", seed);
        prop_assert_eq!(h.1, w.1, "event count diverged at seed {}", seed);
        let (sh, sw) = (&h.2, &w.2);
        prop_assert_eq!(sh.msgs_sent, sw.msgs_sent);
        prop_assert_eq!(sh.msgs_delivered, sw.msgs_delivered);
        prop_assert_eq!(sh.msgs_dropped, sw.msgs_dropped);
        prop_assert_eq!(sh.bytes_sent, sw.bytes_sent);
    }
}
