//! Property-based tests over the open-loop workload engine and the
//! bounded-retry contract.
//!
//! The retry-amplification bound is the load-shedding story's keystone:
//! with a retry budget of `B` (attempts per bucket, first send included),
//! the fleet-wide attempt count can never exceed `B x offered`, no matter
//! how the admission layer sheds or how many deadlines expire. Without
//! budgets that bound does not exist — the seed-exact retry-storm
//! regression lives in `cb-kv`'s campaign tests
//! (`retry_storm_seed_goes_metastable_without_protection`), where the
//! metastability oracle flags the unbounded arm.

use cb_harness::prelude::*;
use cb_kv::KvCampaign;
use cb_simnet::time::SimTime;
use cb_telemetry::keys;
use cb_workload::{ArrivalEngine, WorkloadProfile};
use proptest::prelude::*;

/// Runs the kv scenario under `profile` on a shortened horizon (the flash
/// window [40 s, 70 s) and a drain tail still fit) and returns
/// `(offered, attempts, failed)` from the merged fleet telemetry.
fn run_kv(profile: WorkloadProfile, seed: u64) -> (u64, u64, u64) {
    let s = KvCampaign {
        workload: Some(profile),
        horizon: SimTime::from_secs(90),
        ..Default::default()
    };
    let r = s.run(seed, &FaultPlan::none());
    let t = &r.telemetry;
    (
        t.counter(keys::WORKLOAD_OFFERED),
        t.counter(keys::WORKLOAD_ATTEMPTS),
        t.counter(keys::WORKLOAD_FAILED),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// With a budget of B attempts per bucket, total attempts are bounded
    /// by B x offered for every seed — bounded retries cap amplification
    /// even while admission sheds and deadlines expire under a 6x flash.
    #[test]
    fn budgeted_attempts_never_exceed_budget_times_offered(seed in 0u64..10_000) {
        let profile = WorkloadProfile::flash();
        let budget = profile.retry_budget.expect("flash profile is budgeted") as u64;
        let (offered, attempts, failed) = run_kv(profile, seed);
        prop_assert!(offered > 0, "open loop offered nothing");
        prop_assert!(
            attempts <= budget * offered,
            "attempts {attempts} exceed budget {budget} x offered {offered}"
        );
        // Failures are requests, so they are bounded by offered too.
        prop_assert!(failed <= offered, "failed {failed} > offered {offered}");
    }

    /// The steady profile has headroom: the same bound holds and the
    /// typical case barely retries at all (amplification stays under 2x).
    #[test]
    fn steady_amplification_stays_low(seed in 0u64..10_000) {
        let profile = WorkloadProfile::steady();
        let budget = profile.retry_budget.expect("steady profile is budgeted") as u64;
        let (offered, attempts, _) = run_kv(profile, seed);
        prop_assert!(attempts <= budget * offered);
        prop_assert!(
            (attempts as f64) < 2.0 * offered as f64,
            "steady load should rarely retry: {attempts} attempts vs {offered} offered"
        );
    }

    /// The arrival stream itself conserves counts and stays deterministic
    /// under region splitting for arbitrary profiles of the registry.
    #[test]
    fn arrival_totals_conserve_across_regions(seed in any::<u64>(), windows in 1u64..120) {
        let mut e = ArrivalEngine::new(WorkloadProfile::flash_off(), seed);
        for i in 0..windows {
            let w = e.window(i);
            prop_assert_eq!(w.per_region.iter().sum::<u64>(), w.total);
        }
    }
}
