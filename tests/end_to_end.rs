//! End-to-end integration: every application runs on the full stack and
//! upholds its protocol invariants.

use cb_dissem::{run_swarm, BlockStrategy, SwarmConfig};
use cb_gossip::{run_gossip, GossipConfig, PeerStrategy};
use cb_paxos::{run_paxos, PaxosConfig, ProposerRegime};
use cb_randtree::{optimal_depth, run_failure_rejoin, run_join, ScenarioConfig, Setup};
use cb_simnet::time::SimDuration;

#[test]
fn randtree_all_arms_build_valid_trees_and_recover() {
    for setup in Setup::ALL {
        let cfg = ScenarioConfig {
            nodes: 15,
            seed: 11,
            ..Default::default()
        };
        let join = run_join(&cfg, setup);
        assert!(
            join.after_join.well_formed,
            "{setup:?}: {:?}",
            join.after_join
        );
        assert_eq!(join.after_join.reachable, 15, "{setup:?}");
        assert!(join.after_join.max_depth >= optimal_depth(15, 2));
        assert!(join.after_join.max_degree <= cb_randtree::MAX_CHILDREN);

        let rec = run_failure_rejoin(&cfg, setup);
        let stats = rec.after_rejoin.expect("rejoin stats");
        assert!(stats.well_formed, "{setup:?}: {stats:?}");
        assert_eq!(stats.reachable, 15, "{setup:?} lost nodes: {stats:?}");
    }
}

#[test]
fn choice_arms_expose_the_decision_baseline_does_not() {
    let cfg = ScenarioConfig {
        nodes: 15,
        seed: 3,
        ..Default::default()
    };
    assert_eq!(run_join(&cfg, Setup::Baseline).decisions, 0);
    assert!(run_join(&cfg, Setup::ChoiceRandom).decisions > 0);
    assert!(run_join(&cfg, Setup::ChoiceCrystalBall).decisions > 0);
}

#[test]
fn gossip_strategies_cover_a_clean_network() {
    for strategy in [
        PeerStrategy::Restricted,
        PeerStrategy::FreeRandom,
        PeerStrategy::Resolved,
    ] {
        let cfg = GossipConfig {
            nodes: 20,
            rumors: 4,
            horizon: SimDuration::from_secs(60),
            seed: 13,
            ..Default::default()
        };
        let out = run_gossip(&cfg, strategy);
        assert!(
            out.coverage > 0.95,
            "{}: coverage {}",
            strategy.label(),
            out.coverage
        );
        assert!(out.bytes_sent > 0);
    }
}

#[test]
fn gossip_survives_churn() {
    // A quarter of the nodes crash and restart repeatedly; dissemination
    // still reaches (almost) everyone that is up at the horizon — restarted
    // nodes lose their rumors and must be re-infected.
    let cfg = GossipConfig {
        nodes: 24,
        rumors: 3,
        churn_frac: 0.25,
        horizon: SimDuration::from_secs(120),
        seed: 37,
        ..Default::default()
    };
    let out = run_gossip(&cfg, PeerStrategy::FreeRandom);
    assert!(out.coverage > 0.7, "churn collapsed dissemination: {out:?}");
    assert!(out.bytes_sent > 0);
}

#[test]
fn swarm_strategies_complete_the_download() {
    for strategy in [
        BlockStrategy::Random,
        BlockStrategy::RarestRandom,
        BlockStrategy::Resolved,
    ] {
        let cfg = SwarmConfig {
            peers: 10,
            blocks: 20,
            degree: 4,
            horizon: SimDuration::from_secs(600),
            seed: 17,
            ..Default::default()
        };
        let out = run_swarm(&cfg, strategy);
        assert_eq!(out.completed, 9, "{}: {out:?}", strategy.label());
        assert!(out.max_time_secs.is_finite());
    }
}

#[test]
fn paxos_regimes_commit_every_command_exactly_once() {
    for regime in [
        ProposerRegime::FixedLeader,
        ProposerRegime::RoundRobin,
        ProposerRegime::Resolved,
    ] {
        let cfg = PaxosConfig {
            clients: 4,
            commands_per_client: 12,
            horizon: SimDuration::from_secs(120),
            seed: 19,
            ..Default::default()
        };
        let out = run_paxos(&cfg, regime);
        assert_eq!(out.committed, out.submitted, "{}: {out:?}", regime.label());
    }
}

#[test]
fn paxos_survives_a_minority_acceptor_crash() {
    use cb_core::resolve::RandomResolver;
    use cb_core::runtime::{RuntimeConfig, RuntimeNode};
    use cb_paxos::{Client, PaxosNode, Replica, SlotOwnership};
    use cb_simnet::prelude::*;

    let topo = Topology::star(8, SimDuration::from_millis(5), 50_000_000);
    let group: Vec<NodeId> = (0..5).map(NodeId).collect();
    let g2 = group.clone();
    let mut sim = Sim::new(topo, 23, move |id| {
        let svc = if id.0 < 5 {
            PaxosNode::Replica(Replica::new(
                id,
                id.0 as u64,
                g2.clone(),
                SlotOwnership::RoundRobin,
            ))
        } else if id.0 == 5 {
            PaxosNode::Client(Client::new(
                id,
                g2.clone(),
                cb_paxos::ProposerRegime::RoundRobin,
                SimDuration::from_millis(200),
                20,
            ))
        } else {
            PaxosNode::Idle
        };
        RuntimeNode::new(svc, RuntimeConfig::new(Box::new(RandomResolver::new(1))))
    });
    sim.start_all();
    // Crash two acceptors (a minority of five) mid-run.
    sim.schedule_crash(NodeId(3), SimTime::from_millis(700));
    sim.schedule_crash(NodeId(4), SimTime::from_millis(900));
    sim.run_until_quiescent(SimTime::from_secs(120));
    let client = sim.actor(NodeId(5)).service().as_client().expect("client");
    assert_eq!(client.committed(), 20, "quorum of 3/5 must keep committing");
}

#[test]
fn paxos_phase1_adopts_already_accepted_values() {
    use cb_core::resolve::RandomResolver;
    use cb_core::runtime::{Envelope, RuntimeConfig, RuntimeNode};
    use cb_paxos::{Command, PaxosMsg, PaxosNode, Replica, SlotOwnership};
    use cb_simnet::prelude::*;

    let topo = Topology::star(5, SimDuration::from_millis(5), 50_000_000);
    let group: Vec<NodeId> = (0..5).map(NodeId).collect();
    let g2 = group.clone();
    let mut sim = Sim::new(topo, 31, move |id| {
        RuntimeNode::new(
            PaxosNode::Replica(Replica::new(
                id,
                id.0 as u64,
                g2.clone(),
                SlotOwnership::RoundRobin,
            )),
            RuntimeConfig::new(Box::new(RandomResolver::new(1))),
        )
    });
    sim.start_all();
    sim.run_until(SimTime::from_millis(1));
    // The "client" is node 4 (a replica; it ignores Committed acks) so the
    // ack stays inside the 5-host topology.
    let value_a = Command::new(NodeId(4), 1);
    let value_b = Command::new(NodeId(4), 2);
    // Owner 0 commits A in its slot 0.
    sim.invoke(NodeId(4), |_, ctx| {
        let now = ctx.now();
        ctx.send(
            NodeId(0),
            Envelope::App {
                msg: PaxosMsg::Submit { cmd: value_a },
                sent_at: now,
            },
        );
    });
    sim.run_until_quiescent(SimTime::from_secs(10));
    // A rogue repair tries to put B into the same slot via replica 3.
    sim.invoke(NodeId(4), |_, ctx| {
        let now = ctx.now();
        ctx.send(
            NodeId(3),
            Envelope::App {
                msg: PaxosMsg::SubmitAt {
                    slot: 0,
                    cmd: value_b,
                },
                sent_at: now,
            },
        );
    });
    sim.run_until_quiescent(SimTime::from_secs(30));
    // Safety: slot 0 still carries A everywhere (phase 1 adopted it).
    for r in 0..5u32 {
        let learned = &sim
            .actor(NodeId(r))
            .service()
            .as_replica()
            .expect("replica")
            .learned;
        assert_eq!(
            learned.get(&0),
            Some(&value_a),
            "replica {r} lost the chosen value"
        );
    }
}

#[test]
fn paxos_contended_slot_chooses_a_single_value() {
    use cb_core::resolve::RandomResolver;
    use cb_core::runtime::{Envelope, RuntimeConfig, RuntimeNode};
    use cb_paxos::{Command, PaxosMsg, PaxosNode, Replica, SlotOwnership};
    use cb_simnet::prelude::*;

    let topo = Topology::star(5, SimDuration::from_millis(5), 50_000_000);
    let group: Vec<NodeId> = (0..5).map(NodeId).collect();
    let g2 = group.clone();
    let mut sim = Sim::new(topo, 29, move |id| {
        RuntimeNode::new(
            PaxosNode::Replica(Replica::new(
                id,
                id.0 as u64,
                g2.clone(),
                SlotOwnership::RoundRobin,
            )),
            RuntimeConfig::new(Box::new(RandomResolver::new(1))),
        )
    });
    sim.start_all();
    sim.run_until(SimTime::from_millis(1));
    // Two replicas contend for slot 0 (owned by replica 0): replica 0
    // proposes cheaply; replica 1 runs an explicit higher-ballot phase 1.
    sim.invoke(NodeId(0), |node, ctx| {
        // Drive through the actor interface: wrap as an App envelope so the
        // runtime handles it exactly like a wire message.
        let _ = (node, ctx);
    });
    // Simpler: inject Submit messages through the simulator.
    sim.invoke(NodeId(2), |_, ctx| {
        let now = ctx.now();
        ctx.send(
            NodeId(0),
            Envelope::App {
                msg: PaxosMsg::Submit {
                    cmd: Command::new(NodeId(2), 1),
                },
                sent_at: now,
            },
        );
        ctx.send(
            NodeId(1),
            Envelope::App {
                msg: PaxosMsg::Submit {
                    cmd: Command::new(NodeId(2), 2),
                },
                sent_at: now,
            },
        );
    });
    sim.run_until_quiescent(SimTime::from_secs(60));
    // Both slots committed (each proposer owns a distinct slot), and all
    // replicas agree on every learned slot.
    let reference: Vec<(u64, Command)> = sim
        .actor(NodeId(0))
        .service()
        .as_replica()
        .expect("replica")
        .learned
        .iter()
        .map(|(&s, &v)| (s, v))
        .collect();
    assert!(!reference.is_empty(), "nothing was learned");
    for r in 1..5u32 {
        let learned = &sim
            .actor(NodeId(r))
            .service()
            .as_replica()
            .expect("replica")
            .learned;
        for (slot, value) in &reference {
            if let Some(v) = learned.get(slot) {
                assert_eq!(v, value, "replica {r} disagrees on slot {slot}");
            }
        }
    }
}
