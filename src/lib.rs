//! # crystalball — explicit-choice distributed systems, with a predictive runtime
//!
//! The facade crate of the workspace: one dependency pulls in the whole
//! stack of *"Simplifying Distributed System Development"* (HotOS 2009).
//!
//! * [`simnet`] — the deterministic discrete-event network simulator.
//! * [`mck`] — explicit-state model checking and consequence prediction.
//! * [`core`] — the programming model: exposed choices and objectives, the
//!   predictive network/state models, resolvers, execution steering, and
//!   the runtime that wires a [`core::runtime::Service`] onto the network.
//! * [`randtree`], [`gossip`], [`dissem`], [`paxos`] — the paper's case
//!   study and motivating applications, ready to run and measure.
//!
//! Start with [`prelude`] and the `examples/` directory:
//!
//! ```
//! use crystalball::prelude::*;
//!
//! struct Hello;
//! impl Service for Hello {
//!     type Msg = ();
//!     type Checkpoint = ();
//!     fn on_message(&mut self, _: &mut ServiceCtx<'_, '_, (), ()>, _: NodeId, _: ()) {}
//!     fn checkpoint(&self, _: &StateModel<()>) {}
//!     fn neighbors(&self) -> Vec<NodeId> { Vec::new() }
//! }
//!
//! let topo = Topology::star(2, SimDuration::from_millis(5), 1_000_000);
//! let mut sim = Sim::new(topo, 1, |_| {
//!     RuntimeNode::new(Hello, RuntimeConfig::new(Box::new(RandomResolver::new(1))))
//! });
//! sim.start_all();
//! sim.run_until_quiescent(SimTime::from_secs(1));
//! ```

pub use cb_core as core;
pub use cb_dissem as dissem;
pub use cb_gossip as gossip;
pub use cb_mck as mck;
pub use cb_paxos as paxos;
pub use cb_randtree as randtree;
pub use cb_simnet as simnet;

/// Everything most users need, in one import.
pub mod prelude {
    pub use cb_core::prelude::*;
}
