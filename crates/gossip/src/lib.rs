//! # cb-gossip — epidemic dissemination with an exposed peer choice
//!
//! The paper's first §3.1 example rebuilt as an experiment: push gossip
//! where the per-round partner selection is either hard-coded (BAR-style
//! restricted schedule, classic free-random over views) or exposed to the
//! runtime and resolved by a learned bandit over network-model features.
//! Byzantine view pollution and slow-uplink cohorts supply the adversarial
//! and heterogeneous settings the claims are about.

pub mod campaign;
pub mod scenario;
pub mod service;

pub use campaign::GossipCampaign;
pub use scenario::{run_gossip, GossipConfig, GossipOutcome};
pub use service::{
    GossipCheckpoint, GossipMsg, GossipNode, PeerStrategy, ROUND_TIMER, RUMOR_BYTES,
};
