//! Campaign registration: push gossip under fault schedules.
//!
//! Runs the free-random gossip arm (no Byzantine cohort — the campaign is
//! about *environmental* faults) and checks epidemic robustness: after the
//! fault schedule heals, every node that is up at the horizon must hold
//! every rumor. Gossip's redundancy makes this a strong oracle — it holds
//! under crash/restart churn, transient partitions and loss, but an
//! unhealed partition starves one side and violates it.

use crate::service::{GossipNode, PeerStrategy};
use cb_core::choice::Resolver;
use cb_core::resolve::ladder::LadderResolver;
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode};
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;

/// The campaign-facing gossip scenario.
pub struct GossipCampaign {
    /// Number of nodes (node 0 publishes).
    pub nodes: usize,
    /// Rumors the source publishes.
    pub rumors: u32,
    /// Run horizon.
    pub horizon: SimTime,
    /// Route partner selection through the exposed-choice path
    /// ([`PeerStrategy::Resolved`]) resolved by the degradation-governed
    /// [`LadderResolver`]. Gossip never predicts, so the ladder here is
    /// driven purely by model-health signals (checkpoint staleness,
    /// connection-break confidence collapse) — the complementary arm to
    /// randtree's deadline-driven degradation.
    pub ladder: bool,
    /// Layer a fault storm (gray-failure stalls + a latency spike) over
    /// the default churn/partition/loss schedule. Healed by t=30s; the
    /// coverage oracle must still hold at the horizon.
    pub storm: bool,
}

impl Default for GossipCampaign {
    fn default() -> Self {
        GossipCampaign {
            nodes: 16,
            rumors: 4,
            horizon: SimTime::from_secs(60),
            ladder: false,
            storm: false,
        }
    }
}

impl Scenario for GossipCampaign {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // Churn a third of the membership early, partition a pair away for
        // a few seconds mid-run, sprinkle loss. All healed by t=30s; the
        // remaining 30 s of rounds must re-spread every rumor.
        let n = self.nodes as u64;
        let pa = 1 + (seed % (n - 1)) as u32;
        let pb = 1 + ((seed + 3) % (n - 1)) as u32;
        let churners: Vec<u32> = (1..=(self.nodes as u32 / 3)).collect();
        let mut plan = FaultPlan::none()
            .churn(&churners, 2_000, 20_000, 6_000, 1_500)
            .loss(0.10, 5_000, 15_000);
        if pa != pb {
            let others: Vec<u32> = (0..self.nodes as u32)
                .filter(|&i| i != pa && i != pb)
                .collect();
            plan = plan.partition(&[pa, pb], &others, 10_000, Some(25_000));
        }
        if self.storm {
            // Gray failures on two rotating non-source nodes (paused, not
            // crashed: deferred events resume when the stall lifts) plus a
            // mesh-wide latency spike. All healed by t=30s.
            let sa = 1 + ((seed + 5) % (n - 1)) as u32;
            let sb = 1 + ((seed + 7) % (n - 1)) as u32;
            plan = plan
                .stall(sa, 12_000, 22_000)
                .delayspike(150, 8_000, 25_000);
            if sb != sa {
                plan = plan.stall(sb, 14_000, 24_000);
            }
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        // Small fleets keep the historical config (and thus historical
        // fingerprints); large ones get a backbone proportioned to the
        // fleet and an exact host count.
        let mut trng = SimRng::seed_from(seed.wrapping_mul(0xA5A5_5A5A));
        let topo = if self.nodes <= 64 {
            Topology::transit_stub(
                &TransitStubConfig::default().with_at_least_hosts(self.nodes),
                &mut trng,
            )
        } else {
            Topology::transit_stub_exact(
                &TransitStubConfig::balanced_for(self.nodes),
                self.nodes,
                &mut trng,
            )
        };
        let n = self.nodes;
        let rumors = self.rumors;
        let ladder = self.ladder;
        let round = SimDuration::from_millis(500);
        let mut sim: Sim<RuntimeNode<GossipNode>> = Sim::new(topo, seed, move |id| {
            let strategy = if ladder {
                PeerStrategy::Resolved
            } else {
                PeerStrategy::FreeRandom
            };
            let mut svc = GossipNode::new(id, n, strategy, false, round);
            if id == NodeId(0) {
                svc.publish_count = rumors;
            }
            let resolver: Box<dyn Resolver> = if ladder {
                Box::new(LadderResolver::new())
            } else {
                Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 16)))
            };
            RuntimeNode::new(
                svc,
                RuntimeConfig::new(resolver).controller_every(SimDuration::from_secs(2)),
            )
        });
        // Fleets at 1000+ nodes run in lite-trace mode: fingerprints come
        // from compact word records instead of rendered debug strings, and
        // per-node provenance rings stay empty. Deterministic either way.
        if n >= 1000 {
            sim.set_lite(true);
        }
        for i in 0..n as u32 {
            sim.schedule_start(NodeId(i), SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0xbeef, self.horizon);

        // Oracle: every up node holds every rumor. Nodes that churned and
        // restarted lose state but must re-acquire via gossip; nodes down
        // at the horizon are excused.
        let mut starving = Vec::new();
        for i in 0..n as u32 {
            let id = NodeId(i);
            if !sim.is_up(id) {
                continue;
            }
            let got = (0..rumors)
                .filter(|r| sim.actor(id).service().received.contains_key(r))
                .count() as u32;
            if got < rumors {
                starving.push(format!("node {i} holds {got}/{rumors}"));
            }
        }
        let verdicts = vec![OracleVerdict::check(
            "gossip.coverage",
            starving.is_empty(),
            if starving.is_empty() {
                format!("all up nodes hold {rumors}/{rumors} rumors")
            } else {
                starving.join("; ")
            },
        )];
        // Gossip rounds never stop; skip the quiescence oracle.
        RunReport::from_sim_quiescence(self.name(), seed, plan, &sim, self.horizon, verdicts, false)
            .with_telemetry(fleet_telemetry(&sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = GossipCampaign::default();
        let r = s.run(2, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
        assert!(r.msgs_delivered > 0);
    }

    #[test]
    fn default_plan_recovers() {
        let s = GossipCampaign::default();
        let plan = s.default_plan(4);
        let r = s.run(4, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn storm_ladder_arm_keeps_coverage() {
        // Fault storm + resolved peer selection through the ladder. The
        // epidemic must still cover every up node, deterministically, and
        // the ladder/governor accounting must be live (gossip never
        // predicts, so degradation here is driven by staleness and
        // confidence collapse, not deadlines).
        let s = GossipCampaign {
            ladder: true,
            storm: true,
            ..Default::default()
        };
        let plan = s.default_plan(6);
        let a = s.run(6, &plan);
        let b = s.run(6, &plan);
        assert!(!a.violated(), "{:?}", a.verdicts);
        assert_eq!(a.fingerprint, b.fingerprint, "ladder arm nondeterministic");
        let rungs = a.telemetry.counter("core.ladder.rung_lookahead")
            + a.telemetry.counter("core.ladder.rung_cached")
            + a.telemetry.counter("core.ladder.rung_heuristic")
            + a.telemetry.counter("core.ladder.rung_static");
        assert!(rungs > 0, "ladder never resolved a gossip.peer choice");
        assert!(
            a.telemetry.counter("core.governor.decisions_healthy")
                + a.telemetry.counter("core.governor.decisions_degraded")
                + a.telemetry.counter("core.governor.decisions_survival")
                > 0,
            "governor observed no decisions"
        );
    }

    #[test]
    fn unhealed_partition_starves_minority() {
        let s = GossipCampaign::default();
        let others: Vec<u32> = (0..16u32).filter(|&i| i != 9 && i != 10).collect();
        // Cut before the source's rumors can cross.
        let plan = FaultPlan::none().partition(&[9, 10], &others, 0, None);
        let r = s.run(8, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        assert!(r.failing_oracles().contains(&"gossip.coverage"));
    }
}
