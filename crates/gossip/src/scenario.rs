//! Gossip experiments: Byzantine pressure and slow-uplink cohorts (E4).
//!
//! Quantifies the §3.1 claims: restricting the peer choice (BAR Gossip)
//! keeps dissemination robust when Byzantine nodes pollute views, but pays
//! when the schedule lands on slow peers; exposing the choice to a learning
//! runtime gets both robustness and performance (FlightPath's "relax the
//! choice" observation).

use crate::service::{GossipNode, PeerStrategy};
use cb_core::choice::Resolver;
use cb_core::resolve::heuristic::HeuristicResolver;
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{RuntimeConfig, RuntimeNode};
use cb_simnet::sim::Sim;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::{AccessLink, NodeId, Topology, TransitStubConfig};

/// Gossip scenario parameters.
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Fraction of Byzantine nodes in `[0, 1)` (node 0 is always honest).
    pub byzantine_frac: f64,
    /// Fraction of nodes behind a slow uplink (node 0 always fast).
    pub slow_frac: f64,
    /// Uplink of the slow cohort, bits per second.
    pub slow_uplink_bps: u64,
    /// Rumors the source publishes.
    pub rumors: u32,
    /// Gossip round period.
    pub round: SimDuration,
    /// Simulated run length.
    pub horizon: SimDuration,
    /// Fraction of nodes subject to churn (crash/restart cycles) during
    /// the run; node 0 never churns.
    pub churn_frac: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            nodes: 64,
            byzantine_frac: 0.0,
            slow_frac: 0.0,
            slow_uplink_bps: 256_000,
            rumors: 8,
            round: SimDuration::from_millis(500),
            horizon: SimDuration::from_secs(120),
            churn_frac: 0.0,
            seed: 1,
        }
    }
}

/// Outcome of one gossip run.
#[derive(Clone, Debug)]
pub struct GossipOutcome {
    /// Strategy that ran.
    pub strategy: PeerStrategy,
    /// Fraction of honest nodes holding all rumors at the horizon.
    pub coverage: f64,
    /// Mean time (seconds) for a rumor to reach 90% of honest nodes;
    /// `None` when any rumor missed the mark.
    pub t90_secs: Option<f64>,
    /// Same metric restricted to honest nodes with fast links — how the
    /// strategy performs for the well-provisioned majority.
    pub t90_fast_secs: Option<f64>,
    /// Mean per-rumor delivery latency over honest nodes, seconds.
    pub mean_latency_secs: f64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
}

fn resolver_for(strategy: PeerStrategy, seed: u64) -> Box<dyn Resolver> {
    match strategy {
        // Restricted/FreeRandom never call choose(); resolver is inert.
        PeerStrategy::Restricted | PeerStrategy::FreeRandom => Box::new(RandomResolver::new(seed)),
        PeerStrategy::Resolved => {
            // Features are [measured latency ms, observed usefulness rate];
            // prefer responsive peers that still accept new rumors.
            let _ = seed;
            Box::new(HeuristicResolver::new("gossip-model", |o| {
                let latency_ms = o.features.first().copied().unwrap_or(50.0);
                let use_rate = o.features.get(1).copied().unwrap_or(0.5);
                // Penalize only pathological links (a slow cohort shows up
                // as hundreds of ms of serialization delay); mild WAN
                // differences must not cluster the epidemic regionally.
                use_rate - 0.005 * (latency_ms - 250.0).max(0.0)
            }))
        }
    }
}

/// Runs one gossip experiment arm.
pub fn run_gossip(cfg: &GossipConfig, strategy: PeerStrategy) -> GossipOutcome {
    let ts = TransitStubConfig::default().with_at_least_hosts(cfg.nodes);
    let mut trng = cb_simnet::rng::SimRng::seed_from(cfg.seed.wrapping_mul(0xA5A5_5A5A));
    let mut topo = Topology::transit_stub(&ts, &mut trng);
    // Deterministic cohort assignment: Byzantine from the top ids, slow
    // from the next band down, source (0) untouched.
    let n = cfg.nodes;
    let byz_count = (n as f64 * cfg.byzantine_frac) as usize;
    let slow_count = (n as f64 * cfg.slow_frac) as usize;
    let byz_set: Vec<u32> = ((n - byz_count) as u32..n as u32).collect();
    let slow_set: Vec<u32> =
        ((n - byz_count - slow_count) as u32..(n - byz_count) as u32).collect();
    for &s in &slow_set {
        topo.set_access(
            NodeId(s),
            AccessLink {
                up_bps: cfg.slow_uplink_bps,
                down_bps: cfg.slow_uplink_bps,
            },
        );
    }
    let rumors = cfg.rumors;
    let round = cfg.round;
    let seed = cfg.seed;
    let byz_clone = byz_set.clone();
    let mut sim = Sim::new(topo, seed, move |id| {
        let byzantine = byz_clone.contains(&id.0);
        let mut svc = GossipNode::new(id, n, strategy, byzantine, round);
        if id == NodeId(0) {
            svc.publish_count = rumors;
        }
        RuntimeNode::new(
            svc,
            RuntimeConfig::new(resolver_for(strategy, seed ^ ((id.0 as u64) << 16)))
                .controller_every(SimDuration::from_secs(2)),
        )
    });
    for i in 0..n as u32 {
        sim.schedule_start(NodeId(i), SimTime::ZERO);
    }
    if cfg.churn_frac > 0.0 {
        // Churn a band of honest, fast nodes (ids 1..=churners).
        let churners: Vec<NodeId> = (1..=(n as f64 * cfg.churn_frac) as u32)
            .map(NodeId)
            .collect();
        sim.schedule_churn(
            &churners,
            SimTime::from_secs(2),
            SimTime::ZERO + cfg.horizon - SimDuration::from_secs(20),
            SimDuration::from_secs(15),
            SimDuration::from_secs(3),
            cfg.seed.wrapping_add(0xC0FFEE),
        );
    }
    sim.trace_mut().set_enabled(false);
    sim.run_until(SimTime::ZERO + cfg.horizon);

    // Honest nodes only (the source counts).
    let honest: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|id| !byz_set.contains(&id.0))
        .collect();
    let fast_honest: Vec<NodeId> = honest
        .iter()
        .copied()
        .filter(|id| !slow_set.contains(&id.0))
        .collect();
    let h = honest.len() as f64;
    let mut full = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    let mut t90 = Vec::new();
    let mut t90_fast = Vec::new();
    for r in 0..rumors {
        let mut times: Vec<f64> = honest
            .iter()
            .filter_map(|&id| sim.actor(id).service().received.get(&r))
            .map(|t| t.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        latencies.extend(times.iter());
        let need = (0.9 * h).ceil() as usize;
        if times.len() >= need {
            t90.push(times[need - 1]);
        }
        let mut fast_times: Vec<f64> = fast_honest
            .iter()
            .filter_map(|&id| sim.actor(id).service().received.get(&r))
            .map(|t| t.as_secs_f64())
            .collect();
        fast_times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let need_fast = (0.9 * fast_honest.len() as f64).ceil() as usize;
        if fast_times.len() >= need_fast && need_fast > 0 {
            t90_fast.push(fast_times[need_fast - 1]);
        }
    }
    for &id in &honest {
        if (0..rumors).all(|r| sim.actor(id).service().received.contains_key(&r)) {
            full += 1;
        }
    }
    let coverage = full as f64 / h;
    let t90_secs = if t90.len() == rumors as usize {
        Some(t90.iter().sum::<f64>() / t90.len() as f64)
    } else {
        None
    };
    let t90_fast_secs = if t90_fast.len() == rumors as usize {
        Some(t90_fast.iter().sum::<f64>() / t90_fast.len() as f64)
    } else {
        None
    };
    let mean_latency_secs = if latencies.is_empty() {
        f64::INFINITY
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    GossipOutcome {
        strategy,
        coverage,
        t90_secs,
        t90_fast_secs,
        mean_latency_secs,
        bytes_sent: sim.summary().bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: usize, byz: f64, slow: f64, seed: u64) -> GossipConfig {
        GossipConfig {
            nodes,
            byzantine_frac: byz,
            slow_frac: slow,
            rumors: 4,
            horizon: SimDuration::from_secs(60),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn clean_network_all_strategies_disseminate() {
        for strategy in [
            PeerStrategy::Restricted,
            PeerStrategy::FreeRandom,
            PeerStrategy::Resolved,
        ] {
            let out = run_gossip(&quick(24, 0.0, 0.0, 2), strategy);
            assert!(
                out.coverage > 0.95,
                "{}: coverage {}",
                strategy.label(),
                out.coverage
            );
            assert!(out.t90_secs.is_some(), "{}: t90 missing", strategy.label());
        }
    }

    #[test]
    fn byzantine_nodes_slow_free_random_more_than_restricted() {
        let seeds = [3u64, 4, 5];
        let mut restricted = 0.0;
        let mut free = 0.0;
        for &s in &seeds {
            let cfg = quick(32, 0.3, 0.0, s);
            restricted += run_gossip(&cfg, PeerStrategy::Restricted)
                .t90_secs
                .unwrap_or(cfg.horizon.as_secs_f64());
            free += run_gossip(&cfg, PeerStrategy::FreeRandom)
                .t90_secs
                .unwrap_or(cfg.horizon.as_secs_f64());
        }
        assert!(
            restricted <= free * 1.05,
            "restricted {restricted:.1}s should not lose to polluted free-random {free:.1}s"
        );
    }

    #[test]
    fn resolved_learns_around_byzantine_peers() {
        let cfg = quick(32, 0.3, 0.0, 6);
        let resolved = run_gossip(&cfg, PeerStrategy::Resolved);
        assert!(
            resolved.coverage > 0.9,
            "resolved coverage {}",
            resolved.coverage
        );
    }

    #[test]
    fn outcome_fields_are_sane() {
        let out = run_gossip(&quick(16, 0.0, 0.25, 7), PeerStrategy::FreeRandom);
        assert!(out.bytes_sent > 0);
        assert!(out.mean_latency_secs.is_finite());
        assert!((0.0..=1.0).contains(&out.coverage));
    }
}
