//! Epidemic dissemination with an exposed peer choice.
//!
//! Gossip is the paper's first motivating example (§3.1): every round each
//! node picks a partner and pushes the rumors it knows. *Which partner* is
//! the whole game:
//!
//! * [`PeerStrategy::Restricted`] — BAR Gossip's verifiable pseudo-random
//!   partner: exactly one partner per round, derived from the round number
//!   over the full membership. Robust to view manipulation by Byzantine
//!   nodes, but blind to performance (the partner may sit behind a slow
//!   uplink).
//! * [`PeerStrategy::FreeRandom`] — uniform over the node's *view*, the
//!   classic epidemic choice. Fast when the view is honest, vulnerable to
//!   **view pollution**: Byzantine nodes advertise themselves aggressively
//!   and soak up rounds.
//! * [`PeerStrategy::Resolved`] — the paper's model: the choice is exposed
//!   (`"gossip.peer"`) with per-peer features (estimated latency from the
//!   runtime's network model; observed usefulness), and the configured
//!   resolver — typically a learned bandit — picks. Feedback closes the
//!   loop from round outcomes.
//!
//! Byzantine behavior modelled: accept rumors, never push them, and
//! aggressively advertise Byzantine ids into honest views.

use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::model::state::StateModel;
use cb_core::runtime::{Service, ServiceCtx};
use cb_mck::hash::fingerprint;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::HashMap;

/// The gossip round timer tag.
pub const ROUND_TIMER: u64 = 1;

/// Rumor payload size in bytes (a content chunk).
pub const RUMOR_BYTES: u32 = 8_192;

/// Maximum entries in the advertisement-weighted view.
const VIEW_CAP: usize = 64;

/// How a node picks its gossip partner each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerStrategy {
    /// One deterministic pseudo-random partner per round (BAR Gossip).
    Restricted,
    /// Uniform over the (pollutable) view.
    FreeRandom,
    /// Exposed choice resolved by the runtime.
    Resolved,
}

impl PeerStrategy {
    /// Label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PeerStrategy::Restricted => "Restricted",
            PeerStrategy::FreeRandom => "FreeRandom",
            PeerStrategy::Resolved => "Runtime-Resolved",
        }
    }
}

/// Gossip protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipMsg {
    /// Push the listed rumor ids (payload priced by count × RUMOR_BYTES).
    Push {
        /// Rumor identifiers.
        rumors: Vec<u32>,
    },
    /// Partner's receipt: how many pushed rumors were new to it.
    Ack {
        /// Newly accepted rumor count.
        accepted: u32,
    },
    /// Membership advertisement (Byzantine nodes pollute with this).
    Advert {
        /// Advertised node ids.
        ids: Vec<u32>,
    },
}

/// Compact checkpoint: rumor count and view size.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GossipCheckpoint {
    /// Rumors known.
    pub rumors: u32,
    /// View entries.
    pub view: u32,
}

/// A gossip participant.
pub struct GossipNode {
    me: NodeId,
    n: usize,
    strategy: PeerStrategy,
    /// True when this node behaves Byzantine (absorb, never push, pollute).
    pub byzantine: bool,
    round_period: SimDuration,
    /// Rumor id -> local arrival time.
    pub received: HashMap<u32, SimTime>,
    /// Advertisement-weighted view (a multiset; duplicates = weight).
    view: Vec<NodeId>,
    /// Ids already pushed to each peer (suppresses re-sends).
    sent_to: HashMap<NodeId, Vec<u32>>,
    /// Observed usefulness per peer: (useful rounds, total rounds).
    usefulness: HashMap<NodeId, (u32, u32)>,
    /// Partner of the last round and when it was contacted.
    pending_partner: Option<(NodeId, SimTime)>,
    round: u64,
    /// Rumors this node originates at start (the source sets this > 0).
    pub publish_count: u32,
}

impl GossipNode {
    /// Creates a node. `n` is the full membership size (assumed known, as
    /// BAR Gossip does).
    pub fn new(
        me: NodeId,
        n: usize,
        strategy: PeerStrategy,
        byzantine: bool,
        round_period: SimDuration,
    ) -> Self {
        GossipNode {
            me,
            n,
            strategy,
            byzantine,
            round_period,
            received: HashMap::new(),
            view: Vec::new(),
            sent_to: HashMap::new(),
            usefulness: HashMap::new(),
            pending_partner: None,
            round: 0,
            publish_count: 0,
        }
    }

    /// All rumor ids this node knows, sorted.
    pub fn known_rumors(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.received.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn restricted_partner(&self) -> NodeId {
        // Verifiable pseudo-random schedule over the full membership.
        let h = fingerprint(&(self.me.0, self.round));
        let mut pick = (h % self.n as u64) as u32;
        if pick == self.me.0 {
            pick = (pick + 1) % self.n as u32;
        }
        NodeId(pick)
    }

    fn view_candidates(&self) -> Vec<NodeId> {
        let mut c: Vec<NodeId> = self
            .view
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        if c.is_empty() {
            // Bootstrap: everyone knows the source.
            c.push(NodeId(0));
        }
        c
    }

    fn pick_partner(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, GossipMsg, GossipCheckpoint>,
    ) -> NodeId {
        match self.strategy {
            PeerStrategy::Restricted => self.restricted_partner(),
            PeerStrategy::FreeRandom => {
                let c = self.view_candidates();
                *ctx.rng().choose(&c).expect("candidates never empty")
            }
            PeerStrategy::Resolved => {
                // A small random candidate sample keeps epidemic breadth;
                // the resolver then avoids the slow/Byzantine ones among
                // them using the network model and observed usefulness.
                let mut distinct: Vec<NodeId> = self.view_candidates();
                distinct.sort_unstable();
                distinct.dedup();
                // Random order: scoring ties must not favor low ids, or
                // the epidemic clusters on a few hot nodes.
                ctx.rng().shuffle(&mut distinct);
                distinct.truncate(6);
                let now = ctx.now();
                let options: Vec<OptionDesc> = distinct
                    .iter()
                    .map(|&p| {
                        let latency_ms = ctx
                            .net_model()
                            .predicted_latency(p, now)
                            .map_or(50.0, |(l, _)| l.as_millis_f64());
                        let (useful, total) = self.usefulness.get(&p).copied().unwrap_or((0, 0));
                        let use_rate = if total == 0 {
                            0.5
                        } else {
                            useful as f64 / total as f64
                        };
                        OptionDesc::with_features(p.0 as u64, vec![latency_ms, use_rate])
                    })
                    .collect();
                let i = ctx.choose("gossip.peer", ContextKey::default(), &options);
                distinct[i]
            }
        }
    }

    fn run_round(&mut self, ctx: &mut ServiceCtx<'_, '_, GossipMsg, GossipCheckpoint>) {
        self.round += 1;
        if self.byzantine {
            // Pollute two random honest views with Byzantine ids.
            for _ in 0..2 {
                let t = NodeId(ctx.rng().gen_below(self.n as u64) as u32);
                if t != self.me {
                    ctx.send(
                        t,
                        GossipMsg::Advert {
                            ids: vec![self.me.0],
                        },
                    );
                }
            }
            return;
        }
        let partner = self.pick_partner(ctx);
        // Count the round for usefulness even if nothing is pushed; an ack
        // marks it useful.
        let entry = self.usefulness.entry(partner).or_insert((0, 0));
        entry.1 += 1;
        self.pending_partner = Some((partner, ctx.now()));
        let sent = self.sent_to.entry(partner).or_default();
        let mut fresh: Vec<u32> = self
            .received
            .keys()
            .copied()
            .filter(|id| !sent.contains(id))
            .collect();
        // HashMap iteration order is nondeterministic; the payload order
        // ends up in the trace, which must be a pure function of the seed.
        fresh.sort_unstable();
        if !fresh.is_empty() {
            sent.extend(fresh.iter().copied());
            let bytes = RUMOR_BYTES.saturating_mul(fresh.len() as u32);
            ctx.send_sized(partner, GossipMsg::Push { rumors: fresh }, bytes);
        }
        // Honest membership advertisement: one random view entry + self.
        let mut ids = vec![self.me.0];
        if let Some(&p) = ctx.rng().choose(&self.view) {
            ids.push(p.0);
        }
        let t = NodeId(ctx.rng().gen_below(self.n as u64) as u32);
        if t != self.me {
            ctx.send(t, GossipMsg::Advert { ids });
        }
    }

    fn admit_view(&mut self, ids: &[u32]) {
        for &id in ids {
            if id as usize >= self.n || id == self.me.0 {
                continue;
            }
            if self.view.len() >= VIEW_CAP {
                self.view.remove(0);
            }
            self.view.push(NodeId(id));
        }
    }
}

impl Service for GossipNode {
    type Msg = GossipMsg;
    type Checkpoint = GossipCheckpoint;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, GossipMsg, GossipCheckpoint>) {
        // Seed the view with a few random members.
        let n = self.n;
        for _ in 0..4 {
            let p = NodeId(ctx.rng().gen_below(n as u64) as u32);
            if p != self.me {
                self.view.push(p);
            }
        }
        for r in 0..self.publish_count {
            self.received.insert(r, ctx.now());
        }
        let jitter =
            SimDuration::from_nanos(ctx.rng().gen_below(self.round_period.as_nanos().max(1)));
        ctx.set_timer(self.round_period + jitter, ROUND_TIMER);
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, GossipMsg, GossipCheckpoint>, tag: u64) {
        if tag == ROUND_TIMER {
            self.run_round(ctx);
            ctx.set_timer(self.round_period, ROUND_TIMER);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, GossipMsg, GossipCheckpoint>,
        from: NodeId,
        msg: GossipMsg,
    ) {
        match msg {
            GossipMsg::Push { rumors } => {
                let mut accepted = 0;
                let now = ctx.now();
                for id in rumors {
                    if self.received.try_insert_time(id, now) {
                        accepted += 1;
                    }
                    // The sender evidently has it: no need to push back.
                    self.sent_to.entry(from).or_default().push(id);
                }
                ctx.send(from, GossipMsg::Ack { accepted });
                self.admit_view(&[from.0]);
            }
            GossipMsg::Ack { accepted } => {
                if let Some((partner, started)) = self.pending_partner.take() {
                    if partner != from {
                        self.pending_partner = Some((partner, started));
                    } else {
                        if accepted > 0 {
                            self.usefulness.entry(from).or_insert((0, 0)).0 += 1;
                        }
                        if self.strategy == PeerStrategy::Resolved {
                            // Close the learning loop: useful rounds pay, and
                            // pay more when the exchange finished quickly
                            // (slow partners earn fractional rewards).
                            let elapsed = ctx.now().saturating_since(started).as_secs_f64();
                            let reward = if accepted > 0 {
                                0.3 / (0.3 + elapsed)
                            } else {
                                0.0
                            };
                            ctx.feedback(
                                "gossip.peer",
                                ContextKey::default(),
                                from.0 as u64,
                                reward,
                            );
                        }
                    }
                }
            }
            GossipMsg::Advert { ids } => self.admit_view(&ids),
        }
    }

    fn on_conn_broken(
        &mut self,
        _ctx: &mut ServiceCtx<'_, '_, GossipMsg, GossipCheckpoint>,
        peer: NodeId,
    ) {
        // A broken connection usually means the peer crashed; it restarts
        // with an empty rumor store. Forget what we have pushed to it so
        // future rounds that land on it re-send everything — otherwise the
        // `sent_to` suppression starves a restarted node forever.
        self.sent_to.remove(&peer);
        if let Some((partner, _)) = self.pending_partner {
            if partner == peer {
                self.pending_partner = None;
            }
        }
    }

    fn checkpoint(&self, _model: &StateModel<GossipCheckpoint>) -> GossipCheckpoint {
        GossipCheckpoint {
            rumors: self.received.len() as u32,
            view: self.view.len() as u32,
        }
    }

    fn neighbors(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.view.to_vec();
        v.sort_unstable();
        v.dedup();
        v.truncate(4);
        v
    }
}

/// Small extension trait so rumor insertion reads naturally above.
trait TryInsertTime {
    fn try_insert_time(&mut self, id: u32, at: SimTime) -> bool;
}

impl TryInsertTime for HashMap<u32, SimTime> {
    fn try_insert_time(&mut self, id: u32, at: SimTime) -> bool {
        use std::collections::hash_map::Entry;
        match self.entry(id) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(at);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_partner_is_deterministic_and_not_self() {
        let mut a = GossipNode::new(
            NodeId(3),
            16,
            PeerStrategy::Restricted,
            false,
            SimDuration::from_millis(500),
        );
        a.round = 7;
        let p1 = a.restricted_partner();
        let p2 = a.restricted_partner();
        assert_eq!(p1, p2);
        assert_ne!(p1, NodeId(3));
        a.round = 8;
        // A different round (almost surely) yields a different partner.
        let p3 = a.restricted_partner();
        assert!(p3.0 < 16);
    }

    #[test]
    fn view_is_capped_and_excludes_self() {
        let mut a = GossipNode::new(
            NodeId(0),
            200,
            PeerStrategy::FreeRandom,
            false,
            SimDuration::from_millis(500),
        );
        let ids: Vec<u32> = (1..150).collect();
        a.admit_view(&ids);
        assert!(a.view.len() <= VIEW_CAP);
        a.admit_view(&[0]); // self: ignored
        assert!(!a.view.contains(&NodeId(0)));
        a.admit_view(&[9999]); // out of range: ignored
        assert!(!a.view.contains(&NodeId(9999)));
    }

    #[test]
    fn known_rumors_sorted() {
        let mut a = GossipNode::new(
            NodeId(0),
            4,
            PeerStrategy::FreeRandom,
            false,
            SimDuration::from_millis(500),
        );
        a.received.insert(5, SimTime::ZERO);
        a.received.insert(1, SimTime::ZERO);
        assert_eq!(a.known_rumors(), vec![1, 5]);
    }
}
