//! The cross-run policy store: content-addressed memoization of choice
//! resolution.
//!
//! Paper §3.4 asks for "using choices based on previous similar scenarios as
//! a fast alternative" to running consequence prediction on the critical
//! path. The EvalCache (PR 3) amortizes lookahead *within* a decision and
//! the resolver ladder (PR 4) *within* a run; this crate amortizes it
//! *across runs*: a campaign sweep records what lookahead concluded at every
//! `(scenario, choice, context, state fingerprint)` and later runs replay
//! those conclusions as a hash lookup, falling back to live prediction only
//! on a miss.
//!
//! Design constraints, in order:
//!
//! 1. **Content-addressed determinism.** Entries live in sorted maps keyed
//!    by stable fingerprints; [`PolicyStore::content_id`] is a pure function
//!    of the sorted contents, so two stores with the same entries are
//!    byte-identical on disk no matter who wrote them, in what order, on
//!    how many campaign workers (the tribles-rust pile idiom).
//! 2. **Order-independent merge.** [`PolicyStore::insert`] resolves key
//!    conflicts with a total order on entries ([`PolicyEntry::wins_over`]),
//!    making merge commutative, associative, and idempotent — parallel
//!    per-seed recording and determinism re-runs cannot perturb the result.
//! 3. **Versioned, validated format.** [`PolicyStore::to_bytes`] emits a
//!    magic + version header, sorted fixed-width little-endian entries, and
//!    a trailing content id; [`PolicyStore::from_bytes`] rejects bad magic,
//!    unknown versions, unsorted or duplicate keys, and checksum mismatches
//!    rather than silently serving a corrupt table.
//!
//! This crate is dependency-free (std only) so every layer — runtime,
//! harness, bench, external tooling — can speak the format.

use std::collections::btree_map::Entry as BTreeEntry;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// On-disk format version. Bumped on any layout change; readers reject
/// versions they do not understand.
pub const FORMAT_VERSION: u32 = 1;

/// Magic prefix of a serialized [`PolicyStore`].
pub const STORE_MAGIC: [u8; 4] = *b"CBPS";

/// Magic prefix of a serialized [`PolicyPile`].
pub const PILE_MAGIC: [u8; 4] = *b"CBPI";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Stable FNV-1a over a byte string, with an avalanche finish. Used to
/// content-address choice ids (`&'static str` at runtime, but only the hash
/// survives on disk) and as the accumulator behind [`PolicyStore::content_id`].
pub fn hash_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// SplitMix64-style avalanche: spreads low-entropy inputs (small integers,
/// FNV tails) over the full 64 bits so XOR-combined fingerprints don't
/// cancel structurally.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The content address of one memoized decision: which choice point, in
/// which discretized context, over which fingerprinted decision state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolicyKey {
    /// [`hash_str`] of the choice id (e.g. `"kv.read_replica"`).
    pub choice: u64,
    /// The raw context key.
    pub context: u64,
    /// Fingerprint of the decision-relevant state: the option set the
    /// resolver saw, XOR-combined with any service-supplied state
    /// fingerprint. Order-independent over options, so rotations of the
    /// same option set address the same entry.
    pub state_fp: u64,
}

impl PolicyKey {
    /// Builds a key from an already-hashed choice id.
    pub fn new(choice: u64, context: u64, state_fp: u64) -> Self {
        PolicyKey {
            choice,
            context,
            state_fp,
        }
    }

    /// Builds a key hashing the choice id in place.
    pub fn for_choice(choice_id: &str, context: u64, state_fp: u64) -> Self {
        PolicyKey::new(hash_str(choice_id), context, state_fp)
    }
}

/// What a training run concluded at a [`PolicyKey`]: the option it chose
/// and the prediction that justified it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyEntry {
    /// The chosen option's application-level key (not its index — indices
    /// are not rotation-stable).
    pub chosen_key: u64,
    /// Predicted objective for the chosen option, stored as IEEE-754 bits
    /// so the format stays fixed-width and bit-exact.
    pub objective_bits: u64,
    /// Property violations the training prediction saw in the chosen
    /// option's explored future (the memoized verdict: 0 = clean).
    pub violations: u64,
    /// States the training prediction explored — the lookahead cost this
    /// entry amortizes on every warm hit.
    pub states_explored: u64,
}

impl PolicyEntry {
    /// Builds an entry from an objective in its natural `f64` form.
    pub fn new(chosen_key: u64, objective: f64, violations: u64, states_explored: u64) -> Self {
        PolicyEntry {
            chosen_key,
            objective_bits: objective.to_bits(),
            violations,
            states_explored,
        }
    }

    /// The stored objective score.
    pub fn objective(&self) -> f64 {
        f64::from_bits(self.objective_bits)
    }

    /// Conflict rule for two recordings at the same key: fewer predicted
    /// violations wins (safety dominates), then higher objective, then the
    /// better-explored prediction, then the smaller chosen key. A strict
    /// total order over distinct entries, which is what makes
    /// [`PolicyStore::merge`] commutative, associative, and idempotent.
    pub fn wins_over(&self, other: &PolicyEntry) -> bool {
        if self.violations != other.violations {
            return self.violations < other.violations;
        }
        match self.objective().total_cmp(&other.objective()) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
        if self.states_explored != other.states_explored {
            return self.states_explored > other.states_explored;
        }
        self.chosen_key < other.chosen_key
    }
}

/// Errors loading a serialized store or pile.
#[derive(Debug)]
pub enum PolicyFormatError {
    /// The byte stream ended before the declared contents.
    Truncated,
    /// The magic prefix was not [`STORE_MAGIC`] / [`PILE_MAGIC`].
    BadMagic,
    /// A format version this reader does not understand.
    BadVersion(u32),
    /// Structurally invalid contents (unsorted keys, checksum mismatch, …).
    Corrupt(String),
    /// An underlying filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for PolicyFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyFormatError::Truncated => write!(f, "policy file truncated"),
            PolicyFormatError::BadMagic => write!(f, "not a policy file (bad magic)"),
            PolicyFormatError::BadVersion(v) => write!(f, "unsupported policy format version {v}"),
            PolicyFormatError::Corrupt(why) => write!(f, "corrupt policy file: {why}"),
            PolicyFormatError::Io(e) => write!(f, "policy io error: {e}"),
        }
    }
}

impl std::error::Error for PolicyFormatError {}

impl From<std::io::Error> for PolicyFormatError {
    fn from(e: std::io::Error) -> Self {
        PolicyFormatError::Io(e)
    }
}

/// One scenario's memoized decisions, sorted by content address.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PolicyStore {
    scenario: String,
    entries: BTreeMap<PolicyKey, PolicyEntry>,
}

impl PolicyStore {
    /// An empty store for `scenario`.
    pub fn new(scenario: &str) -> Self {
        PolicyStore {
            scenario: scenario.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// The scenario this store was trained on.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Number of memoized decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `key`, if one was recorded.
    pub fn get(&self, key: &PolicyKey) -> Option<&PolicyEntry> {
        self.entries.get(key)
    }

    /// Records a decision. On a key conflict the [`PolicyEntry::wins_over`]
    /// winner is kept, so insertion order never matters. Returns `true` when
    /// `entry` is now the stored value (new key, or it won the conflict).
    pub fn insert(&mut self, key: PolicyKey, entry: PolicyEntry) -> bool {
        match self.entries.entry(key) {
            BTreeEntry::Vacant(v) => {
                v.insert(entry);
                true
            }
            BTreeEntry::Occupied(mut o) => {
                if entry.wins_over(o.get()) {
                    o.insert(entry);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Merges another store's entries under the same conflict rule.
    /// Commutative, associative, and idempotent, so per-seed stores can be
    /// folded in any order (any worker count) with an identical result.
    pub fn merge(&mut self, other: &PolicyStore) {
        for (k, e) in &other.entries {
            self.insert(*k, *e);
        }
    }

    /// Sorted iteration over the contents (BTreeMap order — the only
    /// iteration order this crate ever exposes).
    pub fn iter(&self) -> impl Iterator<Item = (&PolicyKey, &PolicyEntry)> {
        self.entries.iter()
    }

    /// The store's content address: a pure function of the format version,
    /// scenario name, and sorted entries. Equal stores — however produced —
    /// have equal ids; the id doubles as the on-disk checksum.
    pub fn content_id(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(FORMAT_VERSION as u64);
        eat(hash_str(&self.scenario));
        eat(self.entries.len() as u64);
        for (k, e) in &self.entries {
            eat(k.choice);
            eat(k.context);
            eat(k.state_fp);
            eat(e.chosen_key);
            eat(e.objective_bits);
            eat(e.violations);
            eat(e.states_explored);
        }
        mix64(h)
    }

    /// Serializes to the versioned binary format. Deterministic: equal
    /// stores produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 4 + self.scenario.len() + 8 + self.len() * 56 + 8);
        out.extend_from_slice(&STORE_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.scenario.len() as u32).to_le_bytes());
        out.extend_from_slice(self.scenario.as_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (k, e) in &self.entries {
            for word in [
                k.choice,
                k.context,
                k.state_fp,
                e.chosen_key,
                e.objective_bits,
                e.violations,
                e.states_explored,
            ] {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.content_id().to_le_bytes());
        out
    }

    /// Parses and validates the binary format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PolicyFormatError> {
        let mut r = Reader { bytes, at: 0 };
        let store = Self::read_from(&mut r)?;
        if r.at != bytes.len() {
            return Err(PolicyFormatError::Corrupt(format!(
                "{} trailing bytes",
                bytes.len() - r.at
            )));
        }
        Ok(store)
    }

    fn read_from(r: &mut Reader<'_>) -> Result<Self, PolicyFormatError> {
        if r.take(4)? != STORE_MAGIC {
            return Err(PolicyFormatError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(PolicyFormatError::BadVersion(version));
        }
        let name_len = r.u32()? as usize;
        let scenario = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| PolicyFormatError::Corrupt("scenario name not utf-8".into()))?;
        let count = r.u64()? as usize;
        let mut entries = BTreeMap::new();
        let mut prev: Option<PolicyKey> = None;
        for _ in 0..count {
            let key = PolicyKey::new(r.u64()?, r.u64()?, r.u64()?);
            if let Some(p) = prev {
                if p >= key {
                    return Err(PolicyFormatError::Corrupt(
                        "entries not strictly sorted".into(),
                    ));
                }
            }
            prev = Some(key);
            let entry = PolicyEntry {
                chosen_key: r.u64()?,
                objective_bits: r.u64()?,
                violations: r.u64()?,
                states_explored: r.u64()?,
            };
            entries.insert(key, entry);
        }
        let store = PolicyStore { scenario, entries };
        let checksum = r.u64()?;
        let want = store.content_id();
        if checksum != want {
            return Err(PolicyFormatError::Corrupt(format!(
                "content id mismatch: file says {checksum:#018x}, contents hash to {want:#018x}"
            )));
        }
        Ok(store)
    }
}

/// A multi-scenario pile of policy stores — the unit `campaign
/// --record-policy` writes and `--policy` loads. Stores are keyed (and
/// serialized) by scenario name in sorted order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PolicyPile {
    stores: BTreeMap<String, PolicyStore>,
}

impl PolicyPile {
    /// An empty pile.
    pub fn new() -> Self {
        PolicyPile::default()
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when no store is present.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Total entries across all stores.
    pub fn total_entries(&self) -> usize {
        self.stores.values().map(PolicyStore::len).sum()
    }

    /// The store for a scenario, if present.
    pub fn get(&self, scenario: &str) -> Option<&PolicyStore> {
        self.stores.get(scenario)
    }

    /// Inserts a store, merging with any existing store for the same
    /// scenario.
    pub fn insert_store(&mut self, store: PolicyStore) {
        match self.stores.entry(store.scenario().to_string()) {
            BTreeEntry::Vacant(v) => {
                v.insert(store);
            }
            BTreeEntry::Occupied(mut o) => o.get_mut().merge(&store),
        }
    }

    /// Merges another pile store-by-store.
    pub fn merge(&mut self, other: &PolicyPile) {
        for store in other.stores.values() {
            self.insert_store(store.clone());
        }
    }

    /// Sorted iteration over the stores.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &PolicyStore)> {
        self.stores.iter()
    }

    /// Content address of the whole pile: hash of the sorted store ids.
    pub fn content_id(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for store in self.stores.values() {
            for b in store.content_id().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        mix64(h)
    }

    /// Serializes the pile (deterministic, like the stores).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&PILE_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.stores.len() as u32).to_le_bytes());
        for store in self.stores.values() {
            let bytes = store.to_bytes();
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out.extend_from_slice(&self.content_id().to_le_bytes());
        out
    }

    /// Parses and validates a serialized pile.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PolicyFormatError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != PILE_MAGIC {
            return Err(PolicyFormatError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(PolicyFormatError::BadVersion(version));
        }
        let count = r.u32()? as usize;
        let mut stores = BTreeMap::new();
        let mut prev: Option<String> = None;
        for _ in 0..count {
            let len = r.u64()? as usize;
            let store = PolicyStore::from_bytes(r.take(len)?)?;
            if let Some(p) = &prev {
                if p.as_str() >= store.scenario() {
                    return Err(PolicyFormatError::Corrupt(
                        "pile stores not sorted by scenario".into(),
                    ));
                }
            }
            prev = Some(store.scenario().to_string());
            stores.insert(store.scenario().to_string(), store);
        }
        let pile = PolicyPile { stores };
        let checksum = r.u64()?;
        if checksum != pile.content_id() {
            return Err(PolicyFormatError::Corrupt(
                "pile content id mismatch".into(),
            ));
        }
        if r.at != bytes.len() {
            return Err(PolicyFormatError::Corrupt("trailing bytes".into()));
        }
        Ok(pile)
    }

    /// Writes the pile to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PolicyFormatError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a pile from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PolicyFormatError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        PolicyPile::from_bytes(&bytes)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PolicyFormatError> {
        if self.at + n > self.bytes.len() {
            return Err(PolicyFormatError::Truncated);
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PolicyFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PolicyFormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_store() -> PolicyStore {
        let mut s = PolicyStore::new("kv");
        for i in 0..10u64 {
            s.insert(
                PolicyKey::for_choice("kv.read_replica", i % 3, mix64(i)),
                PolicyEntry::new(i % 5, i as f64 * 0.25, i % 2, 100 + i),
            );
        }
        s
    }

    #[test]
    fn insert_keeps_the_conflict_winner() {
        let mut s = PolicyStore::new("t");
        let k = PolicyKey::for_choice("c", 0, 1);
        assert!(s.insert(k, PolicyEntry::new(1, 1.0, 1, 10)));
        // Fewer violations wins regardless of objective.
        assert!(s.insert(k, PolicyEntry::new(2, 0.1, 0, 5)));
        assert_eq!(s.get(&k).unwrap().chosen_key, 2);
        // More violations loses.
        assert!(!s.insert(k, PolicyEntry::new(3, 9.0, 1, 500)));
        assert_eq!(s.get(&k).unwrap().chosen_key, 2);
        // Same violations, higher objective wins.
        assert!(s.insert(k, PolicyEntry::new(4, 0.2, 0, 5)));
        assert_eq!(s.get(&k).unwrap().chosen_key, 4);
        // Identical entry is a no-op.
        assert!(!s.insert(k, PolicyEntry::new(4, 0.2, 0, 5)));
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let s = sample_store();
        let bytes = s.to_bytes();
        let loaded = PolicyStore::from_bytes(&bytes).expect("load");
        assert_eq!(loaded, s);
        assert_eq!(loaded.to_bytes(), bytes, "save → load → save must agree");
        assert_eq!(loaded.content_id(), s.content_id());
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        let s = sample_store();
        let mut bytes = s.to_bytes();
        // Flip one entry byte: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            PolicyStore::from_bytes(&bytes),
            Err(PolicyFormatError::Corrupt(_))
        ));
        // Wrong magic.
        let mut bad = s.to_bytes();
        bad[0] = b'X';
        assert!(matches!(
            PolicyStore::from_bytes(&bad),
            Err(PolicyFormatError::BadMagic)
        ));
        // Future version.
        let mut newer = s.to_bytes();
        newer[4] = 99;
        assert!(matches!(
            PolicyStore::from_bytes(&newer),
            Err(PolicyFormatError::BadVersion(99))
        ));
        // Truncation.
        let cut = &s.to_bytes()[..20];
        assert!(matches!(
            PolicyStore::from_bytes(cut),
            Err(PolicyFormatError::Truncated)
        ));
    }

    #[test]
    fn pile_round_trip_and_lookup() {
        let mut pile = PolicyPile::new();
        pile.insert_store(sample_store());
        let mut g = PolicyStore::new("gossip");
        g.insert(
            PolicyKey::for_choice("gossip.fanout", 0, 7),
            PolicyEntry::new(3, 1.5, 0, 64),
        );
        pile.insert_store(g);
        let bytes = pile.to_bytes();
        let loaded = PolicyPile::from_bytes(&bytes).expect("load");
        assert_eq!(loaded, pile);
        assert_eq!(loaded.to_bytes(), bytes);
        assert_eq!(loaded.get("kv").unwrap().len(), 10);
        assert!(loaded.get("ring").is_none());
        assert_eq!(loaded.total_entries(), 11);
    }

    #[test]
    fn merge_is_order_independent_and_idempotent() {
        let a = sample_store();
        let mut b = PolicyStore::new("kv");
        for i in 5..15u64 {
            b.insert(
                PolicyKey::for_choice("kv.read_replica", i % 3, mix64(i)),
                PolicyEntry::new(i % 7, i as f64 * 0.5, 0, 50 + i),
            );
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.content_id(), ba.content_id());
        let id = ab.content_id();
        ab.merge(&b); // idempotent
        ab.merge(&a);
        assert_eq!(ab.content_id(), id);
    }

    proptest! {
        #[test]
        fn prop_store_round_trips(seed in 0u64..10_000, n in 0usize..60) {
            let mut s = PolicyStore::new("prop");
            let mut x = seed;
            for _ in 0..n {
                x = mix64(x);
                let key = PolicyKey::new(mix64(x ^ 1), x % 5, mix64(x ^ 2));
                let entry = PolicyEntry::new(x % 9, (x % 1000) as f64 / 7.0, x % 3, x % 2048);
                s.insert(key, entry);
            }
            let bytes = s.to_bytes();
            let loaded = PolicyStore::from_bytes(&bytes).expect("round trip");
            prop_assert_eq!(&loaded, &s);
            prop_assert_eq!(loaded.to_bytes(), bytes);
        }

        #[test]
        fn prop_insert_order_never_matters(seed in 0u64..10_000, n in 1usize..40) {
            // Generate n (key, entry) pairs, insert them forwards and
            // backwards (with duplicates): identical stores either way.
            let mut pairs = Vec::new();
            let mut x = seed;
            for _ in 0..n {
                x = mix64(x);
                // Small key space on purpose: force conflicts.
                let key = PolicyKey::new(x % 4, x % 3, x % 4);
                let entry = PolicyEntry::new(x % 6, (x % 100) as f64, x % 2, x % 512);
                pairs.push((key, entry));
            }
            let mut fwd = PolicyStore::new("prop");
            for (k, e) in &pairs {
                fwd.insert(*k, *e);
            }
            let mut rev = PolicyStore::new("prop");
            for (k, e) in pairs.iter().rev() {
                rev.insert(*k, *e);
            }
            prop_assert_eq!(&fwd, &rev);
            prop_assert_eq!(fwd.content_id(), rev.content_id());
        }
    }
}
