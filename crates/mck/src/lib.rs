//! # cb-mck — explicit-state model checking with consequence prediction
//!
//! The prediction substrate of the explicit-choice runtime. The paper builds
//! its "predictive system model" on a model checker (Mace's, in the case
//! study); this crate is that component rebuilt as a library:
//!
//! * [`system::TransitionSystem`] — the abstraction being explored: states,
//!   enabled actions, a pure `step`.
//! * [`explore`] — bounded BFS/DFS with visited-state fingerprinting,
//!   safety checking on every state, bounded liveness on paths.
//! * [`consequence`] — CrystalBall's consequence prediction: explore
//!   causally related chains of events instead of all interleavings.
//! * [`walk`] — weighted random walks: the "model checker as simulator"
//!   mode used for performance prediction.
//! * [`parallel`] — level-synchronized parallel BFS over multiple cores.
//! * [`props`] — safety and bounded-liveness properties with
//!   counterexample paths.
//! * [`hash`] — stable (non-randomized) state fingerprinting.
//!
//! # Example: checking a tiny protocol
//!
//! ```
//! use cb_mck::explore::{bfs, ExploreConfig};
//! use cb_mck::props::Property;
//! use cb_mck::system::TransitionSystem;
//!
//! /// Two flags that must never both be set.
//! struct Mutex2;
//! impl TransitionSystem for Mutex2 {
//!     type State = (bool, bool);
//!     type Action = u8;
//!     fn initial(&self) -> (bool, bool) { (false, false) }
//!     fn actions(&self, s: &(bool, bool)) -> Vec<u8> {
//!         let mut v = Vec::new();
//!         if !s.0 { v.push(0) }
//!         if !s.1 { v.push(1) }
//!         v
//!     }
//!     fn step(&self, s: &(bool, bool), a: &u8) -> (bool, bool) {
//!         if *a == 0 { (true, s.1) } else { (s.0, true) }
//!     }
//! }
//!
//! let report = bfs(
//!     &Mutex2,
//!     &[Property::safety("mutual exclusion", |s: &(bool, bool)| !(s.0 && s.1))],
//!     &ExploreConfig::depth(4),
//! );
//! assert!(!report.safe()); // both actions can fire
//! assert_eq!(report.violations[0].path.len(), 2);
//! ```

pub mod consequence;
pub mod explore;
pub mod hash;
pub mod parallel;
pub mod props;
pub mod system;
pub mod walk;

pub use consequence::{predict, ConsequenceReport};
pub use explore::{bfs, dfs, iddfs, ExplorationReport, ExploreConfig, LivenessOutcome};
pub use parallel::parallel_bfs;
pub use props::{Property, PropertyKind, Violation};
pub use system::{replay, TransitionSystem};
pub use walk::{random_walks, WalkConfig, WalkReport};
