//! Stable state fingerprinting.
//!
//! Explicit-state exploration stores *fingerprints* of visited states rather
//! than the states themselves. The hasher must be stable — the same state
//! must hash identically across runs and processes, or determinism tests and
//! cross-run comparisons fall apart — so we use FNV-1a explicitly instead of
//! `std::collections::hash_map::RandomState`.

use std::hash::{Hash, Hasher};

/// A 64-bit FNV-1a hasher with no per-process randomization.
///
/// # Examples
///
/// ```
/// use cb_mck::hash::fingerprint;
///
/// assert_eq!(fingerprint(&("a", 1)), fingerprint(&("a", 1)));
/// assert_ne!(fingerprint(&("a", 1)), fingerprint(&("a", 2)));
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        // A final avalanche improves low-bit diffusion for table indexing.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Fingerprints any hashable value with the stable hasher.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let v = vec![1u32, 2, 3];
        assert_eq!(fingerprint(&v), fingerprint(&v));
    }

    #[test]
    fn sensitive_to_content_and_order() {
        assert_ne!(fingerprint(&[1u8, 2]), fingerprint(&[2u8, 1]));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
    }

    #[test]
    fn known_value_is_pinned() {
        // Pins the algorithm: if the hasher changes, stored fingerprints and
        // recorded experiment outputs silently diverge — fail loudly instead.
        assert_eq!(fingerprint(&42u64), fingerprint(&42u64));
        let f = fingerprint(&0u8);
        assert_ne!(f, 0);
    }

    #[test]
    fn low_bits_are_diffused() {
        // Sequential integers should not collide in their low 16 bits too often.
        use std::collections::HashSet;
        let lows: HashSet<u16> = (0..1000u32).map(|i| fingerprint(&i) as u16).collect();
        assert!(
            lows.len() > 950,
            "low-bit collisions: {}",
            1000 - lows.len()
        );
    }
}
