//! Stable state fingerprinting.
//!
//! Explicit-state exploration stores *fingerprints* of visited states rather
//! than the states themselves. The hasher must be stable — the same state
//! must hash identically across runs and processes, or determinism tests and
//! cross-run comparisons fall apart — so we use FNV-1a explicitly instead of
//! `std::collections::hash_map::RandomState`.
//!
//! Two performance-relevant details:
//!
//! * [`StableHasher::write`] consumes its input in 8-byte chunks (one XOR +
//!   one multiply per chunk instead of per byte), and the fixed-width
//!   `write_uN` entry points fold the value in a single round. The final
//!   [`finish`](StableHasher::finish) avalanche restores the bit diffusion a
//!   per-byte FNV would have accumulated.
//! * Visited sets keyed by fingerprints should use [`FingerprintSet`] /
//!   [`FingerprintMap`]: the fingerprints already went through the avalanche
//!   finalizer, so re-hashing them through SipHash on every probe is pure
//!   waste. [`IdentityHasher`] passes the u64 straight through.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 64-bit FNV-1a-style hasher with no per-process randomization.
///
/// # Examples
///
/// ```
/// use cb_mck::hash::fingerprint;
///
/// assert_eq!(fingerprint(&("a", 1)), fingerprint(&("a", 1)));
/// assert_ne!(fingerprint(&("a", 1)), fingerprint(&("a", 2)));
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    #[inline]
    fn round(&mut self, word: u64) {
        self.state ^= word;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        // A final avalanche improves low-bit diffusion for table indexing.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunked FNV: one XOR+multiply per 8 bytes. Little-endian chunk
        // loads keep within-chunk byte order significant, and the trailing
        // remainder is folded as a length-tagged word so `"abc"` and
        // `"abc\0"` cannot collide trivially.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Unwrap is infallible: chunks_exact yields exactly 8 bytes.
            self.round(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] = rem.len() as u8;
            self.round(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.round(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.round(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.round(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.round(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.round(v as u64);
        self.round((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.round(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.round(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.round(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.round(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.round(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.round(v as usize as u64);
    }
}

/// Fingerprints any hashable value with the stable hasher.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// A pass-through hasher for values that are *already* fingerprints.
///
/// [`fingerprint`] ends with a splitmix-style avalanche, so its output is
/// uniformly distributed across all 64 bits; feeding it through SipHash
/// again on every visited-set probe buys nothing. This hasher returns the
/// u64 it was given.
///
/// Only the fixed-width integer writes are supported — using it on
/// arbitrary byte streams is a logic error.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityHasher {
    state: u64,
}

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only hashes pre-fingerprinted integers");
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = v;
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.state = v as u64;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.state = v as u64;
    }
}

/// `BuildHasher` for [`IdentityHasher`].
pub type BuildIdentityHasher = BuildHasherDefault<IdentityHasher>;

/// A visited set keyed by pre-avalanched fingerprints (no re-hashing).
pub type FingerprintSet = HashSet<u64, BuildIdentityHasher>;

/// A map keyed by pre-avalanched fingerprints (no re-hashing).
pub type FingerprintMap<V> = HashMap<u64, V, BuildIdentityHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let v = vec![1u32, 2, 3];
        assert_eq!(fingerprint(&v), fingerprint(&v));
    }

    #[test]
    fn sensitive_to_content_and_order() {
        assert_ne!(fingerprint(&[1u8, 2]), fingerprint(&[2u8, 1]));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        // Within-chunk order matters for the chunked byte path too.
        assert_ne!(
            fingerprint("abcdefgh".as_bytes()),
            fingerprint("hgfedcba".as_bytes())
        );
    }

    #[test]
    fn known_value_is_pinned() {
        // Pins the algorithm: if the hasher changes, stored fingerprints and
        // recorded experiment outputs silently diverge — fail loudly instead.
        // These are the chunked-write values; re-record them (and any
        // results/*.json fingerprints) whenever the algorithm changes on
        // purpose.
        assert_eq!(fingerprint(&42u64), PIN_U64_42);
        assert_eq!(fingerprint(&0u8), PIN_U8_0);
        assert_eq!(fingerprint("crystalball"), PIN_STR);
        assert_eq!(fingerprint(&("a", 1u32)), PIN_TUPLE);
    }

    // Pinned constants recorded from the chunked FNV implementation.
    const PIN_U64_42: u64 = 0x74f1_91b6_94d3_2786;
    const PIN_U8_0: u64 = 0x25fc_6dd3_6ce0_4b20;
    const PIN_STR: u64 = 0xb240_0457_0ef6_20e3;
    const PIN_TUPLE: u64 = 0x1388_9453_ef5f_7696;

    #[test]
    fn chunked_write_matches_word_writes_for_whole_words() {
        // An 8-byte `write` folds exactly like `write_u64` of the LE word,
        // so slice-of-bytes and integer paths agree on whole words.
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let word = u64::from_le_bytes(bytes);
        let mut a = StableHasher::new();
        a.write(&bytes);
        let mut b = StableHasher::new();
        b.write_u64(word);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tail_length_is_significant() {
        // Length-tagged remainders keep zero-padded prefixes apart.
        let mut a = StableHasher::new();
        a.write(&[0u8; 3]);
        let mut b = StableHasher::new();
        b.write(&[0u8; 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn identity_hasher_passes_fingerprints_through() {
        use std::hash::BuildHasher;
        let fp = fingerprint(&("state", 7u64));
        assert_eq!(BuildIdentityHasher::default().hash_one(fp), fp);

        let mut set = FingerprintSet::default();
        assert!(set.insert(fp));
        assert!(!set.insert(fp));
        assert!(set.contains(&fp));
    }

    #[test]
    fn low_bits_are_diffused() {
        // Sequential integers should not collide in their low 16 bits too often.
        use std::collections::HashSet;
        let lows: HashSet<u16> = (0..1000u32).map(|i| fingerprint(&i) as u16).collect();
        assert!(
            lows.len() > 950,
            "low-bit collisions: {}",
            1000 - lows.len()
        );
    }
}
