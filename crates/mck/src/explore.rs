//! Bounded breadth-first and depth-first state-space exploration.
//!
//! This is the workhorse the paper's §3.4 refers to as "state space
//! exploration up to a certain depth": walk every interleaving of enabled
//! actions from the initial state, prune states already seen (by stable
//! fingerprint), check safety on every state, and track bounded liveness
//! along terminated paths. Budgets — depth and state count — make the cost
//! predictable, which is what lets the runtime run exploration on the side
//! without stalling the system.

use crate::hash::{fingerprint, FingerprintSet};
use crate::props::{Property, PropertyKind, Violation};
use crate::system::TransitionSystem;
use cb_telemetry::{keys, Registry};
use std::collections::VecDeque;

/// Exploration budgets and switches.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum path length from the initial state.
    pub max_depth: usize,
    /// Maximum number of distinct states to visit before truncating.
    pub max_states: usize,
    /// Stop at the first safety violation instead of collecting several.
    pub stop_at_first_violation: bool,
    /// Upper bound on collected violations (ignored when stopping at first).
    pub max_violations: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 5,
            max_states: 100_000,
            stop_at_first_violation: false,
            max_violations: 16,
        }
    }
}

impl ExploreConfig {
    /// A config with the given depth and the default budgets.
    pub fn depth(max_depth: usize) -> Self {
        ExploreConfig {
            max_depth,
            ..Default::default()
        }
    }
}

/// Result of a liveness check for one `eventually` property.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LivenessOutcome {
    /// Complete paths examined (terminated by depth bound or deadlock).
    pub paths_checked: u64,
    /// Paths on which the predicate never held.
    pub paths_missed: u64,
}

impl LivenessOutcome {
    /// Fraction of checked paths that satisfied the property, in `[0, 1]`.
    /// Returns 1.0 when no path was checked.
    pub fn satisfaction(&self) -> f64 {
        if self.paths_checked == 0 {
            1.0
        } else {
            1.0 - self.paths_missed as f64 / self.paths_checked as f64
        }
    }
}

/// What an exploration saw.
#[derive(Clone, Debug)]
pub struct ExplorationReport<A> {
    /// Distinct states visited (including the initial state).
    pub states_visited: u64,
    /// States whose successors were generated.
    pub states_expanded: u64,
    /// Transitions taken (successor generations).
    pub transitions: u64,
    /// Transitions whose successor had already been visited (the dedup
    /// ratio is `dedup_hits / transitions`). Deterministic even for the
    /// level-synchronized parallel search: per level, it equals
    /// transitions minus unique new states, both pure functions of the
    /// system.
    pub dedup_hits: u64,
    /// Peak size of the pending frontier (BFS queue / DFS stack /
    /// parallel level), in states.
    pub frontier_peak: u64,
    /// Visited-set shard-lock contention events in the parallel search
    /// (try_lock failures). Scheduling-dependent — exported under a
    /// `wall` key and masked by determinism checks. Always 0 for the
    /// sequential searches.
    pub shard_contention_wall: u64,
    /// Deepest level reached.
    pub max_depth_reached: usize,
    /// True when a budget cut the search short.
    pub truncated: bool,
    /// Detected safety violations with counterexample paths.
    pub violations: Vec<Violation<A>>,
    /// Bounded-liveness outcomes, one per `eventually` property, in the
    /// order the properties were supplied.
    pub liveness: Vec<(String, LivenessOutcome)>,
}

impl<A> ExplorationReport<A> {
    /// True when no safety property was violated.
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }

    pub(crate) fn new() -> Self {
        ExplorationReport {
            states_visited: 0,
            states_expanded: 0,
            transitions: 0,
            dedup_hits: 0,
            frontier_peak: 0,
            shard_contention_wall: 0,
            max_depth_reached: 0,
            truncated: false,
            violations: Vec::new(),
            liveness: Vec::new(),
        }
    }

    /// Accumulates this report's exploration budget into a telemetry
    /// registry under the standard `mck.*` keys: counters add (multiple
    /// explorations per run sum), peak gauges keep the maximum.
    pub fn record_into(&self, reg: &mut Registry) {
        reg.add(keys::MCK_STATES_VISITED, self.states_visited);
        reg.add(keys::MCK_STATES_EXPANDED, self.states_expanded);
        reg.add(keys::MCK_TRANSITIONS, self.transitions);
        reg.add(keys::MCK_DEDUP_HITS, self.dedup_hits);
        reg.add(keys::MCK_SHARD_CONTENTION_WALL, self.shard_contention_wall);
        reg.gauge_raise(keys::MCK_FRONTIER_PEAK, self.frontier_peak as i64);
        reg.gauge_raise(keys::MCK_MAX_DEPTH, self.max_depth_reached as i64);
    }
}

/// Arena node for path reconstruction without storing a path per queue entry.
///
/// Shared with `consequence::predict`, whose chain frames reference arena
/// indices instead of carrying cloned paths.
pub(crate) struct SearchNode<A> {
    pub(crate) parent: Option<(usize, A)>,
    pub(crate) depth: usize,
    /// Bitmask: which `eventually` properties have held somewhere on the
    /// path to this node (supports up to 64, far beyond practical use).
    pub(crate) eventually_seen: u64,
}

pub(crate) fn reconstruct<A: Clone>(arena: &[SearchNode<A>], mut idx: usize) -> Vec<A> {
    let mut path = Vec::with_capacity(arena[idx].depth);
    while let Some((parent, action)) = &arena[idx].parent {
        path.push(action.clone());
        idx = *parent;
    }
    path.reverse();
    path
}

/// Explores breadth-first from the initial state.
///
/// Safety properties are checked on every distinct state; `eventually`
/// properties are judged on complete paths (cut by the depth bound, a
/// deadlock, or a previously visited state).
///
/// # Examples
///
/// ```
/// use cb_mck::explore::{bfs, ExploreConfig};
/// use cb_mck::props::Property;
/// use cb_mck::system::TransitionSystem;
///
/// struct Counter;
/// impl TransitionSystem for Counter {
///     type State = u32;
///     type Action = u32; // add this much
///     fn initial(&self) -> u32 { 0 }
///     fn actions(&self, _: &u32) -> Vec<u32> { vec![1, 2] }
///     fn step(&self, s: &u32, a: &u32) -> u32 { s + a }
/// }
///
/// let report = bfs(
///     &Counter,
///     &[Property::safety("below 4", |s: &u32| *s < 4)],
///     &ExploreConfig::depth(3),
/// );
/// assert!(!report.safe());
/// ```
pub fn bfs<T: TransitionSystem>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &ExploreConfig,
) -> ExplorationReport<T::Action> {
    let mut report = ExplorationReport::new();
    let safety: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::Safety)
        .collect();
    let eventually: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::EventuallyWithinHorizon)
        .collect();
    assert!(
        eventually.len() <= 64,
        "at most 64 eventually-properties supported"
    );
    let mut liveness: Vec<LivenessOutcome> = vec![LivenessOutcome::default(); eventually.len()];

    let initial = sys.initial();
    // Fingerprints already went through the avalanche finalizer: store them
    // in an identity-hashed set instead of paying SipHash per probe.
    let mut visited = FingerprintSet::default();
    visited.insert(fingerprint(&initial));
    let mut arena: Vec<SearchNode<T::Action>> = Vec::new();
    let mut seen0 = 0u64;
    for (i, p) in eventually.iter().enumerate() {
        if p.holds(&initial) {
            seen0 |= 1 << i;
        }
    }
    arena.push(SearchNode {
        parent: None,
        depth: 0,
        eventually_seen: seen0,
    });
    report.states_visited = 1;

    for p in &safety {
        if !p.holds(&initial) {
            report.violations.push(Violation {
                property: p.name().to_string(),
                kind: PropertyKind::Safety,
                path: Vec::new(),
            });
            if cfg.stop_at_first_violation {
                return report;
            }
        }
    }

    // Queue holds (arena index, state). States stay in the queue only while
    // pending expansion, bounding live memory to the frontier.
    let mut queue: VecDeque<(usize, T::State)> = VecDeque::new();
    queue.push_back((0, initial));
    report.frontier_peak = 1;

    let finish_path =
        |idx: usize, arena: &[SearchNode<T::Action>], liveness: &mut Vec<LivenessOutcome>| {
            let seen = arena[idx].eventually_seen;
            for (i, out) in liveness.iter_mut().enumerate() {
                out.paths_checked += 1;
                if seen & (1 << i) == 0 {
                    out.paths_missed += 1;
                }
            }
        };

    // One actions buffer for the whole search instead of a Vec per state.
    let mut actions_buf: Vec<T::Action> = Vec::new();
    while let Some((idx, state)) = queue.pop_front() {
        let depth = arena[idx].depth;
        report.max_depth_reached = report.max_depth_reached.max(depth);
        if depth >= cfg.max_depth {
            finish_path(idx, &arena, &mut liveness);
            continue;
        }
        actions_buf.clear();
        sys.actions_into(&state, &mut actions_buf);
        if actions_buf.is_empty() {
            finish_path(idx, &arena, &mut liveness);
            continue;
        }
        report.states_expanded += 1;
        let mut any_new = false;
        for action in actions_buf.drain(..) {
            report.transitions += 1;
            let next = sys.step(&state, &action);
            let fp = fingerprint(&next);
            if !visited.insert(fp) {
                report.dedup_hits += 1;
                continue;
            }
            any_new = true;
            report.states_visited += 1;
            let mut seen = arena[idx].eventually_seen;
            for (i, p) in eventually.iter().enumerate() {
                if seen & (1 << i) == 0 && p.holds(&next) {
                    seen |= 1 << i;
                }
            }
            let child = arena.len();
            arena.push(SearchNode {
                parent: Some((idx, action)),
                depth: depth + 1,
                eventually_seen: seen,
            });
            for p in &safety {
                if !p.holds(&next) {
                    report.violations.push(Violation {
                        property: p.name().to_string(),
                        kind: PropertyKind::Safety,
                        path: reconstruct(&arena, child),
                    });
                    if cfg.stop_at_first_violation || report.violations.len() >= cfg.max_violations
                    {
                        report.truncated = true;
                        for (i, p) in eventually.iter().enumerate() {
                            report
                                .liveness
                                .push((p.name().to_string(), liveness[i].clone()));
                        }
                        return report;
                    }
                }
            }
            if report.states_visited as usize >= cfg.max_states {
                report.truncated = true;
                for (i, p) in eventually.iter().enumerate() {
                    report
                        .liveness
                        .push((p.name().to_string(), liveness[i].clone()));
                }
                return report;
            }
            queue.push_back((child, next));
            report.frontier_peak = report.frontier_peak.max(queue.len() as u64);
        }
        if !any_new {
            // Every successor was already visited: treat as a path end for
            // liveness purposes (the cycle/merge has been accounted for).
            finish_path(idx, &arena, &mut liveness);
        }
    }
    for (i, p) in eventually.iter().enumerate() {
        report
            .liveness
            .push((p.name().to_string(), liveness[i].clone()));
    }
    report
}

/// Depth-first variant with the same budgets; explores deep paths first,
/// which finds deep violations faster at the cost of breadth coverage.
///
/// `eventually` properties are judged on complete paths exactly like
/// [`bfs`]: a path is complete when the depth bound cuts it, the state
/// deadlocks, or every successor was already visited. (Earlier revisions
/// silently dropped liveness here — the `eventually_seen` bitmask was
/// carried but never updated or reported.)
pub fn dfs<T: TransitionSystem>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &ExploreConfig,
) -> ExplorationReport<T::Action> {
    let mut report = ExplorationReport::new();
    let safety: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::Safety)
        .collect();
    let eventually: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::EventuallyWithinHorizon)
        .collect();
    assert!(
        eventually.len() <= 64,
        "at most 64 eventually-properties supported"
    );
    let mut liveness: Vec<LivenessOutcome> = vec![LivenessOutcome::default(); eventually.len()];

    let initial = sys.initial();
    let mut visited = FingerprintSet::default();
    visited.insert(fingerprint(&initial));
    let mut arena: Vec<SearchNode<T::Action>> = Vec::new();
    let mut seen0 = 0u64;
    for (i, p) in eventually.iter().enumerate() {
        if p.holds(&initial) {
            seen0 |= 1 << i;
        }
    }
    arena.push(SearchNode {
        parent: None,
        depth: 0,
        eventually_seen: seen0,
    });
    report.states_visited = 1;
    for p in &safety {
        if !p.holds(&initial) {
            report.violations.push(Violation {
                property: p.name().to_string(),
                kind: PropertyKind::Safety,
                path: Vec::new(),
            });
            if cfg.stop_at_first_violation {
                return report;
            }
        }
    }

    let finish_path =
        |idx: usize, arena: &[SearchNode<T::Action>], liveness: &mut Vec<LivenessOutcome>| {
            let seen = arena[idx].eventually_seen;
            for (i, out) in liveness.iter_mut().enumerate() {
                out.paths_checked += 1;
                if seen & (1 << i) == 0 {
                    out.paths_missed += 1;
                }
            }
        };
    let emit_liveness = |report: &mut ExplorationReport<T::Action>,
                         eventually: &[&Property<T::State>],
                         liveness: &[LivenessOutcome]| {
        for (i, p) in eventually.iter().enumerate() {
            report
                .liveness
                .push((p.name().to_string(), liveness[i].clone()));
        }
    };

    let mut stack: Vec<(usize, T::State)> = vec![(0, initial)];
    report.frontier_peak = 1;
    let mut actions_buf: Vec<T::Action> = Vec::new();
    while let Some((idx, state)) = stack.pop() {
        let depth = arena[idx].depth;
        report.max_depth_reached = report.max_depth_reached.max(depth);
        if depth >= cfg.max_depth {
            finish_path(idx, &arena, &mut liveness);
            continue;
        }
        actions_buf.clear();
        sys.actions_into(&state, &mut actions_buf);
        if actions_buf.is_empty() {
            finish_path(idx, &arena, &mut liveness);
            continue;
        }
        report.states_expanded += 1;
        let mut any_new = false;
        for action in actions_buf.drain(..) {
            report.transitions += 1;
            let next = sys.step(&state, &action);
            let fp = fingerprint(&next);
            if !visited.insert(fp) {
                report.dedup_hits += 1;
                continue;
            }
            any_new = true;
            report.states_visited += 1;
            let mut seen = arena[idx].eventually_seen;
            for (i, p) in eventually.iter().enumerate() {
                if seen & (1 << i) == 0 && p.holds(&next) {
                    seen |= 1 << i;
                }
            }
            let child = arena.len();
            arena.push(SearchNode {
                parent: Some((idx, action)),
                depth: depth + 1,
                eventually_seen: seen,
            });
            for p in &safety {
                if !p.holds(&next) {
                    report.violations.push(Violation {
                        property: p.name().to_string(),
                        kind: PropertyKind::Safety,
                        path: reconstruct(&arena, child),
                    });
                    if cfg.stop_at_first_violation || report.violations.len() >= cfg.max_violations
                    {
                        report.truncated = true;
                        emit_liveness(&mut report, &eventually, &liveness);
                        return report;
                    }
                }
            }
            if report.states_visited as usize >= cfg.max_states {
                report.truncated = true;
                emit_liveness(&mut report, &eventually, &liveness);
                return report;
            }
            stack.push((child, next));
            report.frontier_peak = report.frontier_peak.max(stack.len() as u64);
        }
        if !any_new {
            finish_path(idx, &arena, &mut liveness);
        }
    }
    emit_liveness(&mut report, &eventually, &liveness);
    report
}

/// Iterative-deepening DFS: runs [`dfs`] at increasing depth bounds until a
/// safety violation is found, the full bound is reached, or a budget trips.
///
/// Finds a *shallowest* violation like BFS does, with DFS's frontier memory
/// footprint — the classic trade: transitions are re-explored at each
/// deepening round. The returned report is the final round's, with
/// `transitions` accumulated across rounds.
pub fn iddfs<T: TransitionSystem>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &ExploreConfig,
) -> ExplorationReport<T::Action> {
    let mut total_transitions = 0;
    let mut total_dedup = 0;
    let mut peak = 0;
    for depth in 1..=cfg.max_depth.max(1) {
        let round_cfg = ExploreConfig {
            max_depth: depth,
            ..cfg.clone()
        };
        let mut report = dfs(sys, props, &round_cfg);
        total_transitions += report.transitions;
        total_dedup += report.dedup_hits;
        peak = peak.max(report.frontier_peak);
        if !report.safe() || report.truncated || depth == cfg.max_depth.max(1) {
            report.transitions = total_transitions;
            report.dedup_hits = total_dedup;
            report.frontier_peak = peak;
            return report;
        }
    }
    unreachable!("loop always returns on the final depth");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::toy::{CounterRing, RingState, TokenRing};

    #[test]
    fn bfs_counts_reachable_states_exactly() {
        // CounterRing(2, modulus 3): 3*3 = 9 reachable states.
        let sys = CounterRing { n: 2, modulus: 3 };
        let report = bfs(
            &sys,
            &[],
            &ExploreConfig {
                max_depth: 10,
                ..Default::default()
            },
        );
        assert_eq!(report.states_visited, 9);
        assert!(report.safe());
        assert!(!report.truncated);
    }

    #[test]
    fn bfs_depth_bound_limits_reach() {
        let sys = TokenRing { n: 100 };
        let report = bfs(&sys, &[], &ExploreConfig::depth(5));
        // Token advances one position per step: exactly depth+1 states.
        assert_eq!(report.states_visited, 6);
        assert_eq!(report.max_depth_reached, 5);
    }

    #[test]
    fn bfs_finds_shallowest_violation() {
        let sys = TokenRing { n: 10 };
        let props = [Property::safety("below 3", |s: &usize| *s < 3)];
        let report = bfs(&sys, &props, &ExploreConfig::depth(10));
        // States 3..=9 all violate; BFS reports the shallowest first.
        assert_eq!(report.violations.len(), 7);
        assert_eq!(report.violations[0].path.len(), 3);
    }

    #[test]
    fn counterexample_path_replays_to_violation() {
        let sys = CounterRing { n: 3, modulus: 4 };
        let props = [Property::safety("no counter hits 2", |s: &RingState| {
            !s.0.contains(&2)
        })];
        let report = bfs(&sys, &props, &ExploreConfig::depth(4));
        assert!(!report.safe());
        let path = &report.violations[0].path;
        let states = crate::system::replay(&sys, path);
        let last = states.last().expect("nonempty");
        assert!(last.0.contains(&2), "replayed end state {last:?}");
    }

    #[test]
    fn violation_in_initial_state_has_empty_path() {
        let sys = TokenRing { n: 4 };
        let props = [Property::safety("nonzero", |s: &usize| *s != 0)];
        let report = bfs(&sys, &props, &ExploreConfig::depth(2));
        assert_eq!(report.violations[0].path.len(), 0);
    }

    #[test]
    fn stop_at_first_violation_short_circuits() {
        let sys = CounterRing { n: 4, modulus: 8 };
        let props = [Property::safety("all zero", |s: &RingState| {
            s.0.iter().all(|&c| c == 0)
        })];
        let cfg = ExploreConfig {
            stop_at_first_violation: true,
            ..ExploreConfig::depth(3)
        };
        let report = bfs(&sys, &props, &cfg);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn state_budget_truncates() {
        let sys = CounterRing { n: 4, modulus: 10 };
        let cfg = ExploreConfig {
            max_states: 50,
            ..ExploreConfig::depth(20)
        };
        let report = bfs(&sys, &[], &cfg);
        assert!(report.truncated);
        assert_eq!(report.states_visited, 50);
    }

    #[test]
    fn liveness_satisfied_on_forced_path() {
        let sys = TokenRing { n: 5 };
        let props = [Property::eventually("token reaches 3", |s: &usize| *s == 3)];
        let report = bfs(&sys, &props, &ExploreConfig::depth(6));
        assert_eq!(report.liveness.len(), 1);
        let (name, out) = &report.liveness[0];
        assert_eq!(name, "token reaches 3");
        assert!(out.paths_checked > 0);
        assert_eq!(out.paths_missed, 0);
        assert_eq!(out.satisfaction(), 1.0);
    }

    #[test]
    fn liveness_miss_when_horizon_too_short() {
        let sys = TokenRing { n: 10 };
        let props = [Property::eventually("token reaches 7", |s: &usize| *s == 7)];
        let report = bfs(&sys, &props, &ExploreConfig::depth(3));
        let (_, out) = &report.liveness[0];
        assert!(out.paths_missed > 0);
        assert!(out.satisfaction() < 1.0);
    }

    #[test]
    fn dfs_reaches_deep_states_and_agrees_on_reachability() {
        let sys = CounterRing { n: 2, modulus: 3 };
        let d = dfs(
            &sys,
            &[],
            &ExploreConfig {
                max_depth: 10,
                ..Default::default()
            },
        );
        assert_eq!(d.states_visited, 9);
        let props = [Property::safety(
            "no 2s",
            |s: &crate::system::toy::RingState| !s.0.contains(&2),
        )];
        let d2 = dfs(&sys, &props, &ExploreConfig::depth(6));
        assert!(!d2.safe());
        let states = crate::system::replay(&sys, &d2.violations[0].path);
        assert!(states.last().expect("end").0.contains(&2));
    }

    #[test]
    fn dfs_reports_liveness_like_bfs() {
        // Regression: dfs used to hardwire `eventually_seen` to 0 and never
        // emit liveness outcomes. On a single-path system (TokenRing) BFS
        // and DFS see the same set of complete paths, so their liveness
        // verdicts must agree exactly.
        let sys = TokenRing { n: 5 };
        let props = [Property::eventually("token reaches 3", |s: &usize| *s == 3)];
        let cfg = ExploreConfig::depth(6);
        let b = bfs(&sys, &props, &cfg);
        let d = dfs(&sys, &props, &cfg);
        assert_eq!(d.liveness.len(), 1, "dfs must report liveness outcomes");
        assert_eq!(d.liveness, b.liveness);
        let (_, out) = &d.liveness[0];
        assert!(out.paths_checked > 0);
        assert_eq!(out.paths_missed, 0);
    }

    #[test]
    fn dfs_liveness_miss_when_horizon_too_short() {
        let sys = TokenRing { n: 10 };
        let props = [Property::eventually("token reaches 7", |s: &usize| *s == 7)];
        let d = dfs(&sys, &props, &ExploreConfig::depth(3));
        assert_eq!(d.liveness.len(), 1);
        let (_, out) = &d.liveness[0];
        assert!(out.paths_missed > 0);
        assert!(out.satisfaction() < 1.0);
        // And the verdict matches bfs on the same horizon.
        let b = bfs(&sys, &props, &ExploreConfig::depth(3));
        assert_eq!(d.liveness, b.liveness);
    }

    #[test]
    fn dfs_liveness_satisfied_in_initial_state() {
        let sys = TokenRing { n: 4 };
        let props = [Property::eventually("starts at 0", |s: &usize| *s == 0)];
        let d = dfs(&sys, &props, &ExploreConfig::depth(2));
        let (_, out) = &d.liveness[0];
        assert_eq!(out.paths_missed, 0);
        assert_eq!(out.satisfaction(), 1.0);
    }

    #[test]
    fn iddfs_finds_shallowest_violation() {
        let sys = TokenRing { n: 10 };
        let props = [Property::safety("below 4", |s: &usize| *s < 4)];
        let report = iddfs(&sys, &props, &ExploreConfig::depth(9));
        assert!(!report.safe());
        // The shallowest counterexample is exactly 4 steps.
        assert_eq!(report.violations[0].path.len(), 4);
        // Deepening re-explores: cumulative transitions exceed one pass.
        assert!(report.transitions >= 4);
    }

    #[test]
    fn iddfs_safe_system_reaches_full_depth() {
        let sys = CounterRing { n: 2, modulus: 3 };
        let report = iddfs(&sys, &[], &ExploreConfig::depth(5));
        assert!(report.safe());
        // Counters wrap (mod 3), so the search runs to its full bound.
        assert_eq!(report.max_depth_reached, 5);
        assert_eq!(report.states_visited, 9, "3x3 product lattice");
    }

    #[test]
    fn deterministic_reports() {
        let sys = CounterRing { n: 3, modulus: 3 };
        let r1 = bfs(&sys, &[], &ExploreConfig::depth(4));
        let r2 = bfs(&sys, &[], &ExploreConfig::depth(4));
        assert_eq!(r1.states_visited, r2.states_visited);
        assert_eq!(r1.transitions, r2.transitions);
    }
}
