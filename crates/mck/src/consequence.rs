//! Consequence prediction: causal-chain exploration.
//!
//! CrystalBall's key insight (paper §2) is that most of the interleaving
//! blow-up in plain BFS is noise: what matters for "what happens if this
//! action executes next" is the **chain of events the action causes**, not
//! arbitrary interleavings with unrelated events. Consequence prediction
//! therefore explores, from each enabled action, only the actions *newly
//! enabled* by the previous step — a causally related chain — which is what
//! makes it "fast enough to look several levels of state space into the
//! future" on a live node.
//!
//! The trade-off is completeness: chains miss violations that require two
//! independent events to interleave. The `prediction_depth` bench (E8)
//! quantifies exactly this pruning against [`crate::explore::bfs`].
//!
//! Implementation notes (the decision hot path runs through here):
//!
//! * Paths are reconstructed from a parent-pointer arena shared with the
//!   BFS/DFS kernels — chain frames carry an arena index plus the action to
//!   apply, never a cloned path.
//! * Enabled-sets are fingerprint-sorted slices behind `Rc`: sibling frames
//!   share one set instead of cloning a `HashSet` per frame, and membership
//!   is a binary search over pre-computed fingerprints.
//! * `eventually` properties are judged on complete chains (cut by the
//!   depth bound or chain exhaustion) in the same traversal that checks
//!   safety, so one `predict` call serves both verdicts.

use crate::explore::{reconstruct, ExplorationReport, ExploreConfig, LivenessOutcome, SearchNode};
use crate::hash::{fingerprint, FingerprintSet};
use crate::props::{Property, PropertyKind, Violation};
use crate::system::TransitionSystem;
use std::rc::Rc;

/// Report of a consequence-prediction run: the usual exploration report plus
/// chain accounting.
#[derive(Clone, Debug)]
pub struct ConsequenceReport<A> {
    /// The underlying exploration report.
    pub report: ExplorationReport<A>,
    /// Number of root chains (actions enabled in the initial state).
    pub chains_started: u64,
    /// Chains that ended because no new actions were enabled.
    pub chains_exhausted: u64,
}

impl<A> ConsequenceReport<A> {
    /// True when no safety property was violated along any chain.
    pub fn safe(&self) -> bool {
        self.report.safe()
    }
}

/// Actions enabled in a state, stored as a fingerprint-sorted slice for
/// `Rc`-shared, allocation-free membership tests.
struct EnabledSet<A> {
    /// `(fingerprint(action), action)` sorted by fingerprint. Equal
    /// fingerprints (hash collisions) sit in one run that `contains` walks
    /// with `Eq`, so semantics match a `HashSet` exactly.
    entries: Vec<(u64, A)>,
}

impl<A: Clone + std::hash::Hash + Eq> EnabledSet<A> {
    fn from_actions(actions: &[A]) -> Self {
        let mut entries: Vec<(u64, A)> = actions
            .iter()
            .map(|a| (fingerprint(a), a.clone()))
            .collect();
        entries.sort_by_key(|e| e.0);
        EnabledSet { entries }
    }

    fn contains(&self, action: &A) -> bool {
        let fp = fingerprint(action);
        let mut i = self.entries.partition_point(|e| e.0 < fp);
        while i < self.entries.len() && self.entries[i].0 == fp {
            if &self.entries[i].1 == action {
                return true;
            }
            i += 1;
        }
        false
    }
}

/// A pending chain step: apply `action` to the (shared) `state` whose arena
/// node is `node`. Depth lives on the arena node.
struct ChainFrame<T: TransitionSystem> {
    node: usize,
    state: Rc<T::State>,
    /// Actions enabled in `state` (to compute the newly-enabled delta).
    enabled: Rc<EnabledSet<T::Action>>,
    /// The action this frame applies.
    action: T::Action,
}

/// Runs consequence prediction from the system's initial state.
///
/// Every action enabled initially starts a chain; each chain is then
/// extended only by actions that were **not** enabled before the previous
/// step (its causal consequences). Safety properties are checked on every
/// state touched; `eventually` properties are judged on complete chains in
/// the same traversal. Budgets come from `cfg` (depth bounds chain length).
///
/// # Examples
///
/// ```
/// use cb_mck::consequence::predict;
/// use cb_mck::explore::ExploreConfig;
/// use cb_mck::props::Property;
/// use cb_mck::system::TransitionSystem;
///
/// // A chain reaction: action k enables action k+1.
/// struct Fuse;
/// impl TransitionSystem for Fuse {
///     type State = u32;
///     type Action = u32;
///     fn initial(&self) -> u32 { 0 }
///     fn actions(&self, s: &u32) -> Vec<u32> { vec![*s] }
///     fn step(&self, s: &u32, _a: &u32) -> u32 { s + 1 }
/// }
///
/// let r = predict(&Fuse, &[Property::safety("short fuse", |s: &u32| *s < 3)], &ExploreConfig::depth(5));
/// assert!(!r.safe());
/// ```
pub fn predict<T: TransitionSystem>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &ExploreConfig,
) -> ConsequenceReport<T::Action> {
    let safety: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::Safety)
        .collect();
    let eventually: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::EventuallyWithinHorizon)
        .collect();
    assert!(
        eventually.len() <= 64,
        "at most 64 eventually-properties supported"
    );
    let mut liveness: Vec<LivenessOutcome> = vec![LivenessOutcome::default(); eventually.len()];
    let mut report = ExplorationReport::new();
    report.states_visited = 1;
    let mut chains_started = 0;
    let mut chains_exhausted = 0;

    let initial = Rc::new(sys.initial());
    for p in &safety {
        if !p.holds(&initial) {
            report.violations.push(Violation {
                property: p.name().to_string(),
                kind: PropertyKind::Safety,
                path: Vec::new(),
            });
        }
    }
    let mut visited = FingerprintSet::default();
    visited.insert(fingerprint(&*initial));

    let mut seen0 = 0u64;
    for (i, p) in eventually.iter().enumerate() {
        if p.holds(&initial) {
            seen0 |= 1 << i;
        }
    }
    let mut arena: Vec<SearchNode<T::Action>> = vec![SearchNode {
        parent: None,
        depth: 0,
        eventually_seen: seen0,
    }];

    let finish_chain = |seen: u64, liveness: &mut Vec<LivenessOutcome>| {
        for (i, out) in liveness.iter_mut().enumerate() {
            out.paths_checked += 1;
            if seen & (1 << i) == 0 {
                out.paths_missed += 1;
            }
        }
    };
    let emit_liveness = |report: &mut ExplorationReport<T::Action>,
                         eventually: &[&Property<T::State>],
                         liveness: &[LivenessOutcome]| {
        for (i, p) in eventually.iter().enumerate() {
            report
                .liveness
                .push((p.name().to_string(), liveness[i].clone()));
        }
    };

    // One actions buffer for the whole search instead of a Vec per state.
    let mut actions_buf: Vec<T::Action> = Vec::new();
    sys.actions_into(&initial, &mut actions_buf);
    // Root chains share the initial state and its enabled-set by reference;
    // nothing is deep-cloned per root action.
    let enabled0 = Rc::new(EnabledSet::from_actions(&actions_buf));
    let mut stack: Vec<ChainFrame<T>> = Vec::new();
    for a in actions_buf.drain(..).rev() {
        chains_started += 1;
        stack.push(ChainFrame {
            node: 0,
            state: Rc::clone(&initial),
            enabled: Rc::clone(&enabled0),
            action: a,
        });
    }
    if stack.is_empty() {
        // No enabled action: the empty chain is the only complete path.
        finish_chain(seen0, &mut liveness);
    }
    report.frontier_peak = stack.len() as u64;

    while let Some(frame) = stack.pop() {
        let depth = arena[frame.node].depth;
        report.transitions += 1;
        let next = sys.step(&frame.state, &frame.action);
        report.max_depth_reached = report.max_depth_reached.max(depth + 1);
        let fp = fingerprint(&next);
        let first_visit = visited.insert(fp);
        if !first_visit {
            report.dedup_hits += 1;
        }
        let mut seen = arena[frame.node].eventually_seen;
        for (i, p) in eventually.iter().enumerate() {
            if seen & (1 << i) == 0 && p.holds(&next) {
                seen |= 1 << i;
            }
        }
        let child = arena.len();
        arena.push(SearchNode {
            parent: Some((frame.node, frame.action)),
            depth: depth + 1,
            eventually_seen: seen,
        });
        if first_visit {
            report.states_visited += 1;
            for p in &safety {
                if !p.holds(&next) {
                    report.violations.push(Violation {
                        property: p.name().to_string(),
                        kind: PropertyKind::Safety,
                        path: reconstruct(&arena, child),
                    });
                    if cfg.stop_at_first_violation || report.violations.len() >= cfg.max_violations
                    {
                        report.truncated = true;
                        emit_liveness(&mut report, &eventually, &liveness);
                        return ConsequenceReport {
                            report,
                            chains_started,
                            chains_exhausted,
                        };
                    }
                }
            }
            if report.states_visited as usize >= cfg.max_states {
                report.truncated = true;
                emit_liveness(&mut report, &eventually, &liveness);
                return ConsequenceReport {
                    report,
                    chains_started,
                    chains_exhausted,
                };
            }
        }
        if depth + 1 >= cfg.max_depth {
            // Depth bound cuts the chain: a complete path for liveness.
            finish_chain(seen, &mut liveness);
            continue;
        }
        actions_buf.clear();
        sys.actions_into(&next, &mut actions_buf);
        let next_enabled = Rc::new(EnabledSet::from_actions(&actions_buf));
        let next_rc = Rc::new(next);
        // Consequences: actions enabled now that were not enabled before.
        let mut extended = false;
        report.states_expanded += 1;
        for a in actions_buf.drain(..).rev() {
            if frame.enabled.contains(&a) {
                continue;
            }
            extended = true;
            stack.push(ChainFrame {
                node: child,
                state: Rc::clone(&next_rc),
                enabled: Rc::clone(&next_enabled),
                action: a,
            });
            report.frontier_peak = report.frontier_peak.max(stack.len() as u64);
        }
        if !extended {
            chains_exhausted += 1;
            // Chain exhausted: a complete path for liveness.
            finish_chain(seen, &mut liveness);
        }
    }
    emit_liveness(&mut report, &eventually, &liveness);
    ConsequenceReport {
        report,
        chains_started,
        chains_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::bfs;

    /// `n` independent one-shot switches plus a cascade: flipping switch 0
    /// enables a chain 100 -> 101 -> 102 (modelled in the state's second
    /// component).
    struct Cascade {
        switches: usize,
        chain_len: u8,
    }

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct CState {
        flipped: Vec<bool>,
        chain: u8,
    }

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    enum CAction {
        Flip(usize),
        Advance(u8),
    }

    impl TransitionSystem for Cascade {
        type State = CState;
        type Action = CAction;

        fn initial(&self) -> CState {
            CState {
                flipped: vec![false; self.switches],
                chain: 0,
            }
        }

        fn actions(&self, s: &CState) -> Vec<CAction> {
            let mut acts: Vec<CAction> = (0..self.switches)
                .filter(|&i| !s.flipped[i])
                .map(CAction::Flip)
                .collect();
            if s.flipped[0] && s.chain < self.chain_len {
                acts.push(CAction::Advance(s.chain + 1));
            }
            acts
        }

        fn step(&self, s: &CState, a: &CAction) -> CState {
            let mut next = s.clone();
            match a {
                CAction::Flip(i) => next.flipped[*i] = true,
                CAction::Advance(k) => next.chain = *k,
            }
            next
        }
    }

    #[test]
    fn enabled_set_matches_hashset_semantics() {
        let actions = vec![CAction::Flip(0), CAction::Flip(3), CAction::Advance(1)];
        let set = EnabledSet::from_actions(&actions);
        for a in &actions {
            assert!(set.contains(a));
        }
        assert!(!set.contains(&CAction::Flip(1)));
        assert!(!set.contains(&CAction::Advance(2)));
        let empty: EnabledSet<CAction> = EnabledSet::from_actions(&[]);
        assert!(!empty.contains(&CAction::Flip(0)));
    }

    #[test]
    fn chains_follow_cascades() {
        // The chain 0 -> 1 -> 2 -> 3 is causally linked to Flip(0); the
        // violation "chain reaches 3" must be found without interleaving
        // the other independent switches.
        let sys = Cascade {
            switches: 6,
            chain_len: 3,
        };
        let props = [Property::safety("chain below 3", |s: &CState| s.chain < 3)];
        let r = predict(&sys, &props, &ExploreConfig::depth(6));
        assert!(!r.safe(), "cascade violation missed");
        let path = &r.report.violations[0].path;
        let states = crate::system::replay(&sys, path);
        assert_eq!(states.last().expect("end").chain, 3);
    }

    #[test]
    fn prunes_far_more_than_bfs() {
        let sys = Cascade {
            switches: 8,
            chain_len: 2,
        };
        let cfg = ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            ..Default::default()
        };
        let full = bfs(&sys, &[], &cfg);
        let pruned = predict(&sys, &[], &cfg);
        assert!(
            pruned.report.states_visited * 4 < full.states_visited,
            "consequence {} vs bfs {}",
            pruned.report.states_visited,
            full.states_visited
        );
    }

    #[test]
    fn misses_interleaving_only_violations() {
        // A violation needing two *independent* flips is invisible to
        // chains (documented incompleteness).
        let sys = Cascade {
            switches: 3,
            chain_len: 0,
        };
        let props = [Property::safety("not both 1 and 2", |s: &CState| {
            !(s.flipped[1] && s.flipped[2])
        })];
        let r = predict(&sys, &props, &ExploreConfig::depth(4));
        assert!(r.safe(), "chains should not interleave independent flips");
        let full = bfs(&sys, &props, &ExploreConfig::depth(4));
        assert!(!full.safe(), "BFS must find the interleaving violation");
    }

    #[test]
    fn initial_state_violation_detected() {
        let sys = Cascade {
            switches: 1,
            chain_len: 0,
        };
        let props = [Property::safety("impossible", |_s: &CState| false)];
        let r = predict(&sys, &props, &ExploreConfig::depth(2));
        assert!(!r.safe());
        assert!(r.report.violations[0].path.is_empty());
    }

    #[test]
    fn chain_accounting() {
        let sys = Cascade {
            switches: 4,
            chain_len: 1,
        };
        let r = predict(&sys, &[], &ExploreConfig::depth(8));
        assert_eq!(r.chains_started, 4);
        assert!(r.chains_exhausted > 0);
    }

    #[test]
    fn chain_liveness_follows_cascade() {
        // On the Fuse-like cascade rooted at Flip(0), the chain reaches
        // chain==2, so "eventually chain 2" is satisfied on at least one
        // complete chain and missed on the chains rooted at other switches.
        let sys = Cascade {
            switches: 3,
            chain_len: 2,
        };
        let props = [Property::eventually("chain reaches 2", |s: &CState| {
            s.chain == 2
        })];
        let r = predict(&sys, &props, &ExploreConfig::depth(6));
        assert_eq!(r.report.liveness.len(), 1);
        let (name, out) = &r.report.liveness[0];
        assert_eq!(name, "chain reaches 2");
        assert!(out.paths_checked > 0, "chains must be judged");
        assert!(
            out.paths_missed < out.paths_checked,
            "the cascade chain satisfies the property"
        );
        assert!(out.paths_missed > 0, "non-cascade chains miss it");
    }

    #[test]
    fn chain_liveness_satisfied_in_initial_state() {
        let sys = Cascade {
            switches: 2,
            chain_len: 0,
        };
        let props = [Property::eventually("starts unflipped", |s: &CState| {
            !s.flipped[0]
        })];
        let r = predict(&sys, &props, &ExploreConfig::depth(3));
        let (_, out) = &r.report.liveness[0];
        assert_eq!(out.paths_missed, 0);
        assert_eq!(out.satisfaction(), 1.0);
    }

    #[test]
    fn respects_state_budget() {
        // TokenRing chains deeply: each step newly enables the next action.
        let sys = crate::system::toy::TokenRing { n: 1000 };
        let cfg = ExploreConfig {
            max_states: 30,
            ..ExploreConfig::depth(500)
        };
        let r = predict(&sys, &[], &cfg);
        assert!(r.report.truncated);
        assert!(r.report.states_visited <= 30);
    }

    #[test]
    fn deterministic() {
        let sys = Cascade {
            switches: 5,
            chain_len: 3,
        };
        let a = predict(&sys, &[], &ExploreConfig::depth(6));
        let b = predict(&sys, &[], &ExploreConfig::depth(6));
        assert_eq!(a.report.states_visited, b.report.states_visited);
        assert_eq!(a.report.transitions, b.report.transitions);
        assert_eq!(a.chains_exhausted, b.chains_exhausted);
    }
}
