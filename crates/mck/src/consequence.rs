//! Consequence prediction: causal-chain exploration.
//!
//! CrystalBall's key insight (paper §2) is that most of the interleaving
//! blow-up in plain BFS is noise: what matters for "what happens if this
//! action executes next" is the **chain of events the action causes**, not
//! arbitrary interleavings with unrelated events. Consequence prediction
//! therefore explores, from each enabled action, only the actions *newly
//! enabled* by the previous step — a causally related chain — which is what
//! makes it "fast enough to look several levels of state space into the
//! future" on a live node.
//!
//! The trade-off is completeness: chains miss violations that require two
//! independent events to interleave. The `prediction_depth` bench (E8)
//! quantifies exactly this pruning against [`crate::explore::bfs`].

use crate::explore::{ExplorationReport, ExploreConfig};
use crate::hash::fingerprint;
use crate::props::{Property, PropertyKind, Violation};
use crate::system::TransitionSystem;
use std::collections::HashSet;

/// Report of a consequence-prediction run: the usual exploration report plus
/// chain accounting.
#[derive(Clone, Debug)]
pub struct ConsequenceReport<A> {
    /// The underlying exploration report.
    pub report: ExplorationReport<A>,
    /// Number of root chains (actions enabled in the initial state).
    pub chains_started: u64,
    /// Chains that ended because no new actions were enabled.
    pub chains_exhausted: u64,
}

impl<A> ConsequenceReport<A> {
    /// True when no safety property was violated along any chain.
    pub fn safe(&self) -> bool {
        self.report.safe()
    }
}

struct ChainFrame<T: TransitionSystem> {
    state: T::State,
    /// Actions enabled in `state` (to compute the newly-enabled delta).
    enabled: HashSet<T::Action>,
    /// Path of actions from the initial state.
    path: Vec<T::Action>,
    depth: usize,
}

/// Runs consequence prediction from the system's initial state.
///
/// Every action enabled initially starts a chain; each chain is then
/// extended only by actions that were **not** enabled before the previous
/// step (its causal consequences). Safety properties are checked on every
/// state touched. Budgets come from `cfg` (depth bounds chain length).
///
/// # Examples
///
/// ```
/// use cb_mck::consequence::predict;
/// use cb_mck::explore::ExploreConfig;
/// use cb_mck::props::Property;
/// use cb_mck::system::TransitionSystem;
///
/// // A chain reaction: action k enables action k+1.
/// struct Fuse;
/// impl TransitionSystem for Fuse {
///     type State = u32;
///     type Action = u32;
///     fn initial(&self) -> u32 { 0 }
///     fn actions(&self, s: &u32) -> Vec<u32> { vec![*s] }
///     fn step(&self, s: &u32, _a: &u32) -> u32 { s + 1 }
/// }
///
/// let r = predict(&Fuse, &[Property::safety("short fuse", |s: &u32| *s < 3)], &ExploreConfig::depth(5));
/// assert!(!r.safe());
/// ```
pub fn predict<T: TransitionSystem>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &ExploreConfig,
) -> ConsequenceReport<T::Action> {
    let safety: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::Safety)
        .collect();
    let mut report = ExplorationReport::new();
    report.states_visited = 1;
    let mut chains_started = 0;
    let mut chains_exhausted = 0;

    let initial = sys.initial();
    for p in &safety {
        if !p.holds(&initial) {
            report.violations.push(Violation {
                property: p.name().to_string(),
                kind: PropertyKind::Safety,
                path: Vec::new(),
            });
        }
    }
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(fingerprint(&initial));

    let root_actions = sys.actions(&initial);
    let root_enabled: HashSet<T::Action> = root_actions.iter().cloned().collect();
    let mut stack: Vec<ChainFrame<T>> = Vec::new();
    // Each initially enabled action roots one chain.
    for a in root_actions.iter().rev() {
        chains_started += 1;
        stack.push(ChainFrame {
            state: initial.clone(),
            enabled: root_enabled.clone(),
            path: Vec::new(),
            depth: 0,
        });
        // The frame carries the *pre*-state; the action to apply rides on
        // the path tail convention below, so instead push explicit work:
        let frame = stack.last_mut().expect("just pushed");
        frame.path.push(a.clone());
    }
    report.frontier_peak = stack.len() as u64;

    while let Some(frame) = stack.pop() {
        let action = frame
            .path
            .last()
            .expect("chain frames carry an action")
            .clone();
        report.transitions += 1;
        let next = sys.step(&frame.state, &action);
        report.max_depth_reached = report.max_depth_reached.max(frame.depth + 1);
        let fp = fingerprint(&next);
        let first_visit = visited.insert(fp);
        if !first_visit {
            report.dedup_hits += 1;
        }
        if first_visit {
            report.states_visited += 1;
            for p in &safety {
                if !p.holds(&next) {
                    report.violations.push(Violation {
                        property: p.name().to_string(),
                        kind: PropertyKind::Safety,
                        path: frame.path.clone(),
                    });
                    if cfg.stop_at_first_violation || report.violations.len() >= cfg.max_violations
                    {
                        report.truncated = true;
                        return ConsequenceReport {
                            report,
                            chains_started,
                            chains_exhausted,
                        };
                    }
                }
            }
            if report.states_visited as usize >= cfg.max_states {
                report.truncated = true;
                return ConsequenceReport {
                    report,
                    chains_started,
                    chains_exhausted,
                };
            }
        }
        if frame.depth + 1 >= cfg.max_depth {
            continue;
        }
        let next_enabled_vec = sys.actions(&next);
        let next_enabled: HashSet<T::Action> = next_enabled_vec.iter().cloned().collect();
        // Consequences: actions enabled now that were not enabled before.
        let mut extended = false;
        report.states_expanded += 1;
        for a in next_enabled_vec.iter().rev() {
            if frame.enabled.contains(a) {
                continue;
            }
            extended = true;
            let mut path = frame.path.clone();
            path.push(a.clone());
            stack.push(ChainFrame {
                state: next.clone(),
                enabled: next_enabled.clone(),
                path,
                depth: frame.depth + 1,
            });
            report.frontier_peak = report.frontier_peak.max(stack.len() as u64);
        }
        if !extended {
            chains_exhausted += 1;
        }
    }
    ConsequenceReport {
        report,
        chains_started,
        chains_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::bfs;

    /// `n` independent one-shot switches plus a cascade: flipping switch 0
    /// enables a chain 100 -> 101 -> 102 (modelled in the state's second
    /// component).
    struct Cascade {
        switches: usize,
        chain_len: u8,
    }

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct CState {
        flipped: Vec<bool>,
        chain: u8,
    }

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    enum CAction {
        Flip(usize),
        Advance(u8),
    }

    impl TransitionSystem for Cascade {
        type State = CState;
        type Action = CAction;

        fn initial(&self) -> CState {
            CState {
                flipped: vec![false; self.switches],
                chain: 0,
            }
        }

        fn actions(&self, s: &CState) -> Vec<CAction> {
            let mut acts: Vec<CAction> = (0..self.switches)
                .filter(|&i| !s.flipped[i])
                .map(CAction::Flip)
                .collect();
            if s.flipped[0] && s.chain < self.chain_len {
                acts.push(CAction::Advance(s.chain + 1));
            }
            acts
        }

        fn step(&self, s: &CState, a: &CAction) -> CState {
            let mut next = s.clone();
            match a {
                CAction::Flip(i) => next.flipped[*i] = true,
                CAction::Advance(k) => next.chain = *k,
            }
            next
        }
    }

    #[test]
    fn chains_follow_cascades() {
        // The chain 0 -> 1 -> 2 -> 3 is causally linked to Flip(0); the
        // violation "chain reaches 3" must be found without interleaving
        // the other independent switches.
        let sys = Cascade {
            switches: 6,
            chain_len: 3,
        };
        let props = [Property::safety("chain below 3", |s: &CState| s.chain < 3)];
        let r = predict(&sys, &props, &ExploreConfig::depth(6));
        assert!(!r.safe(), "cascade violation missed");
        let path = &r.report.violations[0].path;
        let states = crate::system::replay(&sys, path);
        assert_eq!(states.last().expect("end").chain, 3);
    }

    #[test]
    fn prunes_far_more_than_bfs() {
        let sys = Cascade {
            switches: 8,
            chain_len: 2,
        };
        let cfg = ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            ..Default::default()
        };
        let full = bfs(&sys, &[], &cfg);
        let pruned = predict(&sys, &[], &cfg);
        assert!(
            pruned.report.states_visited * 4 < full.states_visited,
            "consequence {} vs bfs {}",
            pruned.report.states_visited,
            full.states_visited
        );
    }

    #[test]
    fn misses_interleaving_only_violations() {
        // A violation needing two *independent* flips is invisible to
        // chains (documented incompleteness).
        let sys = Cascade {
            switches: 3,
            chain_len: 0,
        };
        let props = [Property::safety("not both 1 and 2", |s: &CState| {
            !(s.flipped[1] && s.flipped[2])
        })];
        let r = predict(&sys, &props, &ExploreConfig::depth(4));
        assert!(r.safe(), "chains should not interleave independent flips");
        let full = bfs(&sys, &props, &ExploreConfig::depth(4));
        assert!(!full.safe(), "BFS must find the interleaving violation");
    }

    #[test]
    fn initial_state_violation_detected() {
        let sys = Cascade {
            switches: 1,
            chain_len: 0,
        };
        let props = [Property::safety("impossible", |_s: &CState| false)];
        let r = predict(&sys, &props, &ExploreConfig::depth(2));
        assert!(!r.safe());
        assert!(r.report.violations[0].path.is_empty());
    }

    #[test]
    fn chain_accounting() {
        let sys = Cascade {
            switches: 4,
            chain_len: 1,
        };
        let r = predict(&sys, &[], &ExploreConfig::depth(8));
        assert_eq!(r.chains_started, 4);
        assert!(r.chains_exhausted > 0);
    }

    #[test]
    fn respects_state_budget() {
        // TokenRing chains deeply: each step newly enables the next action.
        let sys = crate::system::toy::TokenRing { n: 1000 };
        let cfg = ExploreConfig {
            max_states: 30,
            ..ExploreConfig::depth(500)
        };
        let r = predict(&sys, &[], &cfg);
        assert!(r.report.truncated);
        assert!(r.report.states_visited <= 30);
    }

    #[test]
    fn deterministic() {
        let sys = Cascade {
            switches: 5,
            chain_len: 3,
        };
        let a = predict(&sys, &[], &ExploreConfig::depth(6));
        let b = predict(&sys, &[], &ExploreConfig::depth(6));
        assert_eq!(a.report.states_visited, b.report.states_visited);
        assert_eq!(a.report.transitions, b.report.transitions);
        assert_eq!(a.chains_exhausted, b.chains_exhausted);
    }
}
