//! Safety and bounded-liveness properties.
//!
//! Properties are what the paper's §3.2 calls *exposed objectives* on the
//! correctness side: the developer states them once and the runtime checks
//! them against every explored future state. Safety is "nothing bad ever
//! happens" (checked on every state); bounded liveness is "something good
//! happens within the exploration horizon" (checked on the paths).

use std::fmt;
use std::sync::Arc;

/// A named predicate over states.
///
/// Cloneable and cheap to share: the predicate lives behind an [`Arc`].
pub struct Property<S> {
    name: String,
    kind: PropertyKind,
    pred: Arc<dyn Fn(&S) -> bool + Send + Sync>,
}

impl<S> Clone for Property<S> {
    fn clone(&self) -> Self {
        Property {
            name: self.name.clone(),
            kind: self.kind,
            pred: Arc::clone(&self.pred),
        }
    }
}

impl<S> fmt::Debug for Property<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Property")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// How a property is interpreted during exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropertyKind {
    /// Must hold in **every** reachable state; a single falsifying state is
    /// a violation with a counterexample path.
    Safety,
    /// Should hold in **some** state of each explored path within the
    /// horizon; paths where it never holds are reported as liveness misses.
    EventuallyWithinHorizon,
}

impl<S> Property<S> {
    /// A safety property: `pred` must hold in every reachable state.
    pub fn safety(
        name: impl Into<String>,
        pred: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        Property {
            name: name.into(),
            kind: PropertyKind::Safety,
            pred: Arc::new(pred),
        }
    }

    /// A bounded-liveness property: `pred` should hold somewhere along each
    /// explored path.
    pub fn eventually(
        name: impl Into<String>,
        pred: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        Property {
            name: name.into(),
            kind: PropertyKind::EventuallyWithinHorizon,
            pred: Arc::new(pred),
        }
    }

    /// The property's name, used in violation reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interpretation of the property.
    pub fn kind(&self) -> PropertyKind {
        self.kind
    }

    /// Evaluates the predicate on a state.
    pub fn holds(&self, state: &S) -> bool {
        (self.pred)(state)
    }
}

/// A detected violation: which property failed, and the action path from
/// the initial state to the failing state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation<A> {
    /// Name of the violated property.
    pub property: String,
    /// Kind of the violated property.
    pub kind: PropertyKind,
    /// Actions from the initial state to the violating state (for safety)
    /// or along the miss path (for liveness).
    pub path: Vec<A>,
}

impl<A: fmt::Debug> fmt::Display for Violation<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} violation of '{}' after {} steps",
            self.kind,
            self.property,
            self.path.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_property_evaluates() {
        let p: Property<i32> = Property::safety("non-negative", |s| *s >= 0);
        assert_eq!(p.name(), "non-negative");
        assert_eq!(p.kind(), PropertyKind::Safety);
        assert!(p.holds(&3));
        assert!(!p.holds(&-1));
    }

    #[test]
    fn eventually_property_kind() {
        let p: Property<i32> = Property::eventually("reaches ten", |s| *s == 10);
        assert_eq!(p.kind(), PropertyKind::EventuallyWithinHorizon);
    }

    #[test]
    fn clones_share_the_predicate() {
        let p: Property<u8> = Property::safety("even", |s| s % 2 == 0);
        let q = p.clone();
        assert!(q.holds(&4));
        assert_eq!(q.name(), "even");
    }

    #[test]
    fn violation_renders() {
        let v = Violation {
            property: "x".into(),
            kind: PropertyKind::Safety,
            path: vec![1u8, 2],
        };
        let text = format!("{v}");
        assert!(text.contains("'x'"), "{text}");
        assert!(text.contains("2 steps"), "{text}");
    }
}
