//! Random-walk simulation over a transition system.
//!
//! Integrating performance parameters "turns a model checker into a
//! simulator that runs a large number of simulations" (paper §3.3.2). This
//! module is that mode: instead of enumerating interleavings, sample many
//! weighted walks to a horizon and score the final states. The runtime uses
//! it to estimate the *expected* objective value of a choice when exhaustive
//! exploration would be too slow.

use crate::props::{Property, PropertyKind, Violation};
use crate::system::TransitionSystem;
use cb_simnet::rng::SimRng;

/// Configuration of a random-walk batch.
#[derive(Clone, Debug)]
pub struct WalkConfig {
    /// Number of independent walks.
    pub walks: usize,
    /// Steps per walk (walks stop early at deadlock).
    pub depth: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks: 64,
            depth: 8,
        }
    }
}

/// Outcome of a random-walk batch.
#[derive(Clone, Debug)]
pub struct WalkReport<A> {
    /// Walks executed.
    pub walks: usize,
    /// Total steps taken across all walks.
    pub steps: u64,
    /// Walks that ended in a deadlock (no enabled action).
    pub deadlocks: u64,
    /// Safety violations encountered (at most one recorded per walk).
    pub violations: Vec<Violation<A>>,
    /// Scores of the final states, one per walk.
    pub scores: Vec<f64>,
}

impl<A> WalkReport<A> {
    /// Mean of the final-state scores (0 when no walks ran).
    pub fn mean_score(&self) -> f64 {
        if self.scores.is_empty() {
            0.0
        } else {
            self.scores.iter().sum::<f64>() / self.scores.len() as f64
        }
    }

    /// Fraction of walks that hit a safety violation.
    pub fn violation_rate(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.violations.len() as f64 / self.walks as f64
        }
    }
}

/// Samples an index proportionally to `weights`. Falls back to uniform when
/// all weights vanish.
fn sample_weighted(rng: &mut SimRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return rng.gen_index(weights.len());
    }
    let mut x = rng.gen_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
    }
    weights.len() - 1
}

/// Runs `cfg.walks` weighted random walks and scores each final state.
///
/// Each step samples among enabled actions proportionally to
/// [`TransitionSystem::weight`]. Safety properties are checked along the
/// way; the first violation ends that walk (its score is still recorded,
/// from the violating state).
///
/// # Examples
///
/// ```
/// use cb_mck::system::TransitionSystem;
/// use cb_mck::walk::{random_walks, WalkConfig};
/// use cb_simnet::rng::SimRng;
///
/// struct Drift;
/// impl TransitionSystem for Drift {
///     type State = i32;
///     type Action = i32;
///     fn initial(&self) -> i32 { 0 }
///     fn actions(&self, _: &i32) -> Vec<i32> { vec![-1, 1] }
///     fn step(&self, s: &i32, a: &i32) -> i32 { s + a }
///     fn weight(&self, _: &i32, a: &i32) -> f64 { if *a > 0 { 3.0 } else { 1.0 } }
/// }
///
/// let mut rng = SimRng::seed_from(1);
/// let r = random_walks(&Drift, &[], &WalkConfig { walks: 200, depth: 10 }, &mut rng, |s| *s as f64);
/// assert!(r.mean_score() > 0.0); // upward drift dominates
/// ```
pub fn random_walks<T: TransitionSystem>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &WalkConfig,
    rng: &mut SimRng,
    score: impl Fn(&T::State) -> f64,
) -> WalkReport<T::Action> {
    let safety: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::Safety)
        .collect();
    let mut report = WalkReport {
        walks: cfg.walks,
        steps: 0,
        deadlocks: 0,
        violations: Vec::new(),
        scores: Vec::with_capacity(cfg.walks),
    };
    // Buffers reused across all walks and steps: the hot loop allocates
    // nothing except on the (rare) violation path.
    let mut actions: Vec<T::Action> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut path: Vec<T::Action> = Vec::new();
    for _ in 0..cfg.walks {
        let mut state = sys.initial();
        path.clear();
        let mut violated = false;
        for _ in 0..cfg.depth {
            actions.clear();
            sys.actions_into(&state, &mut actions);
            if actions.is_empty() {
                report.deadlocks += 1;
                break;
            }
            weights.clear();
            weights.extend(actions.iter().map(|a| sys.weight(&state, a)));
            let pick = sample_weighted(rng, &weights);
            let action = actions[pick].clone();
            state = sys.step(&state, &action);
            path.push(action);
            report.steps += 1;
            for p in &safety {
                if !p.holds(&state) {
                    report.violations.push(Violation {
                        property: p.name().to_string(),
                        kind: PropertyKind::Safety,
                        path: path.clone(),
                    });
                    violated = true;
                    break;
                }
            }
            if violated {
                break;
            }
        }
        report.scores.push(score(&state));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::toy::TokenRing;

    #[test]
    fn walks_respect_depth() {
        let sys = TokenRing { n: 1000 };
        let mut rng = SimRng::seed_from(2);
        let r = random_walks(
            &sys,
            &[],
            &WalkConfig {
                walks: 10,
                depth: 7,
            },
            &mut rng,
            |s| *s as f64,
        );
        assert_eq!(r.walks, 10);
        assert_eq!(r.steps, 70);
        // Token ring is deterministic: every walk ends at position 7.
        assert!(r.scores.iter().all(|&s| s == 7.0));
    }

    #[test]
    fn weights_bias_sampling() {
        struct Biased;
        impl TransitionSystem for Biased {
            type State = (u32, u32);
            type Action = bool;
            fn initial(&self) -> (u32, u32) {
                (0, 0)
            }
            fn actions(&self, _: &(u32, u32)) -> Vec<bool> {
                vec![false, true]
            }
            fn step(&self, s: &(u32, u32), a: &bool) -> (u32, u32) {
                if *a {
                    (s.0 + 1, s.1)
                } else {
                    (s.0, s.1 + 1)
                }
            }
            fn weight(&self, _: &(u32, u32), a: &bool) -> f64 {
                if *a {
                    9.0
                } else {
                    1.0
                }
            }
        }
        let mut rng = SimRng::seed_from(3);
        let r = random_walks(
            &Biased,
            &[],
            &WalkConfig {
                walks: 100,
                depth: 20,
            },
            &mut rng,
            |s| s.0 as f64 / 20.0,
        );
        // Expect ~90% of steps to be `true`.
        assert!(r.mean_score() > 0.8, "mean {}", r.mean_score());
    }

    #[test]
    fn violations_stop_the_walk() {
        let sys = TokenRing { n: 100 };
        let props = [Property::safety("below 3", |s: &usize| *s < 3)];
        let mut rng = SimRng::seed_from(4);
        let r = random_walks(
            &sys,
            &props,
            &WalkConfig {
                walks: 5,
                depth: 50,
            },
            &mut rng,
            |s| *s as f64,
        );
        assert_eq!(r.violations.len(), 5);
        assert!((r.violation_rate() - 1.0).abs() < f64::EPSILON);
        // Each walk stopped right at the violating state.
        assert!(r.scores.iter().all(|&s| s == 3.0));
        assert!(r.violations.iter().all(|v| v.path.len() == 3));
    }

    #[test]
    fn deadlock_is_counted() {
        struct Dead;
        impl TransitionSystem for Dead {
            type State = u8;
            type Action = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn actions(&self, s: &u8) -> Vec<u8> {
                if *s < 2 {
                    vec![1]
                } else {
                    vec![]
                }
            }
            fn step(&self, s: &u8, _: &u8) -> u8 {
                s + 1
            }
        }
        let mut rng = SimRng::seed_from(5);
        let r = random_walks(
            &Dead,
            &[],
            &WalkConfig {
                walks: 3,
                depth: 10,
            },
            &mut rng,
            |_| 0.0,
        );
        assert_eq!(r.deadlocks, 3);
        assert_eq!(r.steps, 6);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let mut rng = SimRng::seed_from(6);
        let idx = sample_weighted(&mut rng, &[0.0, 0.0, 0.0]);
        assert!(idx < 3);
        // NaN/inf weights are ignored rather than poisoning the draw.
        let idx2 = sample_weighted(&mut rng, &[f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(idx2, 1);
    }

    #[test]
    fn same_seed_same_walks() {
        let sys = TokenRing { n: 9 };
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            random_walks(&sys, &[], &WalkConfig::default(), &mut rng, |s| *s as f64).scores
        };
        assert_eq!(run(7), run(7));
    }
}
