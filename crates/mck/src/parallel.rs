//! Parallel breadth-first exploration.
//!
//! The paper argues the predictive runtime should "leverage the increases in
//! computational power on multi-core machines" (§3.4). This module is that
//! lever: a level-synchronized parallel BFS. Each level's frontier is split
//! across worker threads; a shared visited set (sharded to avoid a single
//! lock) deduplicates successors. Level synchronization keeps the result
//! deterministic: the set of states at level *k* is a pure function of the
//! system, so counts and violations match the sequential search regardless
//! of thread scheduling.

use crate::explore::{ExplorationReport, ExploreConfig};
use crate::hash::{fingerprint, FingerprintSet};
use crate::props::{Property, PropertyKind, Violation};
use crate::system::TransitionSystem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A worker's level output:
/// (next frontier with paths, transitions, dedup hits, violations).
type LevelResult<S, A> = (Vec<(S, Vec<A>)>, u64, u64, Vec<Violation<A>>);

/// Number of visited-set shards; a power of two for cheap masking.
const SHARDS: usize = 64;

/// A sharded concurrent set of state fingerprints.
///
/// # Snapshot invariant
///
/// [`ShardedSet::len`] sums the shard sizes **without locking** and is
/// therefore only meaningful when no worker can be inserting concurrently
/// — i.e. at a *level barrier* of the level-synchronized BFS. It used to
/// take the 64 shard locks one after another, which reads a torn total if
/// called mid-exploration (shards already summed keep growing while later
/// shards are read). Instead of documenting that foot-gun away, the
/// receiver is now `&mut self`: exclusive access is a compile-time proof
/// that every worker borrow (`&ShardedSet`) has ended, so the snapshot is
/// exact by construction and `Mutex::get_mut` can skip locking entirely.
struct ShardedSet {
    /// Identity-hashed: fingerprints already carry an avalanche finish, so
    /// shards index by masking and probe without re-hashing through SipHash.
    shards: Vec<Mutex<FingerprintSet>>,
    /// Times `insert` found its shard lock held by another worker
    /// (scheduling-dependent; exported under a `wall` telemetry key).
    contention: AtomicU64,
}

impl ShardedSet {
    fn new() -> Self {
        ShardedSet {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FingerprintSet::default()))
                .collect(),
            contention: AtomicU64::new(0),
        }
    }

    /// Inserts; returns true when the value was new.
    ///
    /// Shard selection uses the *top* bits: the identity-hashed set inside
    /// each shard derives its bucket index from the low bits, so picking
    /// shards by low bits would leave every entry of a shard agreeing on
    /// those bits and cluster the table into strided buckets.
    fn insert(&self, fp: u64) -> bool {
        let shard = &self.shards[(fp >> 58) as usize & (SHARDS - 1)];
        let mut guard = match shard.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard.lock().expect("shard poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("shard poisoned"),
        };
        guard.insert(fp)
    }

    /// Number of distinct fingerprints. **Level-barrier only** — see the
    /// type-level invariant; the `&mut` receiver enforces it.
    fn len(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.get_mut().expect("shard poisoned").len())
            .sum()
    }

    /// Contention events observed so far (nondeterministic).
    fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

/// Explores breadth-first using `threads` workers.
///
/// Produces the same `states_visited`, `transitions`, and violation set as
/// [`crate::explore::bfs`] restricted to safety properties (liveness
/// accounting needs path tracking and stays sequential). Violations are
/// returned sorted by (property, path length, path debug rendering) so the
/// report is deterministic.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn parallel_bfs<T>(
    sys: &T,
    props: &[Property<T::State>],
    cfg: &ExploreConfig,
    threads: usize,
) -> ExplorationReport<T::Action>
where
    T: TransitionSystem + Sync,
    T::State: Send + Sync,
    T::Action: Send + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let safety: Vec<&Property<T::State>> = props
        .iter()
        .filter(|p| p.kind() == PropertyKind::Safety)
        .collect();

    let mut report = ExplorationReport::new();
    report.states_visited = 1;
    let initial = sys.initial();
    for p in &safety {
        if !p.holds(&initial) {
            report.violations.push(Violation {
                property: p.name().to_string(),
                kind: PropertyKind::Safety,
                path: Vec::new(),
            });
        }
    }
    let mut visited = ShardedSet::new();
    visited.insert(fingerprint(&initial));

    // Frontier entries carry their full path: simpler to keep deterministic
    // across threads than a shared arena, and fine for bounded depths.
    let mut frontier: Vec<(T::State, Vec<T::Action>)> = vec![(initial, Vec::new())];
    report.frontier_peak = 1;
    let mut depth = 0;
    while !frontier.is_empty() && depth < cfg.max_depth {
        report.states_expanded += frontier.len() as u64;
        report.frontier_peak = report.frontier_peak.max(frontier.len() as u64);
        let chunk = frontier.len().div_ceil(threads);
        let results: Vec<LevelResult<T::State, T::Action>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for piece in frontier.chunks(chunk.max(1)) {
                let visited = &visited;
                let safety = &safety;
                handles.push(scope.spawn(move || {
                    let mut next_frontier = Vec::new();
                    let mut transitions = 0u64;
                    let mut dedup_hits = 0u64;
                    let mut violations = Vec::new();
                    for (state, path) in piece {
                        for action in sys.actions(state) {
                            transitions += 1;
                            let next = sys.step(state, &action);
                            if !visited.insert(fingerprint(&next)) {
                                // Per level this sums to (transitions −
                                // unique new states): deterministic even
                                // though which worker counts it is not.
                                dedup_hits += 1;
                                continue;
                            }
                            let mut next_path = path.clone();
                            next_path.push(action);
                            for p in safety {
                                if !p.holds(&next) {
                                    violations.push(Violation {
                                        property: p.name().to_string(),
                                        kind: PropertyKind::Safety,
                                        path: next_path.clone(),
                                    });
                                }
                            }
                            next_frontier.push((next, next_path));
                        }
                    }
                    (next_frontier, transitions, dedup_hits, violations)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut next = Vec::new();
        for (nf, transitions, dedup_hits, violations) in results {
            next.extend(nf);
            report.transitions += transitions;
            report.dedup_hits += dedup_hits;
            report.violations.extend(violations);
        }
        depth += 1;
        if !next.is_empty() {
            // Matches the sequential engines: the deepest *visited* state,
            // not the deepest level whose (empty) expansion we attempted.
            report.max_depth_reached = depth;
        }
        // Level barrier: the worker scope above has ended, so `&mut
        // visited` proves no insertion races this snapshot. Taken exactly
        // once per level — the budget check and the report must agree on
        // the same number.
        let visited_now = visited.len();
        report.states_visited = visited_now as u64;
        if visited_now >= cfg.max_states {
            report.truncated = true;
            break;
        }
        frontier = next;
    }
    report.shard_contention_wall = visited.contention();
    // Deterministic violation order irrespective of thread scheduling.
    report.violations.sort_by(|a, b| {
        (a.property.as_str(), a.path.len(), format!("{:?}", a.path)).cmp(&(
            b.property.as_str(),
            b.path.len(),
            format!("{:?}", b.path),
        ))
    });
    report.violations.truncate(cfg.max_violations);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::bfs;
    use crate::system::toy::CounterRing;

    #[test]
    fn agrees_with_sequential_bfs_on_counts() {
        let sys = CounterRing { n: 3, modulus: 3 };
        let cfg = ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            ..Default::default()
        };
        let seq = bfs(&sys, &[], &cfg);
        for threads in [1, 2, 4] {
            let par = parallel_bfs(&sys, &[], &cfg, threads);
            assert_eq!(par.states_visited, seq.states_visited, "threads={threads}");
        }
    }

    #[test]
    fn finds_the_same_violations() {
        let sys = CounterRing { n: 2, modulus: 4 };
        let props = [Property::safety(
            "no 3",
            |s: &crate::system::toy::RingState| !s.0.contains(&3),
        )];
        let cfg = ExploreConfig {
            max_depth: 8,
            max_violations: 100,
            ..Default::default()
        };
        let seq = bfs(&sys, &props, &cfg);
        let par = parallel_bfs(&sys, &props, &cfg, 4);
        assert!(!seq.safe() && !par.safe());
        // Violating *states* agree even if representative paths differ:
        // replay both and compare end states as sets.
        let ends = |vs: &[Violation<usize>]| {
            let mut e: Vec<_> = vs
                .iter()
                .map(|v| {
                    crate::system::replay(&sys, &v.path)
                        .last()
                        .expect("end")
                        .clone()
                })
                .collect();
            e.sort_by_key(|s| format!("{s:?}"));
            e.dedup();
            e
        };
        assert_eq!(ends(&seq.violations).len(), ends(&par.violations).len());
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let sys = CounterRing { n: 3, modulus: 4 };
        let props = [Property::safety(
            "sum below 6",
            |s: &crate::system::toy::RingState| s.0.iter().map(|&c| c as u32).sum::<u32>() < 6,
        )];
        let cfg = ExploreConfig {
            max_depth: 5,
            max_violations: 8,
            ..Default::default()
        };
        let a = parallel_bfs(&sys, &props, &cfg, 4);
        let b = parallel_bfs(&sys, &props, &cfg, 4);
        assert_eq!(a.states_visited, b.states_visited);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn state_budget_truncates() {
        let sys = CounterRing { n: 4, modulus: 10 };
        let cfg = ExploreConfig {
            max_states: 100,
            ..ExploreConfig::depth(50)
        };
        let r = parallel_bfs(&sys, &[], &cfg, 2);
        assert!(r.truncated);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let sys = CounterRing { n: 1, modulus: 2 };
        let _ = parallel_bfs(&sys, &[], &ExploreConfig::depth(1), 0);
    }

    /// The barrier snapshot must count every insert exactly once. The
    /// `&mut self` receiver on `len` makes a mid-exploration call a
    /// *compile* error (workers hold `&ShardedSet`), so this test pounds
    /// the set from many threads, joins them, and checks the total.
    #[test]
    fn sharded_len_is_exact_at_a_barrier() {
        let mut set = ShardedSet::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let set = &set;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        // Distinct values across threads, spread over shards.
                        set.insert((t * 1_000 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    }
                });
            }
        });
        assert_eq!(set.len(), 8 * 1_000);
    }

    #[test]
    fn duplicate_inserts_are_not_double_counted() {
        let mut set = ShardedSet::new();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert_eq!(set.len(), 1);
    }

    /// Every transition either discovers a new state or dedups; the split
    /// is deterministic and agrees with the sequential search.
    #[test]
    fn dedup_accounting_balances_and_matches_sequential() {
        let sys = CounterRing { n: 3, modulus: 3 };
        let cfg = ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            ..Default::default()
        };
        let seq = bfs(&sys, &[], &cfg);
        assert_eq!(seq.transitions, seq.dedup_hits + seq.states_visited - 1);
        for threads in [1, 2, 4, 8] {
            let par = parallel_bfs(&sys, &[], &cfg, threads);
            assert_eq!(par.transitions, par.dedup_hits + par.states_visited - 1);
            assert_eq!(par.dedup_hits, seq.dedup_hits, "threads={threads}");
            // (frontier_peak is not compared: the sequential queue spans
            // two levels, the parallel frontier is exactly one level.)
            assert!(par.frontier_peak > 0, "threads={threads}");
        }
    }
}
