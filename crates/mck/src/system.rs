//! The transition-system abstraction the checker explores.
//!
//! Anything that can say "here is a state, here are the enabled actions,
//! here is what each action does" can be model-checked: toy automata in
//! tests, and — the point of this repository — snapshots of a distributed
//! system's state machines with pending messages and timers as actions
//! (see `cb-core::predict`).

use std::fmt::Debug;
use std::hash::Hash;

/// A deterministic labelled transition system.
///
/// Non-determinism lives in *which* action is taken, never in what an action
/// does: `step(s, a)` must be a pure function. That discipline is what lets
/// the runtime replay a predicted path and trust the outcome.
pub trait TransitionSystem {
    /// A system configuration.
    type State: Clone + Hash + Eq + Debug;
    /// One atomic step (deliver a message, fire a timer, crash a node, …).
    type Action: Clone + Hash + Eq + Debug;

    /// The starting configuration.
    fn initial(&self) -> Self::State;

    /// Actions enabled in `state`, in a deterministic order.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Appends the actions enabled in `state` to `buf` (same order as
    /// [`actions`](TransitionSystem::actions)).
    ///
    /// The exploration kernels call this with a cleared, reused buffer so
    /// that systems which override it can avoid one `Vec` allocation per
    /// expanded state. The default delegates to `actions` — semantics are
    /// identical either way, only the allocation profile differs.
    fn actions_into(&self, state: &Self::State, buf: &mut Vec<Self::Action>) {
        buf.extend(self.actions(state));
    }

    /// Applies `action` to `state`. Must be deterministic.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// The locus (e.g. node index) an action executes at. Consequence
    /// prediction uses this to follow causal chains; the default places
    /// everything at one locus, which degrades gracefully to chain-less
    /// search.
    fn locus(&self, action: &Self::Action) -> usize {
        let _ = action;
        0
    }

    /// Relative probability weight of taking `action` in `state`, used by
    /// the random-walk simulator. The default is uniform.
    fn weight(&self, state: &Self::State, action: &Self::Action) -> f64 {
        let _ = (state, action);
        1.0
    }
}

/// A path through the system: the actions taken from the initial state.
pub type Path<A> = Vec<A>;

/// Replays a path from the initial state; returns every intermediate state
/// including the initial and final ones.
///
/// # Examples
///
/// ```
/// use cb_mck::system::{replay, TransitionSystem};
///
/// struct CountTo3;
/// impl TransitionSystem for CountTo3 {
///     type State = u8;
///     type Action = ();
///     fn initial(&self) -> u8 { 0 }
///     fn actions(&self, s: &u8) -> Vec<()> { if *s < 3 { vec![()] } else { vec![] } }
///     fn step(&self, s: &u8, _a: &()) -> u8 { s + 1 }
/// }
///
/// let states = replay(&CountTo3, &[(), ()]);
/// assert_eq!(states, vec![0, 1, 2]);
/// ```
pub fn replay<T: TransitionSystem>(sys: &T, path: &[T::Action]) -> Vec<T::State> {
    let mut states = vec![sys.initial()];
    for a in path {
        let next = sys.step(states.last().expect("states never empty"), a);
        states.push(next);
    }
    states
}

#[cfg(test)]
pub(crate) mod toy {
    //! Small systems shared by the crate's tests.

    use super::TransitionSystem;

    /// A ring of `n` counters; action `i` increments counter `i` modulo
    /// `modulus`. Rich interleaving structure, fully symmetric.
    pub struct CounterRing {
        pub n: usize,
        pub modulus: u8,
    }

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    pub struct RingState(pub Vec<u8>);

    impl TransitionSystem for CounterRing {
        type State = RingState;
        type Action = usize;

        fn initial(&self) -> RingState {
            RingState(vec![0; self.n])
        }

        fn actions(&self, _s: &RingState) -> Vec<usize> {
            (0..self.n).collect()
        }

        fn actions_into(&self, _s: &RingState, buf: &mut Vec<usize>) {
            // Allocation-free override exercised by the kernels' buffer path.
            buf.extend(0..self.n);
        }

        fn step(&self, s: &RingState, a: &usize) -> RingState {
            let mut v = s.0.clone();
            v[*a] = (v[*a] + 1) % self.modulus;
            RingState(v)
        }

        fn locus(&self, a: &usize) -> usize {
            *a
        }
    }

    /// A token passed around `n` nodes; only the holder can act. Exactly one
    /// action is enabled at a time, so the reachable set is a cycle.
    pub struct TokenRing {
        pub n: usize,
    }

    impl TransitionSystem for TokenRing {
        type State = usize;
        type Action = usize;

        fn initial(&self) -> usize {
            0
        }

        fn actions(&self, s: &usize) -> Vec<usize> {
            vec![*s]
        }

        fn step(&self, s: &usize, _a: &usize) -> usize {
            (s + 1) % self.n
        }

        fn locus(&self, a: &usize) -> usize {
            *a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::toy::*;
    use super::*;

    #[test]
    fn replay_includes_initial_and_final() {
        let sys = TokenRing { n: 3 };
        let states = replay(&sys, &[0, 1, 2, 0]);
        assert_eq!(states, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn counter_ring_actions_are_stable() {
        let sys = CounterRing { n: 4, modulus: 3 };
        let s = sys.initial();
        assert_eq!(sys.actions(&s), vec![0, 1, 2, 3]);
        let s2 = sys.step(&s, &2);
        assert_eq!(s2.0, vec![0, 0, 1, 0]);
        // Purity: same step, same result.
        assert_eq!(sys.step(&s, &2), s2);
    }

    #[test]
    fn actions_into_matches_actions() {
        let ring = CounterRing { n: 3, modulus: 2 };
        let s = ring.initial();
        let mut buf = Vec::new();
        ring.actions_into(&s, &mut buf);
        assert_eq!(buf, ring.actions(&s));

        // Default implementation (TokenRing does not override) agrees too,
        // and appends rather than overwriting.
        let tok = TokenRing { n: 3 };
        let mut buf = vec![99];
        tok.actions_into(&1, &mut buf);
        assert_eq!(buf, vec![99, 1]);
    }

    #[test]
    fn default_weight_is_uniform() {
        let sys = TokenRing { n: 2 };
        assert_eq!(sys.weight(&0, &0), 1.0);
    }
}
