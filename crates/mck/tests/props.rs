//! Property-based tests of the exploration engines.

use cb_mck::explore::{bfs, dfs, ExploreConfig};
use cb_mck::props::Property;
use cb_mck::system::{replay, TransitionSystem};
use proptest::prelude::*;

/// A randomized bounded counter grid: `n` counters, each incrementable up
/// to `cap`. Reachable states are exactly the product lattice.
#[derive(Clone)]
struct Grid {
    n: usize,
    cap: u8,
}

impl TransitionSystem for Grid {
    type State = Vec<u8>;
    type Action = usize;

    fn initial(&self) -> Vec<u8> {
        vec![0; self.n]
    }

    fn actions(&self, s: &Vec<u8>) -> Vec<usize> {
        (0..self.n).filter(|&i| s[i] < self.cap).collect()
    }

    fn step(&self, s: &Vec<u8>, a: &usize) -> Vec<u8> {
        let mut next = s.clone();
        next[*a] += 1;
        next
    }

    fn locus(&self, a: &usize) -> usize {
        *a
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With a deep-enough bound, BFS visits exactly the product lattice.
    #[test]
    fn bfs_counts_the_lattice(n in 1usize..4, cap in 1u8..4) {
        let sys = Grid { n, cap };
        let cfg = ExploreConfig { max_depth: n * (cap as usize) + 1, max_states: 1_000_000, ..Default::default() };
        let report = bfs(&sys, &[], &cfg);
        let expected = ((cap as u64) + 1).pow(n as u32);
        prop_assert_eq!(report.states_visited, expected);
        prop_assert!(!report.truncated);
    }

    /// DFS and BFS agree on reachability.
    #[test]
    fn dfs_matches_bfs_reachability(n in 1usize..4, cap in 1u8..4) {
        let sys = Grid { n, cap };
        let cfg = ExploreConfig { max_depth: n * (cap as usize) + 1, max_states: 1_000_000, ..Default::default() };
        prop_assert_eq!(bfs(&sys, &[], &cfg).states_visited, dfs(&sys, &[], &cfg).states_visited);
    }

    /// Consequence prediction never visits more states than BFS.
    #[test]
    fn consequence_is_a_pruning(n in 1usize..4, cap in 1u8..4, depth in 1usize..6) {
        let sys = Grid { n, cap };
        let cfg = ExploreConfig { max_depth: depth, max_states: 1_000_000, ..Default::default() };
        let full = bfs(&sys, &[], &cfg);
        let chains = cb_mck::consequence::predict(&sys, &[], &cfg);
        prop_assert!(chains.report.states_visited <= full.states_visited,
            "chains {} > bfs {}", chains.report.states_visited, full.states_visited);
    }

    /// Every violation's counterexample path replays to a violating state.
    #[test]
    fn counterexamples_replay(n in 1usize..4, cap in 2u8..5, limit in 1u32..6) {
        let sys = Grid { n, cap };
        let threshold = limit.min(cap as u32) as u8;
        let prop_name = "sum below threshold";
        let props = [Property::safety(prop_name, move |s: &Vec<u8>| {
            s.iter().map(|&c| c as u32).sum::<u32>() < threshold as u32
        })];
        let cfg = ExploreConfig { max_depth: 8, max_violations: 64, ..Default::default() };
        let report = bfs(&sys, &props, &cfg);
        for v in &report.violations {
            let states = replay(&sys, &v.path);
            let last = states.last().expect("nonempty");
            let sum: u32 = last.iter().map(|&c| c as u32).sum();
            prop_assert!(sum >= threshold as u32, "replayed state {last:?} does not violate");
        }
        // The threshold is reachable, so violations must exist.
        prop_assert!(!report.safe());
    }

    /// Budgets are hard limits.
    #[test]
    fn budgets_bound_the_search(n in 2usize..4, cap in 2u8..5, budget in 2usize..40) {
        let sys = Grid { n, cap };
        let cfg = ExploreConfig { max_depth: 50, max_states: budget, ..Default::default() };
        let report = bfs(&sys, &[], &cfg);
        prop_assert!(report.states_visited as usize <= budget);
    }

    /// Parallel BFS agrees with sequential BFS for every thread count.
    #[test]
    fn parallel_agrees_with_sequential(n in 1usize..4, cap in 1u8..4, threads in 1usize..5) {
        let sys = Grid { n, cap };
        let cfg = ExploreConfig { max_depth: 8, max_states: 1_000_000, ..Default::default() };
        let seq = bfs(&sys, &[], &cfg);
        let par = cb_mck::parallel::parallel_bfs(&sys, &[], &cfg, threads);
        prop_assert_eq!(seq.states_visited, par.states_visited);
    }
}
