//! Differential tests: the level-synchronized parallel BFS must be
//! observationally identical to the sequential BFS on every deterministic
//! statistic — states visited, transitions, dedup hits, truncation,
//! violation set — and on the telemetry counters derived from them, across
//! randomized small transition systems and 1/2/4/8 worker threads. Only
//! scheduling-dependent metrics (shard contention, a `wall` key) and the
//! frontier-peak gauge (the sequential queue spans two levels, the
//! parallel frontier exactly one) are exempt.

use cb_mck::explore::{bfs, ExplorationReport, ExploreConfig};
use cb_mck::parallel::parallel_bfs;
use cb_mck::props::Property;
use cb_mck::system::TransitionSystem;
use cb_telemetry::{keys, Registry};
use proptest::prelude::*;

/// A seed-parameterized random digraph over `0..states`: from `s`, action
/// `i in 0..fanout` steps to `hash(seed, s, i) % states`. Deterministic,
/// cyclic, and irregular — exactly the shape that shakes out frontier
/// bookkeeping bugs.
#[derive(Clone)]
struct RandGraph {
    seed: u64,
    states: u64,
    fanout: u64,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TransitionSystem for RandGraph {
    type State = u64;
    type Action = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn actions(&self, s: &u64) -> Vec<u64> {
        (0..self.fanout)
            .map(|i| mix(self.seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i) % self.states)
            .collect()
    }

    fn step(&self, _s: &u64, a: &u64) -> u64 {
        *a
    }
}

/// The deterministic face of a report: everything except the
/// scheduling-dependent contention counter and the frontier-peak gauge.
type Face = (u64, u64, u64, u64, usize, bool, Vec<(String, usize)>);

fn deterministic_face(r: &ExplorationReport<u64>) -> Face {
    let mut viols: Vec<(String, usize)> = r
        .violations
        .iter()
        .map(|v| (v.property.clone(), v.path.len()))
        .collect();
    // Within a BFS level, discovery order may differ between workers; the
    // set of (property, shortest-path length) pairs may not.
    viols.sort();
    (
        r.states_visited,
        r.states_expanded,
        r.transitions,
        r.dedup_hits,
        r.max_depth_reached,
        r.truncated,
        viols,
    )
}

/// Telemetry export of a report, with wall-clock keys masked.
fn masked_telemetry(r: &ExplorationReport<u64>) -> Registry {
    let mut reg = Registry::new();
    keys::preregister_standard(&mut reg);
    r.record_into(&mut reg);
    // The frontier gauge legitimately differs between the two engines
    // (queue-spans-two-levels vs one-level frontier); blank it so the rest
    // of the registry must match exactly.
    reg.gauge_set(keys::MCK_FRONTIER_PEAK, 0);
    reg.masked()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel BFS at any thread count reports the same deterministic
    /// statistics and telemetry counters as the sequential BFS.
    #[test]
    fn parallel_bfs_matches_sequential(
        seed in any::<u64>(),
        states in 2u64..120,
        fanout in 1u64..4,
        max_depth in 1usize..8,
    ) {
        let sys = RandGraph { seed, states, fanout };
        let props = [Property::safety("state is not 1 mod 7", |s: &u64| s % 7 != 1)];
        let cfg = ExploreConfig {
            max_depth,
            max_states: 1_000_000,
            max_violations: 1_000_000,
            stop_at_first_violation: false,
        };
        let seq = bfs(&sys, &props, &cfg);
        let seq_face = deterministic_face(&seq);
        let seq_tel = masked_telemetry(&seq);
        prop_assert_eq!(seq.shard_contention_wall, 0, "sequential BFS takes no locks");
        for threads in [1usize, 2, 4, 8] {
            let par = parallel_bfs(&sys, &props, &cfg, threads);
            prop_assert_eq!(
                &deterministic_face(&par), &seq_face,
                "parallel ({} threads) diverged from sequential", threads
            );
            prop_assert_eq!(
                &masked_telemetry(&par), &seq_tel,
                "telemetry mismatch at {} threads", threads
            );
            prop_assert!(par.frontier_peak > 0);
        }
    }

    /// The dedup invariant holds for both engines: every transition either
    /// discovered a new state or hit the visited set.
    #[test]
    fn dedup_invariant_holds(
        seed in any::<u64>(),
        states in 2u64..80,
        fanout in 1u64..4,
    ) {
        let sys = RandGraph { seed, states, fanout };
        let cfg = ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            ..Default::default()
        };
        for report in [bfs(&sys, &[], &cfg), parallel_bfs(&sys, &[], &cfg, 4)] {
            prop_assert_eq!(
                report.transitions,
                report.dedup_hits + (report.states_visited - 1),
                "transitions must partition into dedup hits and discoveries"
            );
        }
    }
}
