//! Hierarchical timer wheel: the large-fleet event queue.
//!
//! A classic calendar-queue design (Varghese & Lauck): three levels of 1024
//! slots each, covering ~65 ms, ~67 s and ~19 h of simulated time at 64 µs
//! granularity, with a far-future overflow heap behind the last level. Events
//! land in the coarsest slot that can hold them and cascade down as the
//! cursor advances, so push and pop are O(1) amortized instead of the
//! O(log n) of a global [`BinaryHeap`] — the difference shows at 10k-node
//! fleets where hundreds of thousands of timers are pending at once.
//!
//! # Ordering contract
//!
//! Dispatch order is **exactly** the total order `(time, node, seq)` — the
//! same explicit key the reference `BinaryHeap` scheduler uses (see
//! `SchedulerKind` in the `sim` module). The differential tests pin the two
//! implementations to byte-identical dispatch sequences; any deviation here
//! is a bug, not a tuning knob.
//!
//! # Allocation discipline
//!
//! Slot vectors are recycled through a small pool, the drained slot is sorted
//! into a reusable `ready` buffer, and steady-state operation performs no
//! allocation at all once the pool is warm.

use std::collections::BinaryHeap;

/// Slot granularity: 2^16 ns = 65.536 µs per level-0 slot.
const SHIFT: u32 = 16;
/// log2(slots per level).
const BITS: u32 = 10;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels (L0..L2); beyond that, the overflow heap.
const LEVELS: usize = 3;
/// Bitmap words per level.
const WORDS: usize = SLOTS / 64;
/// Spare slot vectors kept for reuse.
const POOL_MAX: usize = 64;

/// The explicit event ordering key: `(time ns, node, seq)`.
pub type WheelKey = (u64, u32, u64);

struct Entry<T> {
    at: u64,
    node: u32,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> WheelKey {
        (self.at, self.node, self.seq)
    }
}

/// An overflow-heap entry ordered as a min-heap on the wheel key.
struct OverflowEntry<T>(Entry<T>);

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap behavior.
        other.0.key().cmp(&self.0.key())
    }
}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    /// Occupancy bitmap over slot indices; bit set ⇔ slot non-empty.
    occ: [u64; WORDS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; WORDS],
        }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// First occupied slot index at or after `start` in plain index order.
    fn scan_from(&self, start: usize) -> Option<usize> {
        let (w0, b0) = (start >> 6, start & 63);
        let masked = self.occ[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some((w0 << 6) + masked.trailing_zeros() as usize);
        }
        for w in w0 + 1..WORDS {
            if self.occ[w] != 0 {
                return Some((w << 6) + self.occ[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// First occupied slot in circular order starting at `start`. The
    /// caller's window invariant guarantees the circular distance from the
    /// cursor equals the distance in absolute slot numbers, so the first
    /// hit is the earliest slot.
    fn scan_circular(&self, start: usize) -> Option<usize> {
        self.scan_from(start).or_else(|| self.scan_from(0))
    }
}

/// The hierarchical event wheel. Generic over the event payload so the unit
/// and differential tests can drive it with plain integers.
pub struct EventWheel<T> {
    levels: Vec<Level<T>>,
    overflow: BinaryHeap<OverflowEntry<T>>,
    /// Events with `at >> SHIFT <= cursor` live here, sorted **descending**
    /// by key so the minimum pops from the back.
    ready: Vec<Entry<T>>,
    /// Absolute level-0 slot number of the wheel cursor. All events in the
    /// levels are strictly after this slot; everything at or before it has
    /// been moved to `ready`.
    cursor: u64,
    len: usize,
    pool: Vec<Vec<Entry<T>>>,
    scratch: Vec<Entry<T>>,
}

impl<T> EventWheel<T> {
    pub fn new() -> Self {
        EventWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            ready: Vec::new(),
            cursor: 0,
            len: 0,
            pool: Vec::new(),
            scratch: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an event. `at` may be at or before the cursor (an actor
    /// invoked between steps can schedule for "now"); such events go
    /// straight into the sorted ready buffer.
    pub fn push(&mut self, at: u64, node: u32, seq: u64, item: T) {
        self.len += 1;
        self.place(Entry {
            at,
            node,
            seq,
            item,
        });
    }

    /// Removes and returns the earliest event by `(time, node, seq)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if !self.prime() {
            return None;
        }
        let e = self.ready.pop().expect("prime guarantees a ready event");
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// The key of the earliest event without removing it. `&mut` because
    /// finding the exact minimum may advance the cursor and drain a slot.
    pub fn peek_key(&mut self) -> Option<WheelKey> {
        if !self.prime() {
            return None;
        }
        self.ready.last().map(|e| e.key())
    }

    /// Routes an entry to the ready buffer, a wheel level, or the overflow
    /// heap, according to the cursor.
    fn place(&mut self, e: Entry<T>) {
        let abs0 = e.at >> SHIFT;
        if abs0 <= self.cursor {
            // At or behind the cursor: merge into the sorted ready buffer
            // (descending, so earlier keys sit nearer the back).
            let key = e.key();
            let idx = self.ready.partition_point(|x| x.key() > key);
            self.ready.insert(idx, e);
            return;
        }
        for k in 0..LEVELS as u32 {
            let abs_k = e.at >> (SHIFT + k * BITS);
            let cur_k = self.cursor >> (k * BITS);
            if abs_k - cur_k < SLOTS as u64 {
                let idx = (abs_k as usize) & (SLOTS - 1);
                let level = &mut self.levels[k as usize];
                if level.slots[idx].is_empty() {
                    if let Some(mut v) = self.pool.pop() {
                        v.clear();
                        std::mem::swap(&mut level.slots[idx], &mut v);
                        debug_assert!(v.is_empty());
                    }
                    level.set(idx);
                }
                level.slots[idx].push(e);
                return;
            }
        }
        self.overflow.push(OverflowEntry(e));
    }

    /// Ensures the ready buffer holds the global minimum (and everything
    /// else at or before the cursor). Returns false when the queue is empty.
    fn prime(&mut self) -> bool {
        loop {
            if !self.ready.is_empty() {
                return true;
            }
            if self.len == 0 {
                return false;
            }
            // Earliest occupied slot per level, by absolute slot start time.
            // Coarser levels win ties so containers covering the same start
            // are redistributed before finer slots are drained.
            let mut best: Option<(u64, usize, usize, u64)> = None; // (start, level, idx, abs)
            for k in (0..LEVELS).rev() {
                let cur_k = self.cursor >> (k as u32 * BITS);
                let start_idx = (cur_k as usize) & (SLOTS - 1);
                if let Some(idx) = self.levels[k].scan_circular(start_idx) {
                    let dist = (idx as u64).wrapping_sub(cur_k) & (SLOTS as u64 - 1);
                    let abs = cur_k + dist;
                    let start = abs << (SHIFT + k as u32 * BITS);
                    let better = match best {
                        None => true,
                        Some((s, ..)) => start < s,
                    };
                    if better {
                        best = Some((start, k, idx, abs));
                    }
                }
            }
            match best {
                Some((_, 0, idx, abs)) => {
                    // Drain the nearest level-0 slot into the ready buffer.
                    let level = &mut self.levels[0];
                    let mut slot = std::mem::take(&mut level.slots[idx]);
                    level.clear(idx);
                    self.cursor = abs;
                    debug_assert!(self.ready.is_empty());
                    std::mem::swap(&mut self.ready, &mut slot);
                    self.ready
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    if self.pool.len() < POOL_MAX {
                        self.pool.push(slot);
                    }
                    self.migrate_overflow();
                }
                Some((_, k, idx, abs)) => {
                    // Cascade a coarser slot: advance the cursor to its
                    // start and redistribute its entries downward.
                    let level = &mut self.levels[k];
                    let mut slot = std::mem::take(&mut level.slots[idx]);
                    level.clear(idx);
                    self.cursor = abs << (k as u32 * BITS);
                    std::mem::swap(&mut self.scratch, &mut slot);
                    if self.pool.len() < POOL_MAX {
                        self.pool.push(slot);
                    }
                    // A finer level may hold a slot whose window starts at
                    // exactly the new cursor — it tied with the cascaded
                    // slot on start time and lost to the coarser level. Its
                    // events at the cursor slot must reach the ready buffer
                    // in this same pass, or the loop's ready check would
                    // return with them stranded behind later events.
                    for j in 0..k {
                        let cur_j = self.cursor >> (j as u32 * BITS);
                        let idx_j = (cur_j as usize) & (SLOTS - 1);
                        let starts_at_cursor = self.levels[j].slots[idx_j]
                            .first()
                            .is_some_and(|e| e.at >> (SHIFT + j as u32 * BITS) == cur_j);
                        if starts_at_cursor {
                            let mut extra = std::mem::take(&mut self.levels[j].slots[idx_j]);
                            self.levels[j].clear(idx_j);
                            self.scratch.append(&mut extra);
                            if self.pool.len() < POOL_MAX {
                                self.pool.push(extra);
                            }
                        }
                    }
                    while let Some(e) = self.scratch.pop() {
                        self.place(e);
                    }
                    self.migrate_overflow();
                }
                None => {
                    // Wheel empty: jump the cursor to the overflow minimum.
                    let top = self
                        .overflow
                        .peek()
                        .expect("len > 0 and wheel empty ⇒ overflow non-empty");
                    self.cursor = top.0.at >> SHIFT;
                    self.migrate_overflow();
                }
            }
        }
    }

    /// Moves overflow events that now fit inside the wheel horizon back into
    /// the levels. Called whenever the cursor advances, preserving the
    /// invariant that the overflow heap never holds an event within the
    /// wheel's current range (so it can be ignored when picking the next
    /// slot).
    fn migrate_overflow(&mut self) {
        let cur_top = self.cursor >> ((LEVELS as u32 - 1) * BITS);
        while let Some(top) = self.overflow.peek() {
            let abs_top = top.0.at >> (SHIFT + (LEVELS as u32 - 1) * BITS);
            if abs_top - cur_top >= SLOTS as u64 {
                break;
            }
            let e = self.overflow.pop().expect("peeked").0;
            self.place(e);
        }
    }
}

#[cfg(test)]
impl<T> EventWheel<T> {
    /// Test-only: report where an event with the given timestamp lives.
    fn debug_locate(&self, at: u64) -> String {
        let mut out = format!("cursor={} (t={})", self.cursor, self.cursor << SHIFT);
        for (i, e) in self.ready.iter().enumerate() {
            if e.at == at {
                out += &format!("; ready[{i}]");
            }
        }
        for (k, level) in self.levels.iter().enumerate() {
            for (idx, slot) in level.slots.iter().enumerate() {
                for e in slot {
                    if e.at == at {
                        let abs_k = at >> (SHIFT + k as u32 * BITS);
                        let cur_k = self.cursor >> (k as u32 * BITS);
                        out += &format!(
                            "; L{k} slot idx={idx} abs_k={abs_k} cur_k={cur_k} occ={}",
                            (level.occ[idx >> 6] >> (idx & 63)) & 1
                        );
                    }
                }
            }
        }
        for e in &self.overflow {
            if e.0.at == at {
                out += "; overflow";
            }
        }
        out
    }
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        EventWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: a plain min-heap on the same key.
    struct RefHeap {
        heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u64, u32)>>,
    }
    impl RefHeap {
        fn new() -> Self {
            RefHeap {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: u64, node: u32, seq: u64, item: u32) {
            self.heap.push(std::cmp::Reverse((at, node, seq, item)));
        }
        fn pop(&mut self) -> Option<(u64, u32)> {
            self.heap
                .pop()
                .map(|std::cmp::Reverse((at, _, _, item))| (at, item))
        }
    }

    #[test]
    fn pops_in_time_node_seq_order() {
        let mut w = EventWheel::new();
        w.push(50, 1, 2, 0);
        w.push(50, 0, 3, 1);
        w.push(10, 9, 1, 2);
        w.push(50, 1, 0, 3);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|(_, i)| i).collect();
        // at=10 first; then at=50 ordered by (node, seq): (0,3), (1,0), (1,2).
        assert_eq!(order, vec![2, 1, 3, 0]);
    }

    #[test]
    fn spans_levels_and_overflow() {
        let mut w = EventWheel::new();
        let times = [
            0u64,
            1,
            (1 << SHIFT) - 1,
            1 << SHIFT,
            (1 << (SHIFT + BITS)) - 1,
            1 << (SHIFT + BITS),
            1 << (SHIFT + 2 * BITS),
            (1 << (SHIFT + 3 * BITS)) - 1,
            1 << (SHIFT + 3 * BITS), // beyond the wheel: overflow
            (1 << (SHIFT + 3 * BITS)) + 5,
            u64::from(u32::MAX) << SHIFT, // deep overflow
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, 0, i as u64, i as u32);
        }
        let mut prev = 0u64;
        let mut n = 0;
        while let Some((at, _)) = w.pop() {
            assert!(at >= prev, "out of order: {at} after {prev}");
            prev = at;
            n += 1;
        }
        assert_eq!(n, times.len());
    }

    #[test]
    fn push_behind_cursor_lands_in_front() {
        let mut w = EventWheel::new();
        w.push(5 << SHIFT, 0, 0, 0);
        w.push(9 << SHIFT, 0, 1, 1);
        // Peek advances the cursor to slot 5.
        assert_eq!(w.peek_key().unwrap().0, 5 << SHIFT);
        // A later push behind the cursor must still come out first.
        w.push(1, 0, 2, 2);
        assert_eq!(w.pop().unwrap(), (1, 2));
        assert_eq!(w.pop().unwrap(), (5 << SHIFT, 0));
        assert_eq!(w.pop().unwrap(), (9 << SHIFT, 1));
        assert!(w.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_matches_reference() {
        use crate::rng::SimRng;
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from(seed * 7 + 1);
            let mut wheel = EventWheel::new();
            let mut reference = RefHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut item = 0u32;
            for _ in 0..2000 {
                if rng.gen_below(3) < 2 || wheel.is_empty() {
                    // Push at a horizon spanning every level.
                    let horizon = match rng.gen_below(4) {
                        0 => 1 << SHIFT,                  // level 0
                        1 => 1 << (SHIFT + BITS),         // level 1
                        2 => 1 << (SHIFT + 2 * BITS),     // level 2
                        _ => 1 << (SHIFT + 3 * BITS + 2), // overflow
                    };
                    let at = now + rng.gen_below(horizon);
                    let node = rng.gen_below(64) as u32;
                    wheel.push(at, node, seq, item);
                    reference.push(at, node, seq, item);
                    seq += 1;
                    item += 1;
                } else {
                    let a = wheel.pop();
                    let b = reference.pop();
                    assert_eq!(a, b, "divergence at seed {seed}");
                    if let Some((at, _)) = a {
                        now = at;
                    }
                }
            }
            loop {
                let a = wheel.pop();
                let b = reference.pop();
                assert_eq!(a, b, "drain divergence at seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn realistic_timer_and_delivery_mix_matches_reference() {
        // Deltas shaped like the real sim: ~100 ms timer re-arms (level 1
        // territory) and 2–60 ms deliveries (level 0), popped in runs. This
        // is the regime the coarse horizon-spanning test misses.
        use crate::rng::SimRng;
        for seed in 0..50u64 {
            let mut rng = SimRng::seed_from(seed * 13 + 3);
            let mut wheel = EventWheel::new();
            let mut reference = RefHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for step in 0..30000 {
                let pushes = 1 + rng.gen_below(3);
                for _ in 0..pushes {
                    let delta = if rng.gen_below(3) == 0 {
                        100_000_000 + rng.gen_below(100_000_000)
                    } else {
                        2_000_000 + rng.gen_below(58_000_000)
                    };
                    let at = now + delta;
                    let node = rng.gen_below(100) as u32;
                    wheel.push(at, node, seq, seq as u32);
                    reference.push(at, node, seq, seq as u32);
                    seq += 1;
                }
                let pops = 1 + rng.gen_below(3);
                for _ in 0..pops {
                    let expected = reference.pop();
                    if let Some((eat, _)) = expected {
                        if wheel.ready.last().map(|e| e.at) != Some(eat) {
                            // About to diverge (or already primed right).
                        }
                    }
                    let a = wheel.pop();
                    if a != expected {
                        if let Some((eat, _)) = expected {
                            panic!(
                                "divergence at seed {seed} step {step}: got {a:?} want {expected:?}; missing event: {}",
                                wheel.debug_locate(eat)
                            );
                        }
                    }
                    assert_eq!(a, expected, "divergence at seed {seed} step {step}");
                    if let Some((at, _)) = a {
                        now = at;
                    }
                }
            }
        }
    }

    #[test]
    fn len_tracks_contents() {
        let mut w = EventWheel::new();
        assert!(w.is_empty());
        for i in 0..100u64 {
            w.push(i * (1 << SHIFT), 0, i, i as u32);
        }
        assert_eq!(w.len(), 100);
        for _ in 0..40 {
            w.pop();
        }
        assert_eq!(w.len(), 60);
    }
}
