//! Network topologies and path properties.
//!
//! The simulator emulates an Internet-like substrate the way ModelNet does:
//! end hosts attach through access links to a routed core, and what a packet
//! experiences end to end is the sum of propagation latencies, the bottleneck
//! bandwidth, and the composed loss probability along its route. We build the
//! router graph once, run Dijkstra (by latency) from every host's attachment
//! point, and store the resulting [`PathProps`] matrix; the event loop then
//! prices each message in O(1).
//!
//! Generators cover the shapes the experiments need: [`Topology::star`] for
//! unit tests, [`Topology::dumbbell`] for bandwidth contention,
//! [`Topology::random_waxman`] for unstructured overlays, and
//! [`Topology::transit_stub`] for the "Internet-like network" of the paper's
//! ModelNet case study.

use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Identifies an end host (a simulation participant).
///
/// Hosts are numbered densely from zero in creation order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The host's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Properties of one directed link in the router core.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkParams {
    /// A convenient loss-free link.
    pub fn new(latency: SimDuration, bandwidth_bps: u64) -> Self {
        LinkParams {
            latency,
            bandwidth_bps,
            loss: 0.0,
        }
    }

    /// Same link with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss {loss} outside [0,1]");
        self.loss = loss;
        self
    }
}

/// End-to-end properties of the route between two hosts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathProps {
    /// Sum of propagation delays along the route.
    pub latency: SimDuration,
    /// Bottleneck (minimum) bandwidth along the route, bits per second.
    pub bandwidth_bps: u64,
    /// Composed loss probability: `1 - prod(1 - loss_i)`.
    pub loss: f64,
    /// Number of core links traversed.
    pub hops: u32,
}

impl PathProps {
    /// Path properties for a host talking to itself: loopback.
    pub fn loopback() -> Self {
        PathProps {
            latency: SimDuration::from_micros(20),
            bandwidth_bps: 10_000_000_000,
            loss: 0.0,
            hops: 0,
        }
    }
}

/// Access-link capacities of one host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessLink {
    /// Upstream (host to core) capacity, bits per second.
    pub up_bps: u64,
    /// Downstream (core to host) capacity, bits per second.
    pub down_bps: u64,
}

impl AccessLink {
    /// Symmetric access link.
    pub fn symmetric(bps: u64) -> Self {
        AccessLink {
            up_bps: bps,
            down_bps: bps,
        }
    }
}

/// Default access link: 100 Mbit/s symmetric, a LAN-class host.
impl Default for AccessLink {
    fn default() -> Self {
        AccessLink::symmetric(100_000_000)
    }
}

/// Per-router Dijkstra result: (latency, bottleneck bw, log-survival, hops).
type RouteInfo = (SimDuration, u64, f64, u32);

#[derive(Clone, Debug)]
struct RouterEdge {
    to: usize,
    params: LinkParams,
}

/// A built network topology: hosts, access links, and the all-pairs
/// [`PathProps`] matrix of the router core.
///
/// # Examples
///
/// ```
/// use cb_simnet::time::SimDuration;
/// use cb_simnet::topology::Topology;
///
/// let topo = Topology::star(4, SimDuration::from_millis(10), 100_000_000);
/// let p = topo.path(cb_simnet::topology::NodeId(0), cb_simnet::topology::NodeId(3));
/// assert_eq!(p.latency, SimDuration::from_millis(20)); // two spokes
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    host_count: usize,
    access: Vec<AccessLink>,
    paths: PathStore,
    /// Optional label per host (e.g. which ISP/stub it belongs to).
    domain: Vec<u32>,
}

/// How end-to-end path properties are stored.
///
/// Small topologies keep the classic dense `n × n` [`PathProps`] matrix —
/// O(1) reads, exact mutation semantics, and byte-identical behavior with
/// every experiment shipped before the 10k-node work. Beyond
/// [`DENSE_HOST_LIMIT`] hosts the dense matrix is quadratic in memory
/// (≈4 GB at 10k hosts), so large builds switch to an implicit store: a
/// router-level core model plus per-host attachment info, composed into
/// [`PathProps`] at read time. Host fan-out per router is large in the
/// generated shapes, so the router-level matrix stays tiny.
#[derive(Clone, Debug)]
enum PathStore {
    /// Row-major `host_count × host_count` matrix; diagonal is loopback.
    Dense(Vec<PathProps>),
    /// Router-level core + per-host attachment, composed on demand.
    Implicit {
        core: CoreModel,
        /// For each host: (compact core-router index, access latency).
        attach: Vec<(u32, SimDuration)>,
        /// Global latency delta from `add_latency_all`/`sub_latency_all`.
        extra_latency: SimDuration,
        /// Global loss delta from `add_loss_all` (clamped at read).
        extra_loss: f64,
        /// Per-pair deltas from `add_path_latency`/`add_path_loss`, keyed
        /// by `(min, max)` host id. Looked up, never iterated, so the map
        /// cannot leak iteration-order nondeterminism.
        overrides: HashMap<(u32, u32), PairDelta>,
    },
}

/// Host count above which [`CoreGraph::build`] stores paths implicitly.
const DENSE_HOST_LIMIT: usize = 1024;

/// Accumulated per-pair mutation deltas for the implicit store.
#[derive(Clone, Copy, Debug, Default)]
struct PairDelta {
    latency: SimDuration,
    loss: f64,
}

fn pair_key(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

/// Router-level route source for the implicit path store.
#[derive(Clone, Debug)]
enum CoreModel {
    /// All-pairs matrix over the distinct attachment routers:
    /// `(latency, bottleneck bw, composed loss, hops)`, row-major.
    Matrix {
        routers: usize,
        data: Vec<(SimDuration, u64, f64, u32)>,
    },
    /// Closed-form k-ary fat-tree over edge-switch indices: two hosts on
    /// the same edge switch share it directly; same pod crosses two
    /// edge↔aggregation links; different pods additionally cross two
    /// aggregation↔core links.
    FatTree {
        edges_per_pod: usize,
        agg_latency: SimDuration,
        core_latency: SimDuration,
        edge_bps: u64,
        core_bps: u64,
    },
}

impl CoreModel {
    /// Core contribution of the route between two attachment routers:
    /// `(latency, bottleneck bw, composed loss, core hops)`.
    fn route(&self, ra: u32, rb: u32) -> (SimDuration, u64, f64, u32) {
        if ra == rb {
            return (SimDuration::ZERO, u64::MAX, 0.0, 0);
        }
        match self {
            CoreModel::Matrix { routers, data } => data[ra as usize * routers + rb as usize],
            CoreModel::FatTree {
                edges_per_pod,
                agg_latency,
                core_latency,
                edge_bps,
                core_bps,
            } => {
                let (pa, pb) = (ra as usize / edges_per_pod, rb as usize / edges_per_pod);
                if pa == pb {
                    (*agg_latency * 2, *edge_bps, 0.0, 2)
                } else {
                    (
                        *agg_latency * 2 + *core_latency * 2,
                        (*edge_bps).min(*core_bps),
                        0.0,
                        4,
                    )
                }
            }
        }
    }
}

/// Parameters for the transit-stub ("Internet-like") generator.
#[derive(Clone, Debug)]
pub struct TransitStubConfig {
    /// Number of transit (backbone) routers, ring-plus-chords connected.
    pub transit_routers: usize,
    /// Stub domains attached to each transit router.
    pub stubs_per_transit: usize,
    /// End hosts attached to each stub router.
    pub hosts_per_stub: usize,
    /// Latency range between transit routers (WAN scale).
    pub transit_latency: (SimDuration, SimDuration),
    /// Latency range from stub to its transit router (regional scale).
    pub stub_latency: (SimDuration, SimDuration),
    /// Latency range from host to its stub router (access scale).
    pub access_latency: (SimDuration, SimDuration),
    /// Backbone capacity, bits per second.
    pub transit_bps: u64,
    /// Stub uplink capacity, bits per second.
    pub stub_bps: u64,
    /// Host access link.
    pub access: AccessLink,
    /// Per-packet loss on transit links.
    pub transit_loss: f64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_routers: 4,
            stubs_per_transit: 2,
            hosts_per_stub: 4,
            transit_latency: (SimDuration::from_millis(20), SimDuration::from_millis(60)),
            stub_latency: (SimDuration::from_millis(2), SimDuration::from_millis(10)),
            access_latency: (SimDuration::from_micros(200), SimDuration::from_millis(2)),
            transit_bps: 1_000_000_000,
            stub_bps: 200_000_000,
            access: AccessLink::symmetric(100_000_000),
            transit_loss: 0.0,
        }
    }
}

impl TransitStubConfig {
    /// Total number of hosts the configuration produces.
    pub fn host_count(&self) -> usize {
        self.transit_routers * self.stubs_per_transit * self.hosts_per_stub
    }

    /// Scales the host count by adjusting `hosts_per_stub` upward until at
    /// least `n` hosts exist (the extras are spread by the generator).
    pub fn with_at_least_hosts(mut self, n: usize) -> Self {
        while self.host_count() < n {
            self.hosts_per_stub += 1;
        }
        self
    }

    /// A backbone proportioned for `n` hosts: the transit ring and stub
    /// fan-out grow with the fleet so 10k hosts spread over ~100 stub
    /// domains instead of piling thousands onto the default 8 stubs.
    /// Combine with [`Topology::transit_stub_exact`] for an exact host
    /// count.
    pub fn balanced_for(n: usize) -> Self {
        let transit = (n / 64).clamp(2, 16);
        let stubs = (n / (transit * 128)).clamp(1, 8);
        let hosts = n.div_ceil(transit * stubs).max(1);
        TransitStubConfig {
            transit_routers: transit,
            stubs_per_transit: stubs,
            hosts_per_stub: hosts,
            ..Default::default()
        }
    }
}

/// Parameters for the k-ary fat-tree generator, the standard data-center
/// Clos shape: `k` pods of `k/2` edge and `k/2` aggregation switches with
/// a `(k/2)²` core layer, for a capacity of `k³/4` hosts.
#[derive(Clone, Debug)]
pub struct FatTreeConfig {
    /// Switch arity; must be even and ≥ 2. Capacity is `k³/4` hosts.
    pub k: usize,
    /// Exact number of hosts to place (≤ capacity), filled edge switch by
    /// edge switch in pod order.
    pub hosts: usize,
    /// Edge↔aggregation link latency.
    pub agg_latency: SimDuration,
    /// Aggregation↔core link latency.
    pub core_latency: SimDuration,
    /// Host access-latency range (drawn per host).
    pub access_latency: (SimDuration, SimDuration),
    /// Edge↔aggregation capacity, bits per second.
    pub edge_bps: u64,
    /// Aggregation↔core capacity, bits per second.
    pub core_bps: u64,
    /// Host access link.
    pub access: AccessLink,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            k: 4,
            hosts: 16,
            agg_latency: SimDuration::from_micros(50),
            core_latency: SimDuration::from_micros(100),
            access_latency: (SimDuration::from_micros(5), SimDuration::from_micros(30)),
            edge_bps: 10_000_000_000,
            core_bps: 40_000_000_000,
            access: AccessLink::symmetric(1_000_000_000),
        }
    }
}

impl FatTreeConfig {
    /// Maximum hosts the arity supports: `k³/4`.
    pub fn capacity(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// The smallest even-`k` fat-tree that fits exactly `n` hosts.
    pub fn for_hosts(n: usize) -> Self {
        let mut k = 2;
        while k * k * k / 4 < n {
            k += 2;
        }
        FatTreeConfig {
            k,
            hosts: n,
            ..Default::default()
        }
    }
}

/// Builder state: a router graph plus host attachment points.
struct CoreGraph {
    adj: Vec<Vec<RouterEdge>>,
    /// For each host: (attachment router, access latency).
    attach: Vec<(usize, SimDuration)>,
    access: Vec<AccessLink>,
    domain: Vec<u32>,
}

impl CoreGraph {
    fn new() -> Self {
        CoreGraph {
            adj: Vec::new(),
            attach: Vec::new(),
            access: Vec::new(),
            domain: Vec::new(),
        }
    }

    fn add_router(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    fn link(&mut self, a: usize, b: usize, params: LinkParams) {
        self.adj[a].push(RouterEdge { to: b, params });
        self.adj[b].push(RouterEdge { to: a, params });
    }

    fn add_host(
        &mut self,
        router: usize,
        access_latency: SimDuration,
        access: AccessLink,
        domain: u32,
    ) -> NodeId {
        self.attach.push((router, access_latency));
        self.access.push(access);
        self.domain.push(domain);
        NodeId((self.attach.len() - 1) as u32)
    }

    /// Dijkstra from `src` router by latency; returns per-router
    /// (latency, bottleneck bw, log-survival, hops).
    fn shortest_from(&self, src: usize) -> Vec<Option<RouteInfo>> {
        #[derive(PartialEq)]
        struct Entry(SimDuration, usize);
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse: BinaryHeap is a max-heap, we want min latency first.
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.adj.len();
        let mut best: Vec<Option<RouteInfo>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        best[src] = Some((SimDuration::ZERO, u64::MAX, 0.0, 0));
        heap.push(Entry(SimDuration::ZERO, src));
        while let Some(Entry(dist, u)) = heap.pop() {
            match best[u] {
                Some((d, ..)) if d < dist => continue,
                _ => {}
            }
            let (_, bw_u, ls_u, hops_u) = best[u].expect("popped router has entry");
            for e in &self.adj[u] {
                let nd = dist + e.params.latency;
                let improved = match best[e.to] {
                    None => true,
                    Some((d, ..)) => nd < d,
                };
                if improved {
                    best[e.to] = Some((
                        nd,
                        bw_u.min(e.params.bandwidth_bps),
                        ls_u + (1.0 - e.params.loss).ln(),
                        hops_u + 1,
                    ));
                    heap.push(Entry(nd, e.to));
                }
            }
        }
        best
    }

    fn build(self) -> Topology {
        if self.attach.len() > DENSE_HOST_LIMIT {
            return self.build_implicit();
        }
        let host_count = self.attach.len();
        let mut paths = vec![PathProps::loopback(); host_count * host_count];
        // One Dijkstra per attachment router (deduplicated).
        let mut router_results: Vec<Option<Vec<Option<RouteInfo>>>> = vec![None; self.adj.len()];
        for a in 0..host_count {
            let (ra, la) = self.attach[a];
            if router_results[ra].is_none() {
                router_results[ra] = Some(self.shortest_from(ra));
            }
            let from_ra = router_results[ra].as_ref().expect("just computed");
            for b in 0..host_count {
                if a == b {
                    continue;
                }
                let (rb, lb) = self.attach[b];
                let (core_lat, core_bw, core_ls, core_hops) = if ra == rb {
                    (SimDuration::ZERO, u64::MAX, 0.0, 0)
                } else {
                    from_ra[rb].unwrap_or_else(|| {
                        panic!("router core is disconnected: no path {ra} -> {rb}")
                    })
                };
                paths[a * host_count + b] = PathProps {
                    latency: la + core_lat + lb,
                    bandwidth_bps: core_bw,
                    loss: 1.0 - core_ls.exp(),
                    hops: core_hops + 2,
                };
            }
        }
        Topology {
            host_count,
            access: self.access,
            paths: PathStore::Dense(paths),
            domain: self.domain,
        }
    }

    /// Large-fleet build: one Dijkstra per *distinct* attachment router and
    /// a router-level matrix instead of the quadratic host-level one.
    /// Generated shapes attach many hosts per router, so this is orders of
    /// magnitude smaller (10k hosts over ~100 stub routers: 100×100 entries
    /// instead of 10⁸).
    fn build_implicit(self) -> Topology {
        let host_count = self.attach.len();
        // Compact distinct attachment routers in first-appearance order.
        let mut compact: HashMap<usize, u32> = HashMap::new();
        let mut routers: Vec<usize> = Vec::new();
        let mut attach: Vec<(u32, SimDuration)> = Vec::with_capacity(host_count);
        for &(router, access_lat) in &self.attach {
            let idx = *compact.entry(router).or_insert_with(|| {
                routers.push(router);
                (routers.len() - 1) as u32
            });
            attach.push((idx, access_lat));
        }
        let r = routers.len();
        let mut data = vec![(SimDuration::ZERO, u64::MAX, 0.0, 0u32); r * r];
        for (i, &ra) in routers.iter().enumerate() {
            let from_ra = self.shortest_from(ra);
            for (j, &rb) in routers.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (lat, bw, ls, hops) = from_ra[rb]
                    .unwrap_or_else(|| panic!("router core is disconnected: no path {ra} -> {rb}"));
                data[i * r + j] = (lat, bw, 1.0 - ls.exp(), hops);
            }
        }
        Topology {
            host_count,
            access: self.access,
            paths: PathStore::Implicit {
                core: CoreModel::Matrix { routers: r, data },
                attach,
                extra_latency: SimDuration::ZERO,
                extra_loss: 0.0,
                overrides: HashMap::new(),
            },
            domain: self.domain,
        }
    }
}

impl Topology {
    /// Number of end hosts.
    pub fn host_count(&self) -> usize {
        self.host_count
    }

    /// All host ids in index order.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.host_count as u32).map(NodeId)
    }

    /// End-to-end properties of the route from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn path(&self, a: NodeId, b: NodeId) -> PathProps {
        assert!(
            a.index() < self.host_count && b.index() < self.host_count,
            "host out of range"
        );
        match &self.paths {
            PathStore::Dense(m) => m[a.index() * self.host_count + b.index()],
            PathStore::Implicit {
                core,
                attach,
                extra_latency,
                extra_loss,
                overrides,
            } => {
                let mut p = if a == b {
                    PathProps::loopback()
                } else {
                    let (ra, la) = attach[a.index()];
                    let (rb, lb) = attach[b.index()];
                    let (core_lat, core_bw, core_loss, core_hops) = core.route(ra, rb);
                    PathProps {
                        latency: la + core_lat + lb,
                        bandwidth_bps: core_bw,
                        loss: core_loss,
                        hops: core_hops + 2,
                    }
                };
                p.latency += *extra_latency;
                let mut loss_delta = *extra_loss;
                if !overrides.is_empty() {
                    if let Some(d) = overrides.get(&pair_key(a, b)) {
                        p.latency += d.latency;
                        loss_delta += d.loss;
                    }
                }
                if loss_delta != 0.0 {
                    p.loss = (p.loss + loss_delta).clamp(0.0, 0.95);
                }
                p
            }
        }
    }

    /// The host's access link capacities.
    pub fn access(&self, n: NodeId) -> AccessLink {
        self.access[n.index()]
    }

    /// Overrides a host's access link (e.g. to model a slow uplink cohort).
    pub fn set_access(&mut self, n: NodeId, access: AccessLink) {
        self.access[n.index()] = access;
    }

    /// The domain (ISP / stub) label assigned by the generator, 0 if none.
    pub fn domain(&self, n: NodeId) -> u32 {
        self.domain[n.index()]
    }

    /// Adds extra one-way latency between two hosts (both directions), e.g.
    /// to degrade a specific pair mid-experiment.
    pub fn add_path_latency(&mut self, a: NodeId, b: NodeId, extra: SimDuration) {
        let n = self.host_count;
        match &mut self.paths {
            PathStore::Dense(m) => {
                m[a.index() * n + b.index()].latency += extra;
                m[b.index() * n + a.index()].latency += extra;
            }
            PathStore::Implicit { overrides, .. } => {
                overrides.entry(pair_key(a, b)).or_default().latency += extra;
            }
        }
    }

    /// Adds `delta` to the loss probability of the path between two hosts
    /// (both directions), clamped to `[0, 0.95]`. Negative deltas heal.
    /// Fault schedules use this for message-loss regimes.
    pub fn add_path_loss(&mut self, a: NodeId, b: NodeId, delta: f64) {
        let n = self.host_count;
        match &mut self.paths {
            PathStore::Dense(m) => {
                for idx in [a.index() * n + b.index(), b.index() * n + a.index()] {
                    let p = &mut m[idx];
                    p.loss = (p.loss + delta).clamp(0.0, 0.95);
                }
            }
            PathStore::Implicit { overrides, .. } => {
                overrides.entry(pair_key(a, b)).or_default().loss += delta;
            }
        }
    }

    /// Adds `delta` loss probability to every host-to-host path (clamped to
    /// `[0, 0.95]`); negative deltas heal. A whole-network loss regime.
    pub fn add_loss_all(&mut self, delta: f64) {
        match &mut self.paths {
            PathStore::Dense(m) => {
                for p in m {
                    p.loss = (p.loss + delta).clamp(0.0, 0.95);
                }
            }
            PathStore::Implicit { extra_loss, .. } => *extra_loss += delta,
        }
    }

    /// Adds `extra` one-way latency to every host-to-host path. A
    /// whole-network latency storm; [`Topology::sub_latency_all`] with the
    /// same `extra` restores the original delays exactly.
    pub fn add_latency_all(&mut self, extra: SimDuration) {
        match &mut self.paths {
            PathStore::Dense(m) => {
                for p in m {
                    p.latency += extra;
                }
            }
            PathStore::Implicit { extra_latency, .. } => *extra_latency += extra,
        }
    }

    /// Removes `extra` one-way latency from every host-to-host path,
    /// saturating at zero. The exact inverse of
    /// [`Topology::add_latency_all`] when latencies stayed above `extra`.
    pub fn sub_latency_all(&mut self, extra: SimDuration) {
        match &mut self.paths {
            PathStore::Dense(m) => {
                for p in m {
                    p.latency = p.latency.saturating_sub(extra);
                }
            }
            PathStore::Implicit { extra_latency, .. } => {
                *extra_latency = extra_latency.saturating_sub(extra);
            }
        }
    }

    /// Whether paths are stored implicitly (router-level core model) rather
    /// than as the dense host-level matrix. Large generated topologies are
    /// implicit; everything at or below [`DENSE_HOST_LIMIT`] hosts is dense.
    pub fn is_implicit(&self) -> bool {
        matches!(self.paths, PathStore::Implicit { .. })
    }

    /// A star: every host hangs off one router by an identical spoke.
    ///
    /// Useful as the simplest non-trivial topology in tests.
    pub fn star(hosts: usize, spoke_latency: SimDuration, spoke_bps: u64) -> Topology {
        let mut g = CoreGraph::new();
        let hub = g.add_router();
        for _ in 0..hosts {
            let r = g.add_router();
            g.link(hub, r, LinkParams::new(spoke_latency / 2, spoke_bps));
            g.add_host(r, spoke_latency / 2, AccessLink::symmetric(spoke_bps), 0);
        }
        g.build()
    }

    /// A dumbbell: two clusters joined by one bottleneck link.
    ///
    /// Hosts `0..left` are in domain 0, the rest in domain 1. All cross-
    /// cluster traffic shares `bottleneck_bps`.
    pub fn dumbbell(
        left: usize,
        right: usize,
        access_latency: SimDuration,
        access_bps: u64,
        bottleneck_latency: SimDuration,
        bottleneck_bps: u64,
    ) -> Topology {
        let mut g = CoreGraph::new();
        let rl = g.add_router();
        let rr = g.add_router();
        g.link(rl, rr, LinkParams::new(bottleneck_latency, bottleneck_bps));
        for _ in 0..left {
            g.add_host(rl, access_latency, AccessLink::symmetric(access_bps), 0);
        }
        for _ in 0..right {
            g.add_host(rr, access_latency, AccessLink::symmetric(access_bps), 1);
        }
        g.build()
    }

    /// A random geometric (Waxman-style) topology.
    ///
    /// Routers are placed uniformly on the unit square; each pair is linked
    /// with probability `alpha * exp(-d / (beta * sqrt(2)))`, and latency
    /// proportional to distance (`unit_latency` per unit length). A spanning
    /// chain is added first so the graph is always connected. One host
    /// attaches per router.
    pub fn random_waxman(
        routers: usize,
        alpha: f64,
        beta: f64,
        unit_latency: SimDuration,
        core_bps: u64,
        access: AccessLink,
        rng: &mut SimRng,
    ) -> Topology {
        assert!(routers >= 1, "need at least one router");
        let mut g = CoreGraph::new();
        let pos: Vec<(f64, f64)> = (0..routers)
            .map(|_| (rng.gen_f64(), rng.gen_f64()))
            .collect();
        for _ in 0..routers {
            g.add_router();
        }
        let dist = |i: usize, j: usize| {
            let (dx, dy) = (pos[i].0 - pos[j].0, pos[i].1 - pos[j].1);
            (dx * dx + dy * dy).sqrt()
        };
        // Spanning chain for guaranteed connectivity.
        for i in 1..routers {
            let d = dist(i - 1, i).max(0.01);
            g.link(i - 1, i, LinkParams::new(unit_latency.mul_f64(d), core_bps));
        }
        let scale = beta * std::f64::consts::SQRT_2;
        for i in 0..routers {
            for j in (i + 2)..routers {
                let d = dist(i, j);
                if rng.gen_bool(alpha * (-d / scale).exp()) {
                    g.link(
                        i,
                        j,
                        LinkParams::new(unit_latency.mul_f64(d.max(0.01)), core_bps),
                    );
                }
            }
        }
        for r in 0..routers {
            g.add_host(r, SimDuration::from_micros(500), access, r as u32);
        }
        g.build()
    }

    /// A transit-stub topology, the standard "Internet-like" shape
    /// (GT-ITM style): a backbone ring of transit routers with chords, stub
    /// routers hanging off each transit router, hosts hanging off each stub.
    ///
    /// Hosts carry their stub index as [`Topology::domain`].
    pub fn transit_stub(cfg: &TransitStubConfig, rng: &mut SimRng) -> Topology {
        assert!(cfg.transit_routers >= 1, "need at least one transit router");
        let mut g = CoreGraph::new();
        let lat_in = |rng: &mut SimRng, (lo, hi): (SimDuration, SimDuration)| {
            if hi <= lo {
                lo
            } else {
                SimDuration::from_nanos(rng.gen_range(lo.as_nanos(), hi.as_nanos()))
            }
        };
        let transit: Vec<usize> = (0..cfg.transit_routers).map(|_| g.add_router()).collect();
        // Backbone ring…
        for i in 0..transit.len() {
            let j = (i + 1) % transit.len();
            if transit.len() > 1 && (i < j || transit.len() > 2) {
                g.link(
                    transit[i],
                    transit[j],
                    LinkParams::new(lat_in(rng, cfg.transit_latency), cfg.transit_bps)
                        .with_loss(cfg.transit_loss),
                );
            }
        }
        // …plus chords for path diversity on larger backbones.
        for i in 0..transit.len() {
            for j in (i + 2)..transit.len() {
                if (i, j) != (0, transit.len() - 1) && rng.gen_bool(0.3) {
                    g.link(
                        transit[i],
                        transit[j],
                        LinkParams::new(lat_in(rng, cfg.transit_latency), cfg.transit_bps)
                            .with_loss(cfg.transit_loss),
                    );
                }
            }
        }
        let mut stub_id = 0u32;
        for &t in &transit {
            for _ in 0..cfg.stubs_per_transit {
                let s = g.add_router();
                g.link(
                    t,
                    s,
                    LinkParams::new(lat_in(rng, cfg.stub_latency), cfg.stub_bps),
                );
                for _ in 0..cfg.hosts_per_stub {
                    g.add_host(s, lat_in(rng, cfg.access_latency), cfg.access, stub_id);
                }
                stub_id += 1;
            }
        }
        g.build()
    }

    /// A transit-stub topology with exactly `hosts` end hosts: the router
    /// fabric comes from `cfg` (its `hosts_per_stub` is ignored) and hosts
    /// are dealt round-robin across the stub routers, so stub populations
    /// differ by at most one. This is the campaign entry point for sized
    /// fleets — `cfg.host_count()` rounding never inflates the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn transit_stub_exact(cfg: &TransitStubConfig, hosts: usize, rng: &mut SimRng) -> Topology {
        assert!(hosts > 0, "need at least one host");
        assert!(cfg.transit_routers >= 1, "need at least one transit router");
        let mut g = CoreGraph::new();
        let lat_in = |rng: &mut SimRng, (lo, hi): (SimDuration, SimDuration)| {
            if hi <= lo {
                lo
            } else {
                SimDuration::from_nanos(rng.gen_range(lo.as_nanos(), hi.as_nanos()))
            }
        };
        let transit: Vec<usize> = (0..cfg.transit_routers).map(|_| g.add_router()).collect();
        for i in 0..transit.len() {
            let j = (i + 1) % transit.len();
            if transit.len() > 1 && (i < j || transit.len() > 2) {
                g.link(
                    transit[i],
                    transit[j],
                    LinkParams::new(lat_in(rng, cfg.transit_latency), cfg.transit_bps)
                        .with_loss(cfg.transit_loss),
                );
            }
        }
        for i in 0..transit.len() {
            for j in (i + 2)..transit.len() {
                if (i, j) != (0, transit.len() - 1) && rng.gen_bool(0.3) {
                    g.link(
                        transit[i],
                        transit[j],
                        LinkParams::new(lat_in(rng, cfg.transit_latency), cfg.transit_bps)
                            .with_loss(cfg.transit_loss),
                    );
                }
            }
        }
        let mut stubs: Vec<usize> = Vec::new();
        for &t in &transit {
            for _ in 0..cfg.stubs_per_transit {
                let s = g.add_router();
                g.link(
                    t,
                    s,
                    LinkParams::new(lat_in(rng, cfg.stub_latency), cfg.stub_bps),
                );
                stubs.push(s);
            }
        }
        // Deal hosts across stubs: sizes differ by at most one, and host
        // ids stay grouped by stub (host order is stub 0's share, then
        // stub 1's, …) so domain labels remain contiguous.
        let base = hosts / stubs.len();
        let extra = hosts % stubs.len();
        for (stub_id, &s) in stubs.iter().enumerate() {
            let share = base + usize::from(stub_id < extra);
            for _ in 0..share {
                g.add_host(
                    s,
                    lat_in(rng, cfg.access_latency),
                    cfg.access,
                    stub_id as u32,
                );
            }
        }
        g.build()
    }

    /// A k-ary fat-tree with closed-form paths (always the implicit path
    /// store). Hosts fill edge switches in pod order; each host's
    /// [`Topology::domain`] is its pod index. Latency tiers are uniform by
    /// construction, which is what lets paths be computed in O(1) without
    /// a router matrix; per-host access latency still varies by seed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or zero, `hosts` is zero, or `hosts` exceeds
    /// the `k³/4` capacity.
    pub fn fat_tree(cfg: &FatTreeConfig, rng: &mut SimRng) -> Topology {
        assert!(
            cfg.k >= 2 && cfg.k.is_multiple_of(2),
            "fat-tree arity must be even"
        );
        assert!(cfg.hosts > 0, "need at least one host");
        assert!(
            cfg.hosts <= cfg.capacity(),
            "{} hosts exceed k={} capacity {}",
            cfg.hosts,
            cfg.k,
            cfg.capacity()
        );
        let edges_per_pod = cfg.k / 2;
        let hosts_per_edge = cfg.k / 2;
        let lat_in = |rng: &mut SimRng, (lo, hi): (SimDuration, SimDuration)| {
            if hi <= lo {
                lo
            } else {
                SimDuration::from_nanos(rng.gen_range(lo.as_nanos(), hi.as_nanos()))
            }
        };
        let mut attach = Vec::with_capacity(cfg.hosts);
        let mut access = Vec::with_capacity(cfg.hosts);
        let mut domain = Vec::with_capacity(cfg.hosts);
        for h in 0..cfg.hosts {
            let edge = (h / hosts_per_edge) as u32;
            let pod = edge / edges_per_pod as u32;
            attach.push((edge, lat_in(rng, cfg.access_latency)));
            access.push(cfg.access);
            domain.push(pod);
        }
        Topology {
            host_count: cfg.hosts,
            access,
            paths: PathStore::Implicit {
                core: CoreModel::FatTree {
                    edges_per_pod,
                    agg_latency: cfg.agg_latency,
                    core_latency: cfg.core_latency,
                    edge_bps: cfg.edge_bps,
                    core_bps: cfg.core_bps,
                },
                attach,
                extra_latency: SimDuration::ZERO,
                extra_loss: 0.0,
                overrides: HashMap::new(),
            },
            domain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_paths_are_symmetric_spokes() {
        let topo = Topology::star(5, SimDuration::from_millis(10), 1_000_000);
        assert_eq!(topo.host_count(), 5);
        for a in topo.hosts() {
            for b in topo.hosts() {
                if a == b {
                    continue;
                }
                let p = topo.path(a, b);
                assert_eq!(p.latency, SimDuration::from_millis(20));
                assert_eq!(p.bandwidth_bps, 1_000_000);
                assert_eq!(topo.path(b, a).latency, p.latency);
            }
        }
    }

    #[test]
    fn loopback_is_fast() {
        let topo = Topology::star(2, SimDuration::from_millis(50), 1_000_000);
        let p = topo.path(NodeId(0), NodeId(0));
        assert!(p.latency < SimDuration::from_millis(1));
        assert_eq!(p.hops, 0);
    }

    #[test]
    fn dumbbell_bottleneck_limits_cross_traffic_only() {
        let topo = Topology::dumbbell(
            3,
            3,
            SimDuration::from_millis(1),
            100_000_000,
            SimDuration::from_millis(40),
            5_000_000,
        );
        let cross = topo.path(NodeId(0), NodeId(3));
        assert_eq!(cross.bandwidth_bps, 5_000_000);
        assert_eq!(cross.latency, SimDuration::from_millis(42));
        let local = topo.path(NodeId(0), NodeId(1));
        assert_eq!(local.bandwidth_bps, u64::MAX);
        assert_eq!(local.latency, SimDuration::from_millis(2));
        assert_eq!(topo.domain(NodeId(0)), 0);
        assert_eq!(topo.domain(NodeId(4)), 1);
    }

    #[test]
    fn transit_stub_is_connected_and_wan_scale() {
        let mut rng = SimRng::seed_from(1);
        let cfg = TransitStubConfig::default();
        let topo = Topology::transit_stub(&cfg, &mut rng);
        assert_eq!(topo.host_count(), cfg.host_count());
        let mut max_lat = SimDuration::ZERO;
        for a in topo.hosts() {
            for b in topo.hosts() {
                if a == b {
                    continue;
                }
                let p = topo.path(a, b);
                assert!(p.latency > SimDuration::ZERO);
                assert!(p.bandwidth_bps > 0);
                max_lat = max_lat.max(p.latency);
            }
        }
        // Cross-backbone paths should look like WAN paths.
        assert!(
            max_lat >= SimDuration::from_millis(20),
            "max latency {max_lat} too small"
        );
        assert!(
            max_lat <= SimDuration::from_millis(500),
            "max latency {max_lat} too large"
        );
    }

    #[test]
    fn transit_stub_same_stub_is_cheaper_than_cross_backbone() {
        let mut rng = SimRng::seed_from(7);
        let cfg = TransitStubConfig::default();
        let topo = Topology::transit_stub(&cfg, &mut rng);
        // Hosts 0 and 1 share stub 0; host with a different transit domain is far.
        let near = topo.path(NodeId(0), NodeId(1)).latency;
        let far_host = topo
            .hosts()
            .find(|&h| topo.domain(h) >= cfg.stubs_per_transit as u32 * 2)
            .expect("host in a far stub");
        let far = topo.path(NodeId(0), far_host).latency;
        assert!(near < far, "near {near} should undercut far {far}");
    }

    #[test]
    fn transit_stub_generation_is_deterministic() {
        let cfg = TransitStubConfig::default();
        let t1 = Topology::transit_stub(&cfg, &mut SimRng::seed_from(5));
        let t2 = Topology::transit_stub(&cfg, &mut SimRng::seed_from(5));
        for a in t1.hosts() {
            for b in t1.hosts() {
                assert_eq!(t1.path(a, b), t2.path(a, b));
            }
        }
    }

    #[test]
    fn waxman_is_connected() {
        let mut rng = SimRng::seed_from(3);
        let topo = Topology::random_waxman(
            12,
            0.6,
            0.4,
            SimDuration::from_millis(30),
            1_000_000_000,
            AccessLink::default(),
            &mut rng,
        );
        for a in topo.hosts() {
            for b in topo.hosts() {
                if a != b {
                    assert!(topo.path(a, b).latency > SimDuration::ZERO);
                }
            }
        }
    }

    #[test]
    fn with_at_least_hosts_grows_config() {
        let cfg = TransitStubConfig::default().with_at_least_hosts(31);
        assert!(cfg.host_count() >= 31);
    }

    #[test]
    fn access_override_applies() {
        let mut topo = Topology::star(3, SimDuration::from_millis(5), 1_000_000);
        topo.set_access(
            NodeId(1),
            AccessLink {
                up_bps: 64_000,
                down_bps: 1_000_000,
            },
        );
        assert_eq!(topo.access(NodeId(1)).up_bps, 64_000);
        assert_eq!(topo.access(NodeId(0)).up_bps, 1_000_000);
    }

    #[test]
    fn add_path_latency_is_bidirectional() {
        let mut topo = Topology::star(3, SimDuration::from_millis(5), 1_000_000);
        let before = topo.path(NodeId(0), NodeId(1)).latency;
        topo.add_path_latency(NodeId(0), NodeId(1), SimDuration::from_millis(100));
        assert_eq!(
            topo.path(NodeId(0), NodeId(1)).latency,
            before + SimDuration::from_millis(100)
        );
        assert_eq!(
            topo.path(NodeId(1), NodeId(0)).latency,
            before + SimDuration::from_millis(100)
        );
        assert_eq!(topo.path(NodeId(0), NodeId(2)).latency, before);
    }

    #[test]
    fn latency_storm_applies_and_restores_exactly() {
        let mut topo = Topology::star(4, SimDuration::from_millis(5), 1_000_000);
        let before: Vec<SimDuration> = topo
            .hosts()
            .flat_map(|a| topo.hosts().map(move |b| (a, b)))
            .map(|(a, b)| topo.path(a, b).latency)
            .collect();
        let spike = SimDuration::from_millis(250);
        topo.add_latency_all(spike);
        assert_eq!(
            topo.path(NodeId(0), NodeId(1)).latency,
            before[1] + spike,
            "spike not applied"
        );
        topo.sub_latency_all(spike);
        let after: Vec<SimDuration> = topo
            .hosts()
            .flat_map(|a| topo.hosts().map(move |b| (a, b)))
            .map(|(a, b)| topo.path(a, b).latency)
            .collect();
        assert_eq!(before, after, "latency storm did not restore exactly");
    }

    #[test]
    fn transit_stub_exact_hits_the_requested_size() {
        for n in [1usize, 7, 100, 1000, 2500] {
            let cfg = TransitStubConfig::balanced_for(n);
            let topo = Topology::transit_stub_exact(&cfg, n, &mut SimRng::seed_from(3));
            assert_eq!(topo.host_count(), n, "asked for {n}");
        }
    }

    #[test]
    fn large_build_switches_to_implicit_store_and_stays_connected() {
        let n = 2000;
        let cfg = TransitStubConfig::balanced_for(n);
        let topo = Topology::transit_stub_exact(&cfg, n, &mut SimRng::seed_from(11));
        assert!(topo.is_implicit(), "2000 hosts must use the implicit store");
        // Spot-check connectivity and sanity across the id range.
        for (a, b) in [(0u32, 1999u32), (0, 1), (777, 1234), (1999, 0)] {
            let p = topo.path(NodeId(a), NodeId(b));
            assert!(p.latency > SimDuration::ZERO, "{a}->{b}");
            assert!(p.bandwidth_bps > 0);
            assert!(p.hops >= 2);
        }
        let small =
            Topology::transit_stub(&TransitStubConfig::default(), &mut SimRng::seed_from(1));
        assert!(!small.is_implicit(), "small fleets keep the dense matrix");
    }

    #[test]
    fn implicit_mutations_match_dense_semantics() {
        let n = 1500;
        let cfg = TransitStubConfig::balanced_for(n);
        let mut topo = Topology::transit_stub_exact(&cfg, n, &mut SimRng::seed_from(5));
        assert!(topo.is_implicit());
        let (a, b, c) = (NodeId(3), NodeId(1200), NodeId(77));
        let before = topo.path(a, b);
        let before_c = topo.path(a, c);

        // Pair latency: bidirectional, others untouched.
        topo.add_path_latency(a, b, SimDuration::from_millis(100));
        assert_eq!(
            topo.path(a, b).latency,
            before.latency + SimDuration::from_millis(100)
        );
        assert_eq!(
            topo.path(b, a).latency,
            topo.path(a, b).latency,
            "override must be symmetric"
        );
        assert_eq!(topo.path(a, c).latency, before_c.latency);

        // Global latency storm applies and restores exactly.
        topo.add_latency_all(SimDuration::from_millis(250));
        assert_eq!(
            topo.path(a, c).latency,
            before_c.latency + SimDuration::from_millis(250)
        );
        topo.sub_latency_all(SimDuration::from_millis(250));
        assert_eq!(topo.path(a, c).latency, before_c.latency);

        // Loss regime: clamped at 0.95, heals back.
        topo.add_loss_all(0.5);
        assert!(topo.path(a, c).loss >= 0.5);
        topo.add_loss_all(0.9);
        assert!((topo.path(a, c).loss - 0.95).abs() < 1e-12, "clamped");
        topo.add_loss_all(-1.4);
        assert!(
            (topo.path(a, c).loss - before_c.loss).abs() < 1e-9,
            "healed"
        );

        // Pair loss override.
        topo.add_path_loss(a, b, 0.3);
        assert!(topo.path(b, a).loss >= 0.3);
        assert!((topo.path(a, c).loss - before_c.loss).abs() < 1e-9);
    }

    #[test]
    fn fat_tree_tiers_order_correctly() {
        // k=4: 2 hosts per edge switch, 2 edge switches per pod, 16 hosts.
        let cfg = FatTreeConfig::default();
        let topo = Topology::fat_tree(&cfg, &mut SimRng::seed_from(2));
        assert_eq!(topo.host_count(), 16);
        assert!(topo.is_implicit());
        // Hosts 0,1 share an edge switch; 0,2 share a pod; 0,8 cross pods.
        let same_edge = topo.path(NodeId(0), NodeId(1));
        let same_pod = topo.path(NodeId(0), NodeId(2));
        let cross_pod = topo.path(NodeId(0), NodeId(8));
        assert!(same_edge.latency < same_pod.latency);
        assert!(same_pod.latency < cross_pod.latency);
        assert_eq!(same_edge.hops, 2);
        assert_eq!(same_pod.hops, 4);
        assert_eq!(cross_pod.hops, 6);
        assert_eq!(topo.domain(NodeId(0)), 0);
        assert_eq!(topo.domain(NodeId(8)), 2);
        // Symmetry.
        assert_eq!(topo.path(NodeId(8), NodeId(0)), cross_pod);
    }

    #[test]
    fn fat_tree_for_hosts_is_size_exact_and_deterministic() {
        for n in [1usize, 16, 100, 1000] {
            let cfg = FatTreeConfig::for_hosts(n);
            assert!(cfg.capacity() >= n);
            let t1 = Topology::fat_tree(&cfg, &mut SimRng::seed_from(9));
            let t2 = Topology::fat_tree(&cfg, &mut SimRng::seed_from(9));
            assert_eq!(t1.host_count(), n);
            let probe = [(0u32, (n - 1) as u32), (0, (n / 2) as u32)];
            for (a, b) in probe {
                assert_eq!(t1.path(NodeId(a), NodeId(b)), t2.path(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn implicit_store_agrees_with_dense_on_the_same_graph() {
        // Build one graph both ways (dense via small host count, implicit by
        // re-running the same construction above the limit is impossible —
        // instead compare a sized build against per-pair recomputation).
        // The practical pin: same config + seed, host count just below and
        // just above DENSE_HOST_LIMIT produce consistent *shapes* (WAN-scale
        // latencies, positive bandwidth, hop counts ≥ 2).
        let cfg = TransitStubConfig::balanced_for(1100);
        let topo = Topology::transit_stub_exact(&cfg, 1100, &mut SimRng::seed_from(13));
        assert!(topo.is_implicit());
        let mut max_lat = SimDuration::ZERO;
        for a in [0u32, 17, 540, 1099] {
            for b in [3u32, 800, 1050] {
                if a == b {
                    continue;
                }
                let p = topo.path(NodeId(a), NodeId(b));
                assert!(p.latency > SimDuration::ZERO);
                max_lat = max_lat.max(p.latency);
            }
        }
        assert!(
            max_lat >= SimDuration::from_millis(20),
            "WAN scale expected"
        );
    }

    #[test]
    fn loss_composes_along_path() {
        let mut g = CoreGraph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.link(
            a,
            b,
            LinkParams::new(SimDuration::from_millis(1), 1_000_000).with_loss(0.1),
        );
        g.link(
            b,
            c,
            LinkParams::new(SimDuration::from_millis(1), 1_000_000).with_loss(0.1),
        );
        g.add_host(a, SimDuration::ZERO, AccessLink::default(), 0);
        g.add_host(c, SimDuration::ZERO, AccessLink::default(), 0);
        let topo = g.build();
        let p = topo.path(NodeId(0), NodeId(1));
        assert!((p.loss - 0.19).abs() < 1e-9, "composed loss {}", p.loss);
    }
}
