//! # cb-simnet — deterministic discrete-event network simulator
//!
//! The deployment substrate for the CrystalBall-style explicit-choice
//! runtime. It plays the role ModelNet played in the paper's case study:
//! an Internet-like network with controllable latency, bandwidth, loss,
//! partitions, and node failures — except fully deterministic, so every
//! experiment is reproducible from a seed.
//!
//! The crate is organized as:
//!
//! * [`time`] — virtual instants and durations.
//! * [`rng`] — self-contained xoshiro256\*\* randomness, forkable per node.
//! * [`topology`] — router graphs and the end-to-end path-property matrix;
//!   generators for star, dumbbell, Waxman, and transit-stub shapes.
//! * [`sim`] — the engine: [`sim::Actor`]s, the event loop, the TCP-like
//!   and datagram transports, crashes/restarts/partitions.
//! * [`metrics`] — counters and log-bucketed histograms.
//! * [`trace`] — bounded event traces with determinism fingerprints.
//!
//! # Quick example
//!
//! ```
//! use cb_simnet::prelude::*;
//!
//! struct Hello;
//! impl Actor for Hello {
//!     type Msg = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
//!         let next = NodeId((ctx.id().0 + 1) % ctx.host_count() as u32);
//!         ctx.send(next, "hi");
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, &'static str>, _from: NodeId, _m: &'static str) {}
//! }
//!
//! let topo = Topology::star(8, SimDuration::from_millis(5), 10_000_000);
//! let mut sim = Sim::new(topo, 1, |_| Hello);
//! sim.start_all();
//! sim.run_until_quiescent(SimTime::from_secs(5));
//! assert_eq!(sim.summary().msgs_delivered, 8);
//! ```

pub mod metrics;
pub mod rng;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod wheel;

/// Everything most users need, in one import.
pub mod prelude {
    pub use crate::metrics::{Histogram, HistogramExt, MetricsSummary, NodeMetrics};
    pub use crate::rng::SimRng;
    pub use crate::sim::{Actor, Ctx, SchedulerKind, Sim, TimerId, DEFAULT_MSG_BYTES};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{
        AccessLink, FatTreeConfig, LinkParams, NodeId, PathProps, Topology, TransitStubConfig,
    };
    pub use crate::trace::{Trace, TraceEvent, TraceRecord};
    pub use cb_trace::{FlightRecorder, Span, SpanId, SpanKind};
}
