//! Lightweight metrics: counters, gauges, and latency histograms.
//!
//! The primitive types ([`Counter`], [`Gauge`], [`Histogram`]) started
//! life in this module and now live in the workspace-wide `cb-telemetry`
//! crate; they are re-exported here so existing `cb_simnet::metrics` users
//! keep compiling unchanged. This module keeps the simulator-specific
//! parts: per-node traffic metrics, their aggregate, the
//! [`HistogramExt::record_duration`] convenience for [`SimDuration`]
//! samples, and the bridge into a telemetry [`Registry`] under the
//! standard `net.*` keys.

use crate::time::SimDuration;
use cb_telemetry::{keys, Registry};
pub use cb_telemetry::{Counter, Gauge, Histogram};

/// Simulator-side extension for recording [`SimDuration`] samples.
///
/// (`Histogram` lives in `cb-telemetry`, below this crate, so it cannot
/// know about sim time; the extension trait restores the old inherent
/// method.)
pub trait HistogramExt {
    /// Records a duration in microseconds.
    fn record_duration(&mut self, d: SimDuration);
}

impl HistogramExt for Histogram {
    fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }
}

/// Per-node traffic metrics maintained by the simulator.
#[derive(Clone, Debug, Default)]
pub struct NodeMetrics {
    /// Messages handed to the transport.
    pub msgs_sent: Counter,
    /// Messages delivered to the actor.
    pub msgs_delivered: Counter,
    /// Messages dropped (loss after retries, broken connection, partition,
    /// or dead endpoint).
    pub msgs_dropped: Counter,
    /// Payload bytes handed to the transport.
    pub bytes_sent: Counter,
    /// Payload bytes delivered to the actor.
    pub bytes_received: Counter,
    /// Timers fired.
    pub timers_fired: Counter,
    /// Connections that completed the handshake and became established.
    pub conns_established: Counter,
    /// Established connections torn down by faults or endpoint death.
    pub conns_broken: Counter,
    /// One-way delivery latency of received messages, microseconds.
    pub delivery_latency: Histogram,
}

/// Aggregate of all nodes' metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsSummary {
    /// Total messages sent across all nodes.
    pub msgs_sent: u64,
    /// Total messages delivered across all nodes.
    pub msgs_delivered: u64,
    /// Total messages dropped across all nodes.
    pub msgs_dropped: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Total connections established across all nodes (both endpoints count).
    pub conns_established: u64,
    /// Total established connections broken (both endpoints count).
    pub conns_broken: u64,
    /// Merged delivery-latency histogram, microseconds.
    pub delivery_latency: Histogram,
}

impl MetricsSummary {
    /// Builds a summary over per-node metrics.
    pub fn aggregate<'a>(nodes: impl Iterator<Item = &'a NodeMetrics>) -> Self {
        let mut s = MetricsSummary::default();
        for m in nodes {
            s.msgs_sent += m.msgs_sent.get();
            s.msgs_delivered += m.msgs_delivered.get();
            s.msgs_dropped += m.msgs_dropped.get();
            s.bytes_sent += m.bytes_sent.get();
            s.conns_established += m.conns_established.get();
            s.conns_broken += m.conns_broken.get();
            s.delivery_latency.merge(&m.delivery_latency);
        }
        s
    }

    /// Exports the summary into a telemetry registry under the standard
    /// `net.*` keys. Idempotent (absolute sets / whole-histogram merge into
    /// a pre-registered empty slot), so exporters can run defensively.
    pub fn record_into(&self, reg: &mut Registry) {
        reg.set_counter(keys::NET_MSGS_SENT, self.msgs_sent);
        reg.set_counter(keys::NET_MSGS_DELIVERED, self.msgs_delivered);
        reg.set_counter(keys::NET_MSGS_DROPPED, self.msgs_dropped);
        reg.set_counter(keys::NET_BYTES_SENT, self.bytes_sent);
        reg.set_counter(keys::NET_CONNS_ESTABLISHED, self.conns_established);
        reg.set_counter(keys::NET_CONNS_BROKEN, self.conns_broken);
        reg.set_hist(keys::NET_DELIVERY_LATENCY_US, &self.delivery_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_recording_uses_micros() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(3));
        assert_eq!(h.max(), 3000);
    }

    #[test]
    fn summary_aggregates_nodes() {
        let mut m1 = NodeMetrics::default();
        let mut m2 = NodeMetrics::default();
        m1.msgs_sent.add(3);
        m2.msgs_sent.add(4);
        m1.conns_established.inc();
        m2.conns_broken.inc();
        m1.delivery_latency.record(10);
        m2.delivery_latency.record(20);
        let s = MetricsSummary::aggregate([&m1, &m2].into_iter());
        assert_eq!(s.msgs_sent, 7);
        assert_eq!(s.conns_established, 1);
        assert_eq!(s.conns_broken, 1);
        assert_eq!(s.delivery_latency.count(), 2);
    }

    #[test]
    fn summary_exports_standard_net_keys() {
        let mut m = NodeMetrics::default();
        m.msgs_sent.add(5);
        m.msgs_delivered.add(4);
        m.msgs_dropped.add(1);
        m.bytes_sent.add(640);
        m.delivery_latency.record(250);
        let s = MetricsSummary::aggregate([&m].into_iter());
        let mut reg = Registry::new();
        s.record_into(&mut reg);
        assert_eq!(reg.counter(keys::NET_MSGS_SENT), 5);
        assert_eq!(reg.counter(keys::NET_MSGS_DELIVERED), 4);
        assert_eq!(reg.counter(keys::NET_MSGS_DROPPED), 1);
        assert_eq!(reg.counter(keys::NET_BYTES_SENT), 640);
        assert_eq!(reg.hist(keys::NET_DELIVERY_LATENCY_US).unwrap().count(), 1);
        // Running the exporter again must not double-count.
        s.record_into(&mut reg);
        assert_eq!(reg.counter(keys::NET_MSGS_SENT), 5);
        assert_eq!(reg.hist(keys::NET_DELIVERY_LATENCY_US).unwrap().count(), 1);
    }
}
