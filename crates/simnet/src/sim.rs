//! The discrete-event simulation engine.
//!
//! A [`Sim`] hosts one [`Actor`] per end host of a [`Topology`] and drives
//! them with a single virtual clock. Everything an actor can observe — time,
//! message arrivals, timer firings, randomness — flows through the engine, so
//! a run is a pure function of `(topology, seed, actor code)`. The engine
//! prices every message with the topology's end-to-end path properties:
//! propagation latency, serialization through the sender's uplink and the
//! receiver's downlink, bottleneck bandwidth, and loss (which, for the
//! TCP-like reliable transport, turns into retransmission delay rather than
//! an actual drop).
//!
//! # Transport model
//!
//! * [`Ctx::send`] is **reliable and in-order** per (source, destination)
//!   pair, like one long-lived TCP connection: delivery times are floored by
//!   the previous delivery on the same flow, loss costs retransmission
//!   round-trips, and a first message pays a handshake RTT. Connections can
//!   be broken — by the application (execution steering does this), by a
//!   crash, or by exceeding the retry budget — which drops the in-flight
//!   messages of the pair and notifies both endpoints.
//! * [`Ctx::send_unreliable`] is fire-and-forget datagram delivery: lossy,
//!   unordered across flows (though still latency-ordered per path).
//!
//! # Failure model
//!
//! Nodes crash (lose all state) and restart (fresh actor from the factory,
//! same identity). Directed blackholes ([`Sim::block`]) model partitions.

use crate::metrics::{HistogramExt, MetricsSummary, NodeMetrics};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, PathProps, Topology};
use crate::trace::{Trace, TraceEvent};
use crate::wheel::EventWheel;
use cb_trace::{FlightRecorder, Span, SpanId, SpanKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Caps span names derived from message debug renderings so the per-node
/// flight recorders stay cheap even with large payload debug output.
const SPAN_NAME_MAX: usize = 48;

fn span_name(what: &str) -> String {
    if what.len() <= SPAN_NAME_MAX {
        return what.to_string();
    }
    let mut cut = SPAN_NAME_MAX;
    while !what.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &what[..cut])
}

fn compact(cause: Option<SpanId>) -> u64 {
    cause.map(|c| c.compact()).unwrap_or(0)
}

/// Identifies a pending timer; returned by [`Ctx::set_timer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// Maximum TCP-like retransmission attempts before the connection is
/// declared broken.
const MAX_RETRIES: u32 = 8;

/// Default payload size assumed for control messages, in bytes.
pub const DEFAULT_MSG_BYTES: u32 = 256;

/// Fixed per-message protocol overhead added to every payload, in bytes.
const HEADER_BYTES: u32 = 64;

/// A simulated process: the code that runs on one end host.
///
/// Implementations are plain state machines; all interaction with the
/// outside world goes through the [`Ctx`] handed to each callback.
pub trait Actor: 'static {
    /// The message type this system exchanges.
    type Msg: Clone + std::fmt::Debug + 'static;

    /// Called once when the node starts (or restarts after a crash).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, timer: TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }

    /// Called when the reliable connection to `peer` breaks (steering,
    /// crash, retry exhaustion, or an explicit [`Ctx::break_connection`]).
    fn on_conn_broken(&mut self, ctx: &mut Ctx<'_, Self::Msg>, peer: NodeId) {
        let _ = (ctx, peer);
    }
}

/// What travels on the event heap.
#[derive(Debug)]
enum Ev<M> {
    Start {
        node: NodeId,
    },
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
        bytes: u32,
        sent_at: SimTime,
        epoch: u64,
        /// Provenance span of the originating send (causal parent of the
        /// delivery). Rides the event so cross-node edges survive delays,
        /// stalls, and reordering.
        cause: Option<SpanId>,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        incarnation: u32,
        /// Provenance span of the event that armed the timer.
        cause: Option<SpanId>,
    },
    Crash {
        node: NodeId,
    },
    Restart {
        node: NodeId,
    },
    ConnBroken {
        node: NodeId,
        peer: NodeId,
        /// Provenance span of the event that broke the connection.
        cause: Option<SpanId>,
    },
}

impl<M> Ev<M> {
    /// The node an event is addressed to — the second component of the
    /// explicit dispatch order.
    fn target(&self) -> NodeId {
        match self {
            Ev::Start { node }
            | Ev::Timer { node, .. }
            | Ev::Crash { node }
            | Ev::Restart { node }
            | Ev::ConnBroken { node, .. } => *node,
            Ev::Deliver { to, .. } => *to,
        }
    }
}

struct HeapEntry<M> {
    at: SimTime,
    node: NodeId,
    seq: u64,
    ev: Ev<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.node == other.node && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on the explicit dispatch key (time, node, seq): earlier
        // first, lower target node on time ties, FIFO within a node. The
        // key is specified here — not inherited from heap internals — so
        // both schedulers implement the identical total order.
        Reverse((self.at, self.node, self.seq)).cmp(&Reverse((other.at, other.node, other.seq)))
    }
}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Which event-queue implementation drives the simulation.
///
/// The hierarchical wheel is the default; the binary heap is kept as the
/// executable reference (mirroring the multipass/fused split in the decision
/// hot path): the differential tests run every schedule through both and
/// require identical dispatch order, fingerprints, and telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel with a far-future overflow heap (O(1)
    /// amortized; the 10k-node default).
    #[default]
    Wheel,
    /// Global `BinaryHeap` reference implementation (O(log n)).
    Heap,
}

/// The pending-event queue: both scheduler implementations behind one
/// interface, each dispatching in the same explicit (time, node, seq) order.
enum EventQueue<M> {
    Heap(BinaryHeap<HeapEntry<M>>),
    Wheel(EventWheel<Ev<M>>),
}

impl<M> EventQueue<M> {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            SchedulerKind::Wheel => EventQueue::Wheel(EventWheel::new()),
        }
    }

    fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Heap(_) => SchedulerKind::Heap,
            EventQueue::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    fn push(&mut self, at: SimTime, node: NodeId, seq: u64, ev: Ev<M>) {
        match self {
            EventQueue::Heap(h) => h.push(HeapEntry { at, node, seq, ev }),
            EventQueue::Wheel(w) => w.push(at.as_nanos(), node.0, seq, ev),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Ev<M>)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|e| (e.at, e.ev)),
            EventQueue::Wheel(w) => w.pop().map(|(at, ev)| (SimTime::from_nanos(at), ev)),
        }
    }

    /// Timestamp of the next event. `&mut` because the wheel may advance its
    /// cursor to locate the exact minimum.
    fn peek_at(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|e| e.at),
            EventQueue::Wheel(w) => w.peek_key().map(|(at, _, _)| SimTime::from_nanos(at)),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct FlowState {
    /// Earliest time the next message on this directed flow may arrive
    /// (preserves in-order delivery).
    floor: SimTime,
}

#[derive(Clone, Copy, Debug, Default)]
struct ConnState {
    /// Bumped on every break; in-flight reliable messages with an older
    /// epoch are discarded at delivery time.
    epoch: u64,
    /// Whether the handshake has been paid.
    established: bool,
}

/// The sentinel epoch used by unreliable datagrams (never filtered).
const EPOCH_UNRELIABLE: u64 = u64::MAX;

/// Engine state shared by all actors (everything except the actors
/// themselves, so handler callbacks can borrow it mutably).
pub struct World<M> {
    topo: Topology,
    now: SimTime,
    queue: EventQueue<M>,
    seq: u64,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    up: Vec<bool>,
    incarnation: Vec<u32>,
    node_rng: Vec<SimRng>,
    flows: HashMap<(NodeId, NodeId), FlowState>,
    conns: HashMap<(NodeId, NodeId), ConnState>,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    blocked: HashSet<(NodeId, NodeId)>,
    /// Per-node gray-failure stall horizon: while `now` is before a node's
    /// entry, events addressed to it are deferred (not dropped) to the
    /// horizon. `SimTime::ZERO` means not stalled.
    stalled_until: Vec<SimTime>,
    metrics: Vec<NodeMetrics>,
    trace: Trace,
    events_processed: u64,
    /// One provenance flight recorder per node. Lives in the world (not the
    /// actor) so span sequence numbers survive crash/restart and `(node,
    /// seq)` stays unique per run.
    recorders: Vec<FlightRecorder>,
    /// The span of the event currently being dispatched; every effect the
    /// running handler emits (send, timer, conn break) is parented to it.
    current_cause: Option<SpanId>,
    /// Large-fleet mode: skip payload `Debug` rendering, span recording, and
    /// trace-ring retention; fingerprint via the compact word hash instead
    /// of the rendered-event hash. Deterministic, but lite fingerprints only
    /// compare with other lite runs.
    lite: bool,
}

/// Lite-fingerprint event tags (see [`Trace::push_words`]).
const LT_SEND: u64 = 1;
const LT_DELIVER: u64 = 2;
const LT_DROP: u64 = 3;
const LT_TIMER: u64 = 4;
const LT_CRASH: u64 = 5;
const LT_RESTART: u64 = 6;
const LT_CONN_BROKEN: u64 = 7;
const LT_NOTE: u64 = 8;

/// Deterministic code for a drop-reason string (FNV-1a; reasons are short
/// static strings, so this stays off the hot path's allocation budget).
fn reason_code(reason: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in reason.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn conn_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<M: Clone + std::fmt::Debug + 'static> World<M> {
    fn new(topo: Topology, seed: u64, scheduler: SchedulerKind) -> Self {
        let n = topo.host_count();
        let mut root = SimRng::seed_from(seed);
        let node_rng = (0..n).map(|_| root.fork()).collect();
        World {
            topo,
            now: SimTime::ZERO,
            queue: EventQueue::new(scheduler),
            seq: 0,
            next_timer: 0,
            cancelled: HashSet::new(),
            up: vec![false; n],
            incarnation: vec![0; n],
            node_rng,
            flows: HashMap::new(),
            conns: HashMap::new(),
            tx_free: vec![SimTime::ZERO; n],
            rx_free: vec![SimTime::ZERO; n],
            blocked: HashSet::new(),
            stalled_until: vec![SimTime::ZERO; n],
            metrics: (0..n).map(|_| NodeMetrics::default()).collect(),
            trace: Trace::default(),
            events_processed: 0,
            recorders: (0..n).map(|i| FlightRecorder::new(i as u32)).collect(),
            current_cause: None,
            lite: false,
        }
    }

    /// Allocates a span id without recording a span: the lite-mode stand-in
    /// for [`World::record_span`], keeping cause ids (and thus the event
    /// stream) identical whether or not spans are being retained.
    fn span_id_only(&mut self, node: NodeId) -> SpanId {
        let at_ns = self.now.as_nanos();
        self.recorders[node.index()].next_id(at_ns)
    }

    /// Records a provenance span on `node`'s flight recorder and returns its
    /// deterministic id.
    fn record_span(
        &mut self,
        node: NodeId,
        kind: SpanKind,
        name: String,
        parents: Vec<SpanId>,
    ) -> SpanId {
        let at_ns = self.now.as_nanos();
        let rec = &mut self.recorders[node.index()];
        let id = rec.next_id(at_ns);
        rec.push(Span::new(id, kind, name, parents));
        id
    }

    fn push(&mut self, at: SimTime, ev: Ev<M>) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, ev.target(), seq, ev);
    }

    /// Records a send on the trace and flight recorder, returning the send
    /// span id (lite mode allocates the id without rendering or retention).
    fn trace_send(&mut self, from: NodeId, to: NodeId, bytes: u32, msg: &M) -> SpanId {
        if self.lite {
            let span = self.span_id_only(from);
            self.trace.push_words(&[
                LT_SEND,
                self.now.as_nanos(),
                from.0 as u64,
                to.0 as u64,
                bytes as u64,
                span.compact(),
            ]);
            return span;
        }
        let what = format!("{msg:?}");
        let parents = self.current_cause.into_iter().collect();
        let send_span = self.record_span(from, SpanKind::Send, span_name(&what), parents);
        self.trace.push(
            self.now,
            TraceEvent::Send {
                from,
                to,
                bytes,
                what,
                cause: send_span.compact(),
            },
        );
        send_span
    }

    /// Records a message drop: metrics, a Drop span on `span_node`, and the
    /// trace event (word-hashed in lite mode).
    fn trace_drop(
        &mut self,
        span_node: NodeId,
        from: NodeId,
        to: NodeId,
        reason: &'static str,
        parent: Option<SpanId>,
    ) {
        self.metrics[from.index()].msgs_dropped.inc();
        if self.lite {
            self.trace.push_words(&[
                LT_DROP,
                self.now.as_nanos(),
                from.0 as u64,
                to.0 as u64,
                reason_code(reason),
                compact(parent),
            ]);
            return;
        }
        self.record_span(
            span_node,
            SpanKind::Drop,
            reason.to_string(),
            parent.into_iter().collect(),
        );
        self.trace.push(
            self.now,
            TraceEvent::Drop {
                from,
                to,
                reason,
                cause: compact(parent),
            },
        );
    }

    /// Prices a reliable message and enqueues its delivery, or records why
    /// it could not be sent.
    fn send_reliable(&mut self, from: NodeId, to: NodeId, msg: M, payload_bytes: u32) {
        let bytes = payload_bytes + HEADER_BYTES;
        self.metrics[from.index()].msgs_sent.inc();
        self.metrics[from.index()].bytes_sent.add(bytes as u64);
        let send_span = self.trace_send(from, to, bytes, &msg);
        if self.blocked.contains(&(from, to)) {
            // Partitioned: TCP eventually times out; tell the sender.
            self.trace_drop(from, from, to, "partitioned", Some(send_span));
            let path = self.topo.path(from, to);
            let timeout = self.now + path.latency.mul_f64(2.0 * MAX_RETRIES as f64);
            self.push(
                timeout,
                Ev::ConnBroken {
                    node: from,
                    peer: to,
                    cause: Some(send_span),
                },
            );
            let key = conn_key(from, to);
            let conn = self.conns.entry(key).or_default();
            let was_established = conn.established;
            conn.established = false;
            conn.epoch += 1;
            if was_established {
                self.metrics[from.index()].conns_broken.inc();
                self.metrics[to.index()].conns_broken.inc();
                // The established connection died for *both* ends (the
                // peer's half sees ACK silence and resets on the same
                // timescale), so notify the peer too — matching the
                // retries-exhausted and crash paths, which already break
                // both sides. Without this, a peer that never transmits
                // during the partition window — e.g. one stalled across
                // it by a gray failure — would keep the dead link alive
                // forever. Reconnect attempts on an already-broken
                // connection notify only the sender: the SYN never
                // crossed, so the peer has no state to tear down.
                self.push(
                    timeout,
                    Ev::ConnBroken {
                        node: to,
                        peer: from,
                        cause: Some(send_span),
                    },
                );
            }
            return;
        }
        let path = self.topo.path(from, to);
        let key = conn_key(from, to);
        let conn = self.conns.entry(key).or_default();
        let mut extra = SimDuration::ZERO;
        if !conn.established {
            conn.established = true;
            extra += path.latency * 2; // SYN handshake
            self.metrics[from.index()].conns_established.inc();
        }
        let epoch = conn.epoch;
        // Loss becomes retransmission delay on the reliable transport.
        let mut retries = 0;
        while retries < MAX_RETRIES && self.node_rng[from.index()].gen_bool(path.loss) {
            retries += 1;
            extra += path.latency * 2;
        }
        if retries >= MAX_RETRIES {
            // TCP gives up: break the connection.
            self.trace_drop(from, from, to, "retries-exhausted", Some(send_span));
            self.break_conn(from, to, Some(send_span));
            return;
        }
        let deliver_at = self.price_delivery(from, to, bytes, path) + extra;
        // In-order per flow.
        let flow = self.flows.entry((from, to)).or_default();
        let deliver_at = deliver_at.max(flow.floor);
        flow.floor = deliver_at;
        self.push(
            deliver_at,
            Ev::Deliver {
                to,
                from,
                msg,
                bytes,
                sent_at: self.now,
                epoch,
                cause: Some(send_span),
            },
        );
    }

    /// Prices an unreliable datagram; may drop it.
    fn send_unreliable(&mut self, from: NodeId, to: NodeId, msg: M, payload_bytes: u32) {
        let bytes = payload_bytes + HEADER_BYTES;
        self.metrics[from.index()].msgs_sent.inc();
        self.metrics[from.index()].bytes_sent.add(bytes as u64);
        let send_span = self.trace_send(from, to, bytes, &msg);
        if self.blocked.contains(&(from, to)) {
            self.trace_drop(from, from, to, "partitioned", Some(send_span));
            return;
        }
        let path = self.topo.path(from, to);
        if self.node_rng[from.index()].gen_bool(path.loss) {
            self.trace_drop(from, from, to, "loss", Some(send_span));
            return;
        }
        let deliver_at = self.price_delivery(from, to, bytes, path);
        self.push(
            deliver_at,
            Ev::Deliver {
                to,
                from,
                msg,
                bytes,
                sent_at: self.now,
                epoch: EPOCH_UNRELIABLE,
                cause: Some(send_span),
            },
        );
    }

    /// Computes when `bytes` sent now from `from` arrive at `to`:
    /// sender-uplink serialization (queued behind earlier sends), path
    /// propagation plus bottleneck serialization, then receiver-downlink
    /// queueing.
    fn price_delivery(&mut self, from: NodeId, to: NodeId, bytes: u32, path: PathProps) -> SimTime {
        let bits = bytes as u64 * 8;
        let up_bps = self.topo.access(from).up_bps.min(path.bandwidth_bps).max(1);
        let ser_up = SimDuration::from_secs_f64(bits as f64 / up_bps as f64);
        let tx_start = self.now.max(self.tx_free[from.index()]);
        let tx_done = tx_start + ser_up;
        self.tx_free[from.index()] = tx_done;
        let arrival = tx_done + path.latency;
        let down_bps = self.topo.access(to).down_bps.max(1);
        let ser_down = SimDuration::from_secs_f64(bits as f64 / down_bps as f64);
        let rx_start = arrival.max(self.rx_free[to.index()]);
        let done = rx_start + ser_down;
        self.rx_free[to.index()] = done;
        done
    }

    fn break_conn(&mut self, a: NodeId, b: NodeId, cause: Option<SpanId>) {
        let key = conn_key(a, b);
        let conn = self.conns.entry(key).or_default();
        conn.epoch += 1;
        let was_established = conn.established;
        conn.established = false;
        if was_established {
            self.metrics[a.index()].conns_broken.inc();
            self.metrics[b.index()].conns_broken.inc();
        }
        self.flows.remove(&(a, b));
        self.flows.remove(&(b, a));
        if self.lite {
            self.trace.push_words(&[
                LT_CONN_BROKEN,
                self.now.as_nanos(),
                a.0 as u64,
                b.0 as u64,
                compact(cause),
            ]);
        } else {
            self.trace.push(
                self.now,
                TraceEvent::ConnBroken {
                    a,
                    b,
                    cause: compact(cause),
                },
            );
        }
        let now = self.now;
        self.push(
            now,
            Ev::ConnBroken {
                node: a,
                peer: b,
                cause,
            },
        );
        self.push(
            now,
            Ev::ConnBroken {
                node: b,
                peer: a,
                cause,
            },
        );
    }
}

/// The handle a running actor uses to interact with the simulated world.
///
/// A `Ctx` is only valid for the duration of one callback.
pub struct Ctx<'a, M> {
    world: &'a mut World<M>,
    node: NodeId,
}

impl<'a, M: Clone + std::fmt::Debug + 'static> Ctx<'a, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Number of hosts in the topology.
    pub fn host_count(&self) -> usize {
        self.world.topo.host_count()
    }

    /// All host ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.world.topo.hosts().collect()
    }

    /// Sends `msg` reliably and in order (TCP-like), assuming a
    /// control-message payload of [`DEFAULT_MSG_BYTES`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_sized(to, msg, DEFAULT_MSG_BYTES);
    }

    /// Sends `msg` reliably with an explicit payload size in bytes
    /// (bandwidth pricing uses the size).
    pub fn send_sized(&mut self, to: NodeId, msg: M, bytes: u32) {
        let from = self.node;
        self.world.send_reliable(from, to, msg, bytes);
    }

    /// Sends `msg` as an unreliable datagram of [`DEFAULT_MSG_BYTES`].
    pub fn send_unreliable(&mut self, to: NodeId, msg: M) {
        self.send_unreliable_sized(to, msg, DEFAULT_MSG_BYTES);
    }

    /// Sends `msg` as an unreliable datagram with an explicit payload size.
    pub fn send_unreliable_sized(&mut self, to: NodeId, msg: M, bytes: u32) {
        let from = self.node;
        self.world.send_unreliable(from, to, msg, bytes);
    }

    /// Arms a timer that fires after `delay` with the given application tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.world.next_timer);
        self.world.next_timer += 1;
        let node = self.node;
        let at = self.world.now + delay;
        let incarnation = self.world.incarnation[node.index()];
        let cause = self.world.current_cause;
        self.world.push(
            at,
            Ev::Timer {
                node,
                id,
                tag,
                incarnation,
                cause,
            },
        );
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.world.cancelled.insert(id);
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.node_rng[self.node.index()]
    }

    /// Tears down the reliable connection with `peer`, dropping its
    /// in-flight messages; both endpoints get [`Actor::on_conn_broken`].
    ///
    /// Execution steering uses this as its universally available corrective
    /// action.
    pub fn break_connection(&mut self, peer: NodeId) {
        let me = self.node;
        let cause = self.world.current_cause;
        self.world.break_conn(me, peer, cause);
    }

    /// Ground-truth path properties to `to`, as a measurement facility
    /// (real deployments would probe; models built on this should treat it
    /// as a sample, not an oracle).
    pub fn measure_path(&self, to: NodeId) -> PathProps {
        self.world.topo.path(self.node, to)
    }

    /// The domain label of a host (see [`Topology::domain`]).
    pub fn domain(&self, n: NodeId) -> u32 {
        self.world.topo.domain(n)
    }

    /// Whether `n` is currently up. Real nodes cannot know this instantly;
    /// it is offered for drivers and oracles, not protocol logic.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.world.up[n.index()]
    }

    /// Appends a free-form annotation to the trace.
    pub fn note(&mut self, text: impl Into<String>) {
        let node = self.node;
        let now = self.world.now;
        if self.world.lite {
            let text = text.into();
            self.world.trace.push_words(&[
                LT_NOTE,
                now.as_nanos(),
                node.0 as u64,
                reason_code(&text),
            ]);
            return;
        }
        self.world.trace.push(
            now,
            TraceEvent::Note {
                node: Some(node),
                text: text.into(),
            },
        );
    }

    /// The provenance span of the event currently being dispatched (the
    /// delivery, timer firing, start, ... that invoked this callback).
    /// Effects emitted through this `Ctx` are parented to it.
    pub fn cause(&self) -> Option<SpanId> {
        self.world.current_cause
    }

    /// Re-parents subsequent effects of the running callback to `span`.
    /// The runtime calls this after recording a decision span so the
    /// decision — not the triggering delivery — becomes the causal parent
    /// of everything the handler emits afterwards.
    pub fn set_cause(&mut self, span: SpanId) {
        self.world.current_cause = Some(span);
    }

    /// This node's provenance flight recorder, for recording
    /// application-level spans (the runtime records decision spans here).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.world.recorders[self.node.index()]
    }

    /// Current simulated time in nanoseconds (convenience for span ids).
    pub fn now_ns(&self) -> u64 {
        self.world.now.as_nanos()
    }
}

/// A complete simulation: topology, clock, event queue, and one actor per
/// host.
///
/// # Examples
///
/// ```
/// use cb_simnet::prelude::*;
///
/// struct Echo;
/// impl Actor for Echo {
///     type Msg = u32;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
///         if ctx.id() == NodeId(0) {
///             ctx.send(NodeId(1), 7);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
///         if msg == 7 {
///             ctx.send(from, 8);
///         }
///     }
/// }
///
/// let topo = Topology::star(2, SimDuration::from_millis(10), 1_000_000);
/// let mut sim = Sim::new(topo, 42, |_| Echo);
/// sim.start_all();
/// sim.run_until_quiescent(SimTime::from_secs(10));
/// assert_eq!(sim.summary().msgs_delivered, 2);
/// ```
pub struct Sim<A: Actor> {
    actors: Vec<A>,
    factory: Box<dyn Fn(NodeId) -> A>,
    world: World<A::Msg>,
}

impl<A: Actor> Sim<A> {
    /// Creates a simulation with one actor per host, built by `factory`.
    /// No node is started yet; use [`Sim::start_all`] or
    /// [`Sim::schedule_start`]. Uses the default scheduler
    /// ([`SchedulerKind::Wheel`]).
    pub fn new(topo: Topology, seed: u64, factory: impl Fn(NodeId) -> A + 'static) -> Self {
        Sim::new_with_scheduler(topo, seed, SchedulerKind::default(), factory)
    }

    /// Creates a simulation with an explicit event-queue implementation.
    /// [`SchedulerKind::Heap`] is the reference scheduler the differential
    /// tests compare the wheel against; both dispatch in the identical
    /// (time, node, seq) order, so same-seed runs produce byte-identical
    /// traces under either.
    pub fn new_with_scheduler(
        topo: Topology,
        seed: u64,
        scheduler: SchedulerKind,
        factory: impl Fn(NodeId) -> A + 'static,
    ) -> Self {
        let actors = topo.hosts().map(&factory).collect();
        Sim {
            actors,
            factory: Box::new(factory),
            world: World::new(topo, seed, scheduler),
        }
    }

    /// The event-queue implementation driving this simulation.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.world.queue.kind()
    }

    /// Switches large-fleet "lite" mode on or off (default off). Lite mode
    /// makes the hot loop allocation-free: payload `Debug` rendering, span
    /// recording, and trace-ring retention are skipped, and the trace
    /// fingerprint is computed over a compact word encoding of each event
    /// instead of its rendered form. Runs stay fully deterministic — equal
    /// seeds give equal fingerprints — but a lite fingerprint is only
    /// comparable to another lite run's. The 10k-node campaign arms enable
    /// this before scheduling any event.
    pub fn set_lite(&mut self, lite: bool) {
        self.world.lite = lite;
        self.world.trace.set_enabled(!lite);
    }

    /// Whether large-fleet lite mode is active.
    pub fn is_lite(&self) -> bool {
        self.world.lite
    }

    /// Starts every node at the current time.
    pub fn start_all(&mut self) {
        let now = self.world.now;
        for node in self.world.topo.hosts().collect::<Vec<_>>() {
            self.schedule_start(node, now);
        }
    }

    /// Schedules a node start (its `on_start` runs at `at`).
    pub fn schedule_start(&mut self, node: NodeId, at: SimTime) {
        self.world.push(at, Ev::Start { node });
    }

    /// Schedules a crash: the node loses all state and stops processing.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        self.world.push(at, Ev::Crash { node });
    }

    /// Schedules a restart: a fresh actor is built from the factory and
    /// started.
    pub fn schedule_restart(&mut self, node: NodeId, at: SimTime) {
        self.world.push(at, Ev::Restart { node });
    }

    /// Blackholes traffic from `a` to `b` (directed). Reliable sends on the
    /// blocked pair fail with a broken connection after a timeout.
    pub fn block(&mut self, a: NodeId, b: NodeId) {
        self.world.blocked.insert((a, b));
    }

    /// Removes a directed blackhole.
    pub fn unblock(&mut self, a: NodeId, b: NodeId) {
        self.world.blocked.remove(&(a, b));
    }

    /// Partitions the hosts into two groups, blocking all traffic between
    /// them (both directions).
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.block(a, b);
                self.block(b, a);
            }
        }
    }

    /// Heals every blackhole.
    pub fn heal_all(&mut self) {
        self.world.blocked.clear();
    }

    /// Stalls `node` until `until`: a gray failure in which the process is
    /// paused (GC pause, VM migration, an overloaded host) but its
    /// connections stay up. Events addressed to the node — deliveries,
    /// timers, starts, connection notifications — are deferred to `until`
    /// rather than dropped, so peers keep their connections and simply
    /// observe the node going quiet while their models of it age. Crash
    /// and restart still take effect immediately. Overlapping stalls keep
    /// the later horizon.
    pub fn stall_until(&mut self, node: NodeId, until: SimTime) {
        let cur = self.world.stalled_until[node.index()];
        self.world.stalled_until[node.index()] = cur.max(until);
        let now = self.world.now;
        if self.world.lite {
            self.world.trace.push_words(&[
                LT_NOTE,
                now.as_nanos(),
                node.0 as u64,
                until.as_nanos(),
            ]);
            return;
        }
        self.world.trace.push(
            now,
            TraceEvent::Note {
                node: Some(node),
                text: format!("stall until {until}"),
            },
        );
    }

    /// Whether `node` is currently inside a stall window.
    pub fn is_stalled(&self, node: NodeId) -> bool {
        self.world.now < self.world.stalled_until[node.index()]
    }

    /// Schedules a churn episode: each listed node crashes and restarts
    /// repeatedly between `from` and `until`, with exponentially distributed
    /// up-times (mean `up_mean`) and down-times (mean `down_mean`), drawn
    /// from a stream seeded by `seed` (independent of the node streams).
    ///
    /// Returns the number of crash/restart pairs scheduled.
    pub fn schedule_churn(
        &mut self,
        nodes: &[NodeId],
        from: SimTime,
        until: SimTime,
        up_mean: SimDuration,
        down_mean: SimDuration,
        seed: u64,
    ) -> usize {
        let mut rng = SimRng::seed_from(seed);
        let mut scheduled = 0;
        for &n in nodes {
            let mut t = from;
            loop {
                t = t.saturating_add(SimDuration::from_secs_f64(
                    rng.gen_exp(up_mean.as_secs_f64()),
                ));
                if t >= until {
                    break;
                }
                let down = t.saturating_add(SimDuration::from_secs_f64(
                    rng.gen_exp(down_mean.as_secs_f64()),
                ));
                self.schedule_crash(n, t);
                self.schedule_restart(n, down);
                scheduled += 1;
                t = down;
            }
        }
        scheduled
    }

    /// Processes a single event. Returns its timestamp, or `None` when the
    /// queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, ev) = self.world.queue.pop()?;
        self.world.now = at;
        // Gray-failure stalls: a stalled node is paused, not dead. Events
        // addressed to it — starts, deliveries, timers, connection
        // notifications — are deferred to the end of the stall instead of
        // processed; crashes and restarts still apply (a paused process
        // can still be killed). Events are re-pushed in pop order, so the
        // (time, seq) heap order at the stall end preserves the original
        // chronology and the run stays deterministic.
        let stall_target = match &ev {
            Ev::Start { node } => Some(*node),
            Ev::Deliver { to, .. } => Some(*to),
            Ev::Timer { node, .. } => Some(*node),
            Ev::ConnBroken { node, .. } => Some(*node),
            Ev::Crash { .. } | Ev::Restart { .. } => None,
        };
        if let Some(n) = stall_target {
            let until = self.world.stalled_until[n.index()];
            if self.world.now < until {
                self.world.push(until, ev);
                return Some(at);
            }
        }
        self.world.events_processed += 1;
        // Provenance: each dispatched event opens a span; the handler's
        // effects are parented to it via `current_cause`.
        self.world.current_cause = None;
        match ev {
            Ev::Start { node } => {
                self.world.up[node.index()] = true;
                let span = if self.world.lite {
                    self.world.span_id_only(node)
                } else {
                    self.world
                        .record_span(node, SpanKind::Start, "start".to_string(), vec![])
                };
                self.world.current_cause = Some(span);
                let mut ctx = Ctx {
                    world: &mut self.world,
                    node,
                };
                self.actors[node.index()].on_start(&mut ctx);
            }
            Ev::Deliver {
                to,
                from,
                msg,
                bytes,
                sent_at,
                epoch,
                cause,
            } => {
                if !self.world.up[to.index()] {
                    self.world.trace_drop(to, from, to, "dest-down", cause);
                    // A reliable segment arriving at a dead host gets no ACK:
                    // the sender's TCP eventually resets. Without this, a
                    // connection (re-)established while the peer was down
                    // would survive the peer's restart and the sender would
                    // never learn its in-flight data was lost.
                    if epoch != EPOCH_UNRELIABLE {
                        let current = self
                            .world
                            .conns
                            .get(&conn_key(from, to))
                            .map_or(0, |c| c.epoch);
                        if epoch == current {
                            self.world.break_conn(from, to, cause);
                        }
                    }
                    return Some(at);
                }
                if epoch != EPOCH_UNRELIABLE {
                    let current = self
                        .world
                        .conns
                        .get(&conn_key(from, to))
                        .map_or(0, |c| c.epoch);
                    if epoch != current {
                        self.world.trace_drop(to, from, to, "conn-broken", cause);
                        return Some(at);
                    }
                }
                let m = &mut self.world.metrics[to.index()];
                m.msgs_delivered.inc();
                m.bytes_received.add(bytes as u64);
                m.delivery_latency.record_duration(self.world.now - sent_at);
                if self.world.lite {
                    let span = self.world.span_id_only(to);
                    self.world.current_cause = Some(span);
                    self.world.trace.push_words(&[
                        LT_DELIVER,
                        self.world.now.as_nanos(),
                        from.0 as u64,
                        to.0 as u64,
                        compact(cause),
                    ]);
                } else {
                    let what = format!("{msg:?}");
                    let span = self.world.record_span(
                        to,
                        SpanKind::Deliver,
                        span_name(&what),
                        cause.into_iter().collect(),
                    );
                    self.world.current_cause = Some(span);
                    self.world.trace.push(
                        self.world.now,
                        TraceEvent::Deliver {
                            from,
                            to,
                            what,
                            cause: compact(cause),
                        },
                    );
                }
                let mut ctx = Ctx {
                    world: &mut self.world,
                    node: to,
                };
                self.actors[to.index()].on_message(&mut ctx, from, msg);
            }
            Ev::Timer {
                node,
                id,
                tag,
                incarnation,
                cause,
            } => {
                if !self.world.up[node.index()]
                    || incarnation != self.world.incarnation[node.index()]
                    || self.world.cancelled.remove(&id)
                {
                    return Some(at);
                }
                self.world.metrics[node.index()].timers_fired.inc();
                if self.world.lite {
                    let span = self.world.span_id_only(node);
                    self.world.current_cause = Some(span);
                    self.world.trace.push_words(&[
                        LT_TIMER,
                        self.world.now.as_nanos(),
                        node.0 as u64,
                        tag,
                        compact(cause),
                    ]);
                } else {
                    let span = self.world.record_span(
                        node,
                        SpanKind::Timer,
                        format!("timer:{tag}"),
                        cause.into_iter().collect(),
                    );
                    self.world.current_cause = Some(span);
                    self.world.trace.push(
                        self.world.now,
                        TraceEvent::Timer {
                            node,
                            tag,
                            cause: compact(cause),
                        },
                    );
                }
                let mut ctx = Ctx {
                    world: &mut self.world,
                    node,
                };
                self.actors[node.index()].on_timer(&mut ctx, id, tag);
            }
            Ev::Crash { node } => {
                if !self.world.up[node.index()] {
                    return Some(at);
                }
                self.world.up[node.index()] = false;
                self.world.incarnation[node.index()] += 1;
                let span = if self.world.lite {
                    let span = self.world.span_id_only(node);
                    self.world.trace.push_words(&[
                        LT_CRASH,
                        self.world.now.as_nanos(),
                        node.0 as u64,
                    ]);
                    span
                } else {
                    let span =
                        self.world
                            .record_span(node, SpanKind::Crash, "crash".to_string(), vec![]);
                    self.world
                        .trace
                        .push(self.world.now, TraceEvent::Crash { node });
                    span
                };
                // All of the node's connections break; peers will be
                // notified (they observe a TCP reset / timeout).
                let mut peers: Vec<NodeId> = self
                    .world
                    .conns
                    .keys()
                    .filter(|&&(a, b)| a == node || b == node)
                    .map(|&(a, b)| if a == node { b } else { a })
                    .collect();
                // HashMap iteration order is nondeterministic; the break
                // order decides ConnBroken delivery order, which must be a
                // pure function of the seed.
                peers.sort_unstable();
                for p in peers {
                    self.world.break_conn(node, p, Some(span));
                }
            }
            Ev::Restart { node } => {
                if self.world.up[node.index()] {
                    return Some(at);
                }
                self.world.up[node.index()] = true;
                self.world.incarnation[node.index()] += 1;
                if self.world.lite {
                    let span = self.world.span_id_only(node);
                    self.world.current_cause = Some(span);
                    self.world.trace.push_words(&[
                        LT_RESTART,
                        self.world.now.as_nanos(),
                        node.0 as u64,
                    ]);
                } else {
                    let span = self.world.record_span(
                        node,
                        SpanKind::Restart,
                        "restart".to_string(),
                        vec![],
                    );
                    self.world.current_cause = Some(span);
                    self.world
                        .trace
                        .push(self.world.now, TraceEvent::Restart { node });
                }
                self.actors[node.index()] = (self.factory)(node);
                let mut ctx = Ctx {
                    world: &mut self.world,
                    node,
                };
                self.actors[node.index()].on_start(&mut ctx);
            }
            Ev::ConnBroken { node, peer, cause } => {
                if !self.world.up[node.index()] {
                    return Some(at);
                }
                let span = if self.world.lite {
                    self.world.span_id_only(node)
                } else {
                    self.world.record_span(
                        node,
                        SpanKind::ConnBreak,
                        format!("conn:{}", peer.index()),
                        cause.into_iter().collect(),
                    )
                };
                self.world.current_cause = Some(span);
                let mut ctx = Ctx {
                    world: &mut self.world,
                    node,
                };
                self.actors[node.index()].on_conn_broken(&mut ctx, peer);
            }
        }
        self.world.current_cause = None;
        Some(at)
    }

    /// Runs until the queue is empty or the next event is after `deadline`;
    /// the clock then rests at the later of its current value and
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.world.queue.peek_at() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        self.world.now = self.world.now.max(deadline);
        n
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.world.now + d;
        self.run_until(deadline)
    }

    /// Runs until no events remain or the clock passes `limit`.
    /// Returns the time of the last processed event.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        let mut last = self.world.now;
        while let Some(at) = self.world.queue.peek_at() {
            if at > limit {
                break;
            }
            last = self.step().expect("peeked entry exists");
        }
        last
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.world.events_processed
    }

    /// Number of events still waiting in the queue. Zero means the
    /// simulation is quiescent: nothing more can ever happen without
    /// external input. Campaign oracles use this for no-stall checks.
    pub fn pending_events(&self) -> usize {
        self.world.queue.len()
    }

    /// Directed pairs currently blackholed (sorted for determinism).
    pub fn blocked_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<_> = self.world.blocked.iter().copied().collect();
        v.sort();
        v
    }

    /// Immutable access to a node's actor.
    pub fn actor(&self, n: NodeId) -> &A {
        &self.actors[n.index()]
    }

    /// Mutable access to a node's actor (for drivers between steps).
    pub fn actor_mut(&mut self, n: NodeId) -> &mut A {
        &mut self.actors[n.index()]
    }

    /// Runs `f` against a node's actor with a live [`Ctx`], as if an
    /// external client invoked it. Use this to inject operations.
    pub fn invoke<R>(&mut self, n: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R) -> R {
        // External stimuli are causal roots: no parent span.
        self.world.current_cause = None;
        let mut ctx = Ctx {
            world: &mut self.world,
            node: n,
        };
        let r = f(&mut self.actors[n.index()], &mut ctx);
        self.world.current_cause = None;
        r
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.world.up[n.index()]
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.world.topo
    }

    /// Mutable topology access (e.g. to degrade a link mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.world.topo
    }

    /// A node's traffic metrics.
    pub fn metrics(&self, n: NodeId) -> &NodeMetrics {
        &self.world.metrics[n.index()]
    }

    /// Aggregated metrics over all nodes.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary::aggregate(self.world.metrics.iter())
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.world.trace
    }

    /// Mutable trace access (e.g. to disable recording for long runs).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.world.trace
    }

    /// The per-node provenance flight recorders (index = node id).
    pub fn flight_recorders(&self) -> &[FlightRecorder] {
        &self.world.recorders
    }

    /// One node's provenance flight recorder.
    pub fn flight_recorder(&self, n: NodeId) -> &FlightRecorder {
        &self.world.recorders[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Pinger {
        got: Vec<(NodeId, u32)>,
        broken: Vec<NodeId>,
        timer_tags: Vec<u64>,
    }

    impl Actor for Pinger {
        type Msg = u32;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.got.push((from, msg));
            if msg < 3 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _timer: TimerId, tag: u64) {
            self.timer_tags.push(tag);
        }
        fn on_conn_broken(&mut self, _ctx: &mut Ctx<'_, u32>, peer: NodeId) {
            self.broken.push(peer);
        }
    }

    fn two_node_sim() -> Sim<Pinger> {
        let topo = Topology::star(2, SimDuration::from_millis(10), 10_000_000);
        Sim::new(topo, 1, |_| Pinger::default())
    }

    #[test]
    fn ping_pong_until_quiescent() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 0));
        sim.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(
            sim.actor(NodeId(1)).got,
            vec![(NodeId(0), 0), (NodeId(0), 2)]
        );
        assert_eq!(
            sim.actor(NodeId(0)).got,
            vec![(NodeId(1), 1), (NodeId(1), 3)]
        );
    }

    #[test]
    fn latency_is_at_least_propagation() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(1), 9));
        sim.run_until_quiescent(SimTime::from_secs(1));
        let lat = &sim.metrics(NodeId(1)).delivery_latency;
        assert_eq!(lat.count(), 1);
        // Star with 10 ms spokes: one-way is 20 ms propagation + serialization.
        assert!(lat.min() >= 20_000, "one-way latency {}us", lat.min());
        assert!(lat.min() < 25_000, "one-way latency {}us", lat.min());
    }

    #[test]
    fn reliable_first_message_pays_handshake() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), 100);
            ctx.send(NodeId(1), 101);
        });
        sim.run_until_quiescent(SimTime::from_secs(1));
        let got = &sim.actor(NodeId(1)).got;
        assert_eq!(got.len(), 2);
        let lat = &sim.metrics(NodeId(1)).delivery_latency;
        // First message ≥ 3×20 ms (handshake RTT + one-way); in-order floor
        // makes the second arrive no earlier.
        assert!(lat.min() >= 60_000, "handshake not priced: {}us", lat.min());
    }

    #[test]
    fn in_order_delivery_per_flow() {
        #[derive(Default)]
        struct Collector {
            got: Vec<u32>,
        }
        impl Actor for Collector {
            type Msg = u32;
            fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
                self.got.push(msg);
            }
        }
        let topo = Topology::star(2, SimDuration::from_millis(5), 1_000_000);
        let mut sim = Sim::new(topo, 3, |_| Collector::default());
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            for i in 0..20 {
                // Varying sizes would reorder a naive latency-only model.
                ctx.send_sized(NodeId(1), i, if i % 2 == 0 { 20_000 } else { 10 });
            }
        });
        sim.run_until_quiescent(SimTime::from_secs(30));
        assert_eq!(sim.actor(NodeId(1)).got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let t = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.cancel_timer(t);
        });
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.actor(NodeId(0)).timer_tags, vec![1, 3]);
    }

    #[test]
    fn crash_drops_messages_and_restart_resets_state() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 0));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert!(!sim.actor(NodeId(1)).got.is_empty());
        sim.schedule_crash(NodeId(1), sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_millis(2));
        assert!(!sim.is_up(NodeId(1)));
        // Messages to a dead node disappear.
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 0));
        sim.run_for(SimDuration::from_secs(1));
        sim.schedule_restart(NodeId(1), sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.is_up(NodeId(1)));
        assert!(
            sim.actor(NodeId(1)).got.is_empty(),
            "restart must reset actor state"
        );
    }

    #[test]
    fn crash_breaks_connections_and_notifies_peer() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 0));
        sim.run_until_quiescent(SimTime::from_secs(1));
        sim.schedule_crash(NodeId(1), sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.actor(NodeId(0)).broken, vec![NodeId(1)]);
    }

    #[test]
    fn timer_from_previous_incarnation_is_dropped() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(5), 42);
        });
        sim.schedule_crash(NodeId(0), SimTime::from_secs(1));
        sim.schedule_restart(NodeId(0), SimTime::from_secs(2));
        sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(sim.actor(NodeId(0)).timer_tags.is_empty());
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.partition(&[NodeId(0)], &[NodeId(1)]);
        sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(1), 5));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert!(sim.actor(NodeId(1)).got.is_empty());
        sim.heal_all();
        sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(1), 6));
        sim.run_until_quiescent(SimTime::from_secs(2));
        assert_eq!(sim.actor(NodeId(1)).got, vec![(NodeId(0), 6)]);
    }

    #[test]
    fn blocked_reliable_send_notifies_sender() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.block(NodeId(0), NodeId(1));
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 5));
        sim.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(sim.actor(NodeId(0)).broken, vec![NodeId(1)]);
        assert!(sim.actor(NodeId(1)).got.is_empty());
    }

    #[test]
    fn break_connection_drops_in_flight() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 7));
        // Break before the (≥20 ms) delivery happens.
        sim.invoke(NodeId(0), |_, ctx| ctx.break_connection(NodeId(1)));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert!(
            sim.actor(NodeId(1)).got.is_empty(),
            "in-flight must be dropped"
        );
        assert!(sim.actor(NodeId(1)).broken.contains(&NodeId(0)));
    }

    #[test]
    fn lossy_path_delays_reliable_but_drops_unreliable() {
        let mut topo_g = Topology::star(2, SimDuration::from_millis(10), 10_000_000);
        // Inject loss by rebuilding: use dumbbell with loss via transit config
        // instead — simplest is measuring behavior through many unreliable sends.
        let _ = &mut topo_g;
        let cfg = crate::topology::TransitStubConfig {
            transit_routers: 2,
            stubs_per_transit: 1,
            hosts_per_stub: 1,
            transit_loss: 0.3,
            ..Default::default()
        };
        let topo = Topology::transit_stub(&cfg, &mut SimRng::seed_from(9));
        let mut sim = Sim::new(topo, 5, |_| Pinger::default());
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        for _ in 0..200 {
            sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(1), 100));
        }
        sim.run_until_quiescent(SimTime::from_secs(60));
        let delivered = sim.actor(NodeId(1)).got.len();
        assert!(delivered < 190, "loss had no effect: {delivered}/200");
        assert!(delivered > 100, "loss too aggressive: {delivered}/200");
        // Reliable messages all arrive despite loss.
        let before = sim.actor(NodeId(1)).got.len();
        for _ in 0..50 {
            sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 100));
        }
        sim.run_until_quiescent(SimTime::from_secs(120));
        assert_eq!(sim.actor(NodeId(1)).got.len(), before + 50);
    }

    #[test]
    fn determinism_same_seed_same_fingerprint() {
        let run = |seed: u64| {
            let topo = Topology::star(4, SimDuration::from_millis(7), 1_000_000);
            let mut sim = Sim::new(topo, seed, |_| Pinger::default());
            sim.start_all();
            sim.run_until(SimTime::ZERO);
            for i in 0..4u32 {
                // Random targets make the trace genuinely seed-dependent.
                sim.invoke(NodeId(i), |_, ctx| {
                    let to = NodeId(ctx.rng().gen_below(4) as u32);
                    if to != ctx.id() {
                        ctx.send(to, 0);
                    }
                });
            }
            sim.run_until_quiescent(SimTime::from_secs(10));
            sim.trace().fingerprint()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn bandwidth_serialization_is_priced() {
        // 1 Mbit/s spokes; a 125 kB payload takes ~1 s to serialize.
        let topo = Topology::star(2, SimDuration::from_millis(1), 1_000_000);
        let mut sim = Sim::new(topo, 2, |_| Pinger::default());
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            ctx.send_unreliable_sized(NodeId(1), 100, 125_000)
        });
        sim.run_until_quiescent(SimTime::from_secs(30));
        let lat = sim.metrics(NodeId(1)).delivery_latency.min();
        assert!(lat >= 1_000_000, "serialization unpriced: {lat}us");
    }

    #[test]
    fn dumbbell_cross_flows_share_the_bottleneck() {
        // 1 Mbit/s bottleneck: one 62.5 kB transfer takes ~0.5 s; two
        // simultaneous cross transfers through the same sender serialize.
        let topo = Topology::dumbbell(
            2,
            2,
            SimDuration::from_millis(1),
            100_000_000,
            SimDuration::from_millis(5),
            1_000_000,
        );
        let mut sim = Sim::new(topo, 4, |_| Pinger::default());
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            ctx.send_unreliable_sized(NodeId(2), 100, 62_500);
            ctx.send_unreliable_sized(NodeId(3), 100, 62_500);
        });
        sim.run_until_quiescent(SimTime::from_secs(30));
        let first = sim.metrics(NodeId(2)).delivery_latency.min();
        let second = sim.metrics(NodeId(3)).delivery_latency.min();
        assert!(
            first >= 450_000,
            "first transfer {first}us under serialization floor"
        );
        assert!(
            second >= first + 400_000,
            "second transfer {second}us did not queue behind first {first}us"
        );
    }

    #[test]
    fn churn_schedule_crashes_and_restarts() {
        let topo = Topology::star(4, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 7, |_| Pinger::default());
        sim.start_all();
        let pairs = sim.schedule_churn(
            &[NodeId(1), NodeId(2)],
            SimTime::from_secs(1),
            SimTime::from_secs(60),
            SimDuration::from_secs(5),
            SimDuration::from_secs(2),
            99,
        );
        assert!(pairs > 2, "expected several churn episodes, got {pairs}");
        sim.run_until(SimTime::from_secs(120));
        // After the churn window, every node is back up.
        for n in [1u32, 2] {
            assert!(sim.is_up(NodeId(n)), "node {n} stuck down after churn");
        }
        // Trace recorded both crash and restart events.
        let crashes = sim
            .trace()
            .records()
            .filter(|r| matches!(r.event, crate::trace::TraceEvent::Crash { .. }))
            .count();
        assert!(crashes >= pairs, "crashes {crashes} < scheduled {pairs}");
    }

    #[test]
    fn stall_defers_delivery_and_timers_without_breaking_connections() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        // Establish the connection first.
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 0));
        sim.run_until_quiescent(SimTime::from_secs(1));
        let got_before = sim.actor(NodeId(1)).got.len();
        // Node 1 stalls for 5 s; node 0 keeps talking to it.
        sim.stall_until(NodeId(1), sim.now() + SimDuration::from_secs(5));
        assert!(sim.is_stalled(NodeId(1)));
        let stall_end = sim.now() + SimDuration::from_secs(5);
        sim.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), 0));
        sim.invoke(NodeId(1), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 77);
        });
        sim.run_until(stall_end - SimDuration::from_millis(1));
        // Mid-stall: nothing was processed on node 1 and no connection broke.
        assert_eq!(sim.actor(NodeId(1)).got.len(), got_before);
        assert!(sim.actor(NodeId(1)).timer_tags.is_empty());
        assert!(sim.actor(NodeId(0)).broken.is_empty());
        assert!(sim.actor(NodeId(1)).broken.is_empty());
        // After the stall everything deferred arrives, in order.
        sim.run_until_quiescent(SimTime::from_secs(30));
        assert!(!sim.is_stalled(NodeId(1)));
        assert!(sim.actor(NodeId(1)).got.len() > got_before);
        assert_eq!(sim.actor(NodeId(1)).timer_tags, vec![77]);
        assert!(sim.actor(NodeId(0)).broken.is_empty());
    }

    #[test]
    fn stalled_node_can_still_be_crashed() {
        let mut sim = two_node_sim();
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.stall_until(NodeId(1), SimTime::from_secs(10));
        sim.schedule_crash(NodeId(1), SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(2));
        assert!(!sim.is_up(NodeId(1)), "crash must pierce the stall");
    }

    #[test]
    fn stall_determinism_same_seed_same_fingerprint() {
        let run = |seed: u64| {
            let topo = Topology::star(4, SimDuration::from_millis(7), 1_000_000);
            let mut sim = Sim::new(topo, seed, |_| Pinger::default());
            sim.start_all();
            sim.run_until(SimTime::ZERO);
            sim.stall_until(NodeId(2), SimTime::from_secs(2));
            for i in 0..4u32 {
                sim.invoke(NodeId(i), |_, ctx| {
                    let to = NodeId(ctx.rng().gen_below(4) as u32);
                    if to != ctx.id() {
                        ctx.send(to, 0);
                    }
                });
            }
            sim.run_until_quiescent(SimTime::from_secs(10));
            sim.trace().fingerprint()
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn equal_timestamp_ties_break_by_node_then_seq() {
        // Two timers land on the same nanosecond on different nodes. The
        // dispatch key is (at, node, seq): node 0's timer must fire first
        // even though node 3's was *scheduled* first (lower seq). Under the
        // old accidental (at, seq) ordering inherited from heap internals,
        // node 3 would win and this test fails.
        #[derive(Default)]
        struct Recorder;
        impl Actor for Recorder {
            type Msg = ();
            fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _m: ()) {}
        }
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let topo = Topology::star(4, SimDuration::from_millis(1), 10_000_000);
            let mut sim = Sim::new_with_scheduler(topo, 1, kind, |_| Recorder);
            sim.start_all();
            sim.run_until(SimTime::ZERO);
            // Schedule in descending node order so seq order opposes node order.
            let d = SimDuration::from_millis(5);
            sim.invoke(NodeId(3), |_, ctx| {
                ctx.set_timer(d, 3);
            });
            sim.invoke(NodeId(0), |_, ctx| {
                ctx.set_timer(d, 0);
            });
            sim.invoke(NodeId(2), |_, ctx| {
                ctx.set_timer(d, 2);
            });
            sim.invoke(NodeId(1), |_, ctx| {
                ctx.set_timer(d, 1);
            });
            sim.run_until_quiescent(SimTime::from_secs(1));
            let order: Vec<u64> = sim
                .trace()
                .records()
                .filter_map(|r| match r.event {
                    crate::trace::TraceEvent::Timer { tag, .. } => Some(tag),
                    _ => None,
                })
                .collect();
            assert_eq!(
                order,
                vec![0, 1, 2, 3],
                "{kind:?}: ties must break by node id"
            );
        }
    }

    #[test]
    fn wheel_and_heap_schedulers_are_trace_equivalent() {
        // The differential pin at engine level: a workload with random
        // targets, timers, loss, crash/restart and stalls must produce the
        // same trace fingerprint and delivery counts under both schedulers.
        let run = |kind: SchedulerKind, seed: u64| {
            let cfg = crate::topology::TransitStubConfig {
                transit_routers: 2,
                stubs_per_transit: 2,
                hosts_per_stub: 3,
                transit_loss: 0.05,
                ..Default::default()
            };
            let topo = Topology::transit_stub(&cfg, &mut SimRng::seed_from(seed));
            let n = topo.host_count() as u32;
            let mut sim = Sim::new_with_scheduler(topo, seed, kind, |_| Pinger::default());
            sim.start_all();
            sim.run_until(SimTime::ZERO);
            for i in 0..n {
                sim.invoke(NodeId(i), |_, ctx| {
                    let to = NodeId(ctx.rng().gen_below(n as u64) as u32);
                    if to != ctx.id() {
                        ctx.send(to, 0);
                        ctx.send_unreliable(to, 1);
                    }
                    ctx.set_timer(SimDuration::from_millis(15), 7);
                });
            }
            sim.stall_until(NodeId(2), SimTime::from_millis(40));
            sim.schedule_crash(NodeId(1), SimTime::from_millis(50));
            sim.schedule_restart(NodeId(1), SimTime::from_millis(500));
            sim.run_until_quiescent(SimTime::from_secs(10));
            (
                sim.trace().fingerprint(),
                sim.summary().msgs_delivered,
                sim.summary().msgs_dropped,
                sim.now(),
            )
        };
        for seed in [1u64, 7, 23, 91] {
            assert_eq!(
                run(SchedulerKind::Heap, seed),
                run(SchedulerKind::Wheel, seed),
                "schedulers diverge at seed {seed}"
            );
        }
    }

    #[test]
    fn lite_mode_fingerprint_is_deterministic_and_scheduler_independent() {
        // Lite mode hashes compact word records instead of rendered events;
        // within the mode, heap and wheel must still agree byte-for-byte.
        let run = |kind: SchedulerKind, seed: u64| {
            let topo = Topology::star(8, SimDuration::from_millis(3), 10_000_000);
            let mut sim = Sim::new_with_scheduler(topo, seed, kind, |_| Pinger::default());
            sim.set_lite(true);
            sim.start_all();
            sim.run_until(SimTime::ZERO);
            for i in 0..8u32 {
                sim.invoke(NodeId(i), |_, ctx| {
                    let to = NodeId(ctx.rng().gen_below(8) as u32);
                    if to != ctx.id() {
                        ctx.send(to, 0);
                    }
                    ctx.set_timer(SimDuration::from_millis(9), 3);
                });
            }
            sim.run_until_quiescent(SimTime::from_secs(5));
            sim.trace().fingerprint()
        };
        assert_eq!(run(SchedulerKind::Heap, 5), run(SchedulerKind::Wheel, 5));
        assert_eq!(run(SchedulerKind::Wheel, 5), run(SchedulerKind::Wheel, 5));
        assert_ne!(run(SchedulerKind::Wheel, 5), run(SchedulerKind::Wheel, 6));
    }
}
