//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotonically non-decreasing count of **nanoseconds**
//! since the start of the simulation. Wrapping a plain integer in newtypes
//! ([`SimTime`], [`SimDuration`]) keeps instants and durations from being
//! mixed up at compile time, mirroring `std::time::{Instant, Duration}` but
//! without any dependence on the host clock — two runs with the same seed
//! observe byte-identical timelines.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It can only
/// be shifted by a [`SimDuration`]; subtracting two instants yields a
/// duration.
///
/// # Examples
///
/// ```
/// use cb_simnet::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use cb_simnet::time::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds `d`, saturating at [`SimTime::MAX`] instead of overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds `other`, saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts `other`, saturating at [`SimDuration::ZERO`].
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative float (used for bandwidth math).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "negative duration scale: {factor}");
        let nanos = self.0 as f64 * factor;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0ns")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_millis(10);
        let d = SimDuration::from_millis(25);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(250));
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
        assert!((SimDuration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(f64::MAX), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(2.5),
            SimDuration::from_millis(25)
        );
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(3).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_the_coarsest_exact_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1500ms");
        assert_eq!(format!("{}", SimDuration::from_micros(42)), "42us");
        assert_eq!(format!("{}", SimDuration::from_nanos(7)), "7ns");
        assert_eq!(format!("{}", SimDuration::ZERO), "0ns");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "t+5ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(2),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(2)
            ]
        );
    }
}
