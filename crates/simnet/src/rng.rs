//! Deterministic pseudo-random number generation.
//!
//! The simulator owns every source of randomness so that a run is a pure
//! function of its seed. We implement xoshiro256\*\* (Blackman & Vigna) seeded
//! through SplitMix64, the authors' recommended seeding procedure. The
//! implementation is self-contained — depending on an external RNG crate
//! would tie trace reproducibility to that crate's version.
//!
//! Streams can be [`fork`](SimRng::fork)ed: each node of the simulation gets
//! an independent child stream, so adding randomness to one node never
//! perturbs another node's draws.

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use cb_simnet::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Distinct seeds give (with overwhelming probability) independent
    /// streams; the all-zero internal state is impossible by construction.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream.
    ///
    /// The child is seeded from the parent's output, so forking advances the
    /// parent by one draw. Forking with the same parent state and order is
    /// fully deterministic.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Lemire's method: widen-multiply and reject the biased low region.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform value in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_below(hi - lo)
    }

    /// Returns a uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Samples an exponentially distributed duration scale with the given
    /// mean (inverse-CDF method). Returns the multiplier, not a duration.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // 1 - U is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Samples a standard normal via the Box–Muller transform.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Chooses a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` in selection order.
    ///
    /// Uses a partial Fisher–Yates over an index vector; `O(n)` setup, which
    /// is fine for the neighborhood sizes the simulator deals in.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.gen_index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Child draws do not affect the parent stream.
        let _ = c1.next_u64();
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut rng = SimRng::seed_from(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = SimRng::seed_from(8);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(2.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 hit count {hits}");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "exp mean {mean}");
    }

    #[test]
    fn gen_normal_moments() {
        let mut rng = SimRng::seed_from(17);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "normal mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "normal var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input untouched");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(29);
        let picks = rng.sample_indices(20, 8);
        assert_eq!(picks.len(), 8);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        assert!(picks.iter().all(|&i| i < 20));
        assert!(rng.sample_indices(5, 0).is_empty());
        assert_eq!(rng.sample_indices(1, 1), vec![0]);
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = SimRng::seed_from(31);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "gen_below(0)")]
    fn gen_below_zero_panics() {
        SimRng::seed_from(0).gen_below(0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).gen_range(5, 5);
    }
}
