//! Event tracing.
//!
//! Every simulation keeps a bounded ring of [`TraceEvent`]s. Traces serve two
//! purposes: debugging protocol runs, and asserting determinism — two runs
//! with the same seed must produce byte-identical traces (the integration
//! tests check exactly that via [`Trace::fingerprint`]).

use crate::time::SimTime;
use crate::topology::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// One traced simulator-level occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was handed to the transport.
    Send {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Payload size in bytes.
        bytes: u32,
        /// Debug rendering of the payload.
        what: String,
        /// Compact provenance span id of the send (0 = none recorded). Joins
        /// this flat record to the flight-recorder span graph.
        cause: u64,
    },
    /// A message reached its destination actor.
    Deliver {
        /// Original sender.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Debug rendering of the payload.
        what: String,
        /// Compact span id of the originating send (0 = none).
        cause: u64,
    },
    /// A message was dropped (loss, partition, dead endpoint, broken
    /// connection).
    Drop {
        /// Original sender.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
        /// Why it was dropped.
        reason: &'static str,
        /// Compact span id of the originating send (0 = none).
        cause: u64,
    },
    /// A timer fired at a node.
    Timer {
        /// Node whose timer fired.
        node: NodeId,
        /// Application tag attached at `set_timer` time.
        tag: u64,
        /// Compact span id of the event that set the timer (0 = none).
        cause: u64,
    },
    /// A node crashed.
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A node restarted with fresh state.
    Restart {
        /// The restarted node.
        node: NodeId,
    },
    /// A transport connection was torn down.
    ConnBroken {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// Compact span id of the event that caused the break (0 = none).
        cause: u64,
    },
    /// Free-form application annotation.
    Note {
        /// Node that emitted the note, if any.
        node: Option<NodeId>,
        /// The annotation text.
        text: String,
    },
}

/// A timestamped trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened in simulated time.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?}", self.at, self.event)
    }
}

/// A bounded ring buffer of trace records.
///
/// When capacity is exceeded the oldest records are discarded; eviction is
/// **counted** (see [`evicted`](Trace::evicted), exported as the
/// `simnet.trace.evicted` telemetry key) so a nonzero count tells you the
/// retained window is partial. The total number of records ever pushed is
/// also counted, and the rolling [`fingerprint`](Trace::fingerprint) covers
/// every record ever pushed, including discarded ones — so two runs whose
/// fingerprints agree took identical event sequences even if early records
/// were evicted from *both* rings. The converse caveat: the retained
/// [`records`](Trace::records) window is post-eviction, so rendering two
/// equal-fingerprint traces can still differ if their capacities differ.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    pushed: u64,
    evicted: u64,
    fingerprint: u64,
    enabled: bool,
}

impl Trace {
    /// Creates a trace ring holding up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            pushed: 0,
            evicted: 0,
            fingerprint: 0xcbf2_9ce4_8422_2325, // FNV offset basis
            enabled: true,
        }
    }

    /// Enables or disables recording (the fingerprint still advances so
    /// determinism checks remain meaningful).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends a record.
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        use std::fmt::Write;
        self.pushed += 1;
        // FNV-1a over the debug rendering, streamed straight into the hash
        // state so the hot loop never allocates the rendered string. The
        // byte sequence is identical to hashing `format!("{at:?}|{event:?}")`,
        // so fingerprints are unchanged from the allocating implementation.
        let mut sink = FnvSink(self.fingerprint);
        let _ = write!(sink, "{at:?}|{event:?}");
        self.fingerprint = sink.0;
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(TraceRecord { at, event });
    }

    /// Advances the fingerprint over a compact word encoding of an event
    /// without retaining anything in the ring. The large-fleet "lite" mode
    /// uses this instead of [`Trace::push`]: no payload rendering, no
    /// formatting machinery, no allocation — just the FNV-1a state update.
    ///
    /// Lite fingerprints are deterministic and order-sensitive exactly like
    /// full fingerprints, but hash different bytes, so a lite run's
    /// fingerprint is only comparable to another lite run's.
    pub fn push_words(&mut self, words: &[u64]) {
        self.pushed += 1;
        let mut h = self.fingerprint;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        self.fingerprint = h;
    }

    /// Records retained in the ring, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// The last `k` retained records, oldest first. Failure artifacts embed
    /// these as the "what happened right before the violation" window.
    pub fn last(&self, k: usize) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter().skip(self.ring.len().saturating_sub(k))
    }

    /// Total records ever pushed (including discarded ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records evicted from the ring to honour the capacity bound. Exported
    /// as `simnet.trace.evicted`; nonzero means [`records`](Trace::records)
    /// shows only the tail of the run.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Rolling hash over every record ever pushed — **including records that
    /// were later evicted** from the bounded ring. Equal seeds must yield
    /// equal fingerprints; the determinism tests rely on this. Because the
    /// hash is computed at push time, eviction can never mask a divergence
    /// that happened early in a long run, even though the retained window is
    /// post-eviction.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint ^ self.pushed
    }

    /// Renders the retained records, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            out.push_str(&format!("{r}\n"));
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65_536)
    }
}

/// An FNV-1a hash state that absorbs formatted output directly, so hashing a
/// `Debug` rendering needs no intermediate `String`.
struct FnvSink(u64);

impl fmt::Write for FnvSink {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let mut h = self.0;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(text: &str) -> TraceEvent {
        TraceEvent::Note {
            node: None,
            text: text.to_string(),
        }
    }

    #[test]
    fn push_and_read_back() {
        let mut t = Trace::new(8);
        t.push(SimTime::from_millis(1), note("a"));
        t.push(SimTime::from_millis(2), note("b"));
        let texts: Vec<_> = t.records().map(|r| format!("{r}")).collect();
        assert_eq!(texts.len(), 2);
        assert!(texts[0].contains("\"a\""));
        assert_eq!(t.total_pushed(), 2);
    }

    #[test]
    fn ring_discards_oldest_but_counts_all() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(SimTime::from_millis(i), note(&format!("e{i}")));
        }
        assert_eq!(t.records().count(), 2);
        assert_eq!(t.total_pushed(), 5);
        assert_eq!(t.evicted(), 3);
        let last: Vec<_> = t.records().map(|r| r.at).collect();
        assert_eq!(last, vec![SimTime::from_millis(3), SimTime::from_millis(4)]);
    }

    #[test]
    fn fingerprint_covers_discarded_records() {
        let mut a = Trace::new(1);
        let mut b = Trace::new(1);
        for i in 0..10 {
            a.push(SimTime::from_millis(i), note(&format!("x{i}")));
            b.push(SimTime::from_millis(i), note(&format!("x{i}")));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.push(SimTime::from_millis(99), note("extra"));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn disabled_trace_still_fingerprints() {
        let mut t = Trace::new(8);
        t.set_enabled(false);
        t.push(SimTime::ZERO, note("hidden"));
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.total_pushed(), 1);
        let mut visible = Trace::new(8);
        visible.push(SimTime::ZERO, note("hidden"));
        assert_eq!(t.fingerprint(), visible.fingerprint());
    }

    #[test]
    fn order_matters_for_fingerprint() {
        let mut a = Trace::new(8);
        a.push(SimTime::ZERO, note("1"));
        a.push(SimTime::ZERO, note("2"));
        let mut b = Trace::new(8);
        b.push(SimTime::ZERO, note("2"));
        b.push(SimTime::ZERO, note("1"));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn streamed_fingerprint_matches_allocated_rendering() {
        // The streamed hash must cover the exact bytes of the historical
        // `format!("{at:?}|{event:?}")` encoding — this pins fingerprint
        // stability across the allocation-free rewrite.
        let mut t = Trace::new(8);
        let at = SimTime::from_millis(17);
        let event = TraceEvent::Send {
            from: NodeId(3),
            to: NodeId(5),
            bytes: 320,
            what: "Push { rumor: 9 }".to_string(),
            cause: 42,
        };
        t.push(at, event.clone());
        let mut expect = 0xcbf2_9ce4_8422_2325u64;
        for b in format!("{at:?}|{event:?}").as_bytes() {
            expect ^= *b as u64;
            expect = expect.wrapping_mul(0x0000_0100_0000_01B3);
        }
        assert_eq!(t.fingerprint(), expect ^ 1);
    }

    #[test]
    fn push_words_is_deterministic_and_order_sensitive() {
        let mut a = Trace::new(8);
        let mut b = Trace::new(8);
        a.push_words(&[1, 2, 3]);
        a.push_words(&[4, 5]);
        b.push_words(&[1, 2, 3]);
        b.push_words(&[4, 5]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.records().count(), 0, "lite pushes retain nothing");
        assert_eq!(a.total_pushed(), 2);
        let mut c = Trace::new(8);
        c.push_words(&[4, 5]);
        c.push_words(&[1, 2, 3]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn render_one_line_per_record() {
        let mut t = Trace::new(8);
        t.push(SimTime::ZERO, TraceEvent::Crash { node: NodeId(3) });
        t.push(
            SimTime::from_secs(1),
            TraceEvent::Restart { node: NodeId(3) },
        );
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("Crash"));
    }
}
