//! Property-based tests of the simulation engine's conservation laws.

use cb_simnet::prelude::*;
use proptest::prelude::*;

/// An actor that relays each message a bounded number of times to random
/// targets — enough churn to exercise the transport from many angles.
struct Relay {
    hops_left: u32,
}

impl Actor for Relay {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.id() == NodeId(0) {
            let n = ctx.host_count() as u64;
            let to = NodeId(ctx.rng().gen_below(n) as u32);
            if to != ctx.id() {
                ctx.send(to, 0);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        if self.hops_left == 0 {
            return;
        }
        self.hops_left -= 1;
        let n = ctx.host_count() as u64;
        let to = NodeId(ctx.rng().gen_below(n) as u32);
        if to != ctx.id() {
            if msg.is_multiple_of(2) {
                ctx.send(to, msg + 1);
            } else {
                ctx.send_unreliable(to, msg + 1);
            }
        }
    }
}

/// An actor that generates no traffic of its own — a clean slate for
/// measurement-oriented properties.
struct Quiet;

impl Actor for Quiet {
    type Msg = u32;
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: NodeId, _msg: u32) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delivered + dropped never exceeds sent, whatever the topology and
    /// traffic pattern do.
    #[test]
    fn message_conservation(seed in any::<u64>(), n in 2usize..10, hops in 0u32..20) {
        let topo = Topology::star(n, SimDuration::from_millis(5), 5_000_000);
        let mut sim = Sim::new(topo, seed, move |_| Relay { hops_left: hops });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(60));
        let s = sim.summary();
        prop_assert!(s.msgs_delivered + s.msgs_dropped <= s.msgs_sent,
            "delivered {} + dropped {} > sent {}", s.msgs_delivered, s.msgs_dropped, s.msgs_sent);
    }

    /// One-way delivery latency is never below the path propagation delay.
    #[test]
    fn latency_floor_is_propagation(seed in any::<u64>(), spoke_ms in 1u64..50) {
        let topo = Topology::star(3, SimDuration::from_millis(spoke_ms), 50_000_000);
        let mut sim = Sim::new(topo, seed, |_| Quiet);
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(1), 9));
        sim.run_until_quiescent(SimTime::from_secs(10));
        let lat = &sim.metrics(NodeId(1)).delivery_latency;
        prop_assert_eq!(lat.count(), 1);
        prop_assert!(lat.min() >= spoke_ms * 2 * 1000, // micros
            "latency {}us under propagation {}ms", lat.min(), spoke_ms * 2);
    }

    /// Blocked pairs never deliver; healing restores delivery.
    #[test]
    fn partitions_are_absolute(seed in any::<u64>()) {
        let topo = Topology::star(4, SimDuration::from_millis(5), 5_000_000);
        let mut sim = Sim::new(topo, seed, |_| Quiet);
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.partition(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        for _ in 0..5 {
            sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(2), 1));
        }
        sim.run_until_quiescent(SimTime::from_secs(10));
        prop_assert_eq!(sim.metrics(NodeId(2)).msgs_delivered.get(), 0);
        sim.heal_all();
        sim.invoke(NodeId(0), |_, ctx| ctx.send_unreliable(NodeId(2), 1));
        sim.run_until_quiescent(SimTime::from_secs(20));
        prop_assert_eq!(sim.metrics(NodeId(2)).msgs_delivered.get(), 1);
    }

    /// A crashed node neither receives nor retains state after restart.
    #[test]
    fn crash_restart_resets(seed in any::<u64>(), crash_ms in 1u64..1000) {
        let topo = Topology::star(2, SimDuration::from_millis(5), 5_000_000);
        let mut sim = Sim::new(topo, seed, |_| Relay { hops_left: 3 });
        sim.start_all();
        sim.schedule_crash(NodeId(1), SimTime::from_millis(crash_ms));
        sim.schedule_restart(NodeId(1), SimTime::from_millis(crash_ms) + SimDuration::from_secs(1));
        sim.run_until_quiescent(SimTime::from_secs(30));
        prop_assert!(sim.is_up(NodeId(1)));
        // Fresh actor state from the factory.
        prop_assert_eq!(sim.actor(NodeId(1)).hops_left, 3);
    }

    /// Event processing is monotone in simulated time.
    #[test]
    fn clock_never_goes_backward(seed in any::<u64>(), n in 2usize..8) {
        let topo = Topology::star(n, SimDuration::from_millis(3), 2_000_000);
        let mut sim = Sim::new(topo, seed, |_| Relay { hops_left: 10 });
        sim.start_all();
        let mut last = SimTime::ZERO;
        while let Some(at) = sim.step() {
            prop_assert!(at >= last, "time went backward: {at:?} < {last:?}");
            last = at;
            if sim.events_processed() > 2000 {
                break;
            }
        }
    }
}
