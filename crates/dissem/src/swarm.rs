//! Swarming content distribution with an exposed block-selection choice.
//!
//! The BulletPrime/BitTorrent example of §3.1: peers download a file of
//! blocks from each other, maintaining **file maps** (which peer has which
//! block — the paper's example of state the service exports to the model)
//! and choosing which block to request next:
//!
//! * [`BlockStrategy::Random`] — uniform over the blocks the peer has and
//!   we lack (BitTorrent's opening strategy).
//! * [`BlockStrategy::RarestRandom`] — uniform over the *rarest* such
//!   blocks, by observed availability (BulletPrime's choice).
//! * [`BlockStrategy::Resolved`] — the decision "which strategy applies
//!   right now" is exposed to the runtime (`"dissem.block-strategy"`) with
//!   the download phase as the scenario context, and learned from block
//!   arrival feedback — replacing BitTorrent's "ad-hoc mechanism to make a
//!   one-time switch from one to the other".

use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::model::state::StateModel;
use cb_core::runtime::{Service, ServiceCtx};
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::{HashMap, HashSet};

/// Block payload size in bytes.
pub const BLOCK_BYTES: u32 = 65_536;

/// Request-loop timer tag.
pub const REQUEST_TIMER: u64 = 1;

/// Pending-request timeout sweep tag.
pub const SWEEP_TIMER: u64 = 2;

/// Maximum outstanding block requests per downloader.
const MAX_IN_FLIGHT: usize = 4;

/// Re-request blocks pending longer than this.
const REQUEST_TIMEOUT: SimDuration = SimDuration::from_secs(6);

/// Option keys for the exposed strategy choice.
const KEY_RANDOM: u64 = 0;
const KEY_RAREST: u64 = 1;

/// How the next block to request from a peer is picked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockStrategy {
    /// Uniform over missing blocks the peer offers.
    Random,
    /// Uniform over the rarest missing blocks the peer offers.
    RarestRandom,
    /// Strategy exposed as a runtime choice with phase context.
    Resolved,
}

impl BlockStrategy {
    /// Label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BlockStrategy::Random => "Random",
            BlockStrategy::RarestRandom => "Rarest-Random",
            BlockStrategy::Resolved => "Runtime-Resolved",
        }
    }
}

/// Swarm protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwarmMsg {
    /// Full file map announcement (sent on start to each neighbor).
    Bitmap {
        /// Blocks the sender holds.
        blocks: Vec<u32>,
    },
    /// Incremental map update: the sender acquired one block.
    Have {
        /// The acquired block.
        block: u32,
    },
    /// Ask the peer for a block.
    Request {
        /// The wanted block.
        block: u32,
    },
    /// A block payload (priced at [`BLOCK_BYTES`]).
    Data {
        /// The block id.
        block: u32,
    },
}

/// Checkpoint: completion summary.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SwarmCheckpoint {
    /// Blocks held.
    pub blocks: u32,
    /// Total blocks in the file.
    pub total: u32,
}

/// A swarm participant.
pub struct SwarmNode {
    me: NodeId,
    /// Total blocks in the file.
    pub total_blocks: u32,
    strategy: BlockStrategy,
    /// Neighbor set handed out by the tracker.
    pub neighbors: Vec<NodeId>,
    /// Blocks held, with arrival times.
    pub have: HashMap<u32, SimTime>,
    /// File maps of peers (the exported state model of §3.3.1).
    pub peer_maps: HashMap<NodeId, HashSet<u32>>,
    /// Outstanding requests: block -> (peer, when, strategy key used).
    in_flight: HashMap<u32, (NodeId, SimTime, u64)>,
    /// When this node completed the file.
    pub completed_at: Option<SimTime>,
    /// Payload bytes received from another domain (ISP transit cost).
    pub transit_bytes_in: u64,
    /// Duplicate data receipts (wasted bandwidth).
    pub duplicate_blocks: u64,
    request_period: SimDuration,
}

impl SwarmNode {
    /// Creates a participant; the seed passes `seeded = true`.
    pub fn new(
        me: NodeId,
        total_blocks: u32,
        strategy: BlockStrategy,
        neighbors: Vec<NodeId>,
        seeded: bool,
        request_period: SimDuration,
    ) -> Self {
        let mut have = HashMap::new();
        if seeded {
            for b in 0..total_blocks {
                have.insert(b, SimTime::ZERO);
            }
        }
        SwarmNode {
            me,
            total_blocks,
            strategy,
            neighbors,
            have,
            peer_maps: HashMap::new(),
            in_flight: HashMap::new(),
            completed_at: None,
            transit_bytes_in: 0,
            duplicate_blocks: 0,
            request_period,
        }
    }

    /// True when every block is held.
    pub fn complete(&self) -> bool {
        self.have.len() as u32 >= self.total_blocks
    }

    /// Observed availability of `block` across known peer maps (plus self).
    fn availability(&self, block: u32) -> u32 {
        let peers = self
            .peer_maps
            .values()
            .filter(|m| m.contains(&block))
            .count() as u32;
        peers + u32::from(self.have.contains_key(&block))
    }

    /// Candidate blocks requestable from `peer` right now.
    fn candidates(&self, peer: NodeId) -> Vec<u32> {
        let Some(map) = self.peer_maps.get(&peer) else {
            return Vec::new();
        };
        let mut c: Vec<u32> = map
            .iter()
            .copied()
            .filter(|b| !self.have.contains_key(b) && !self.in_flight.contains_key(b))
            .collect();
        c.sort_unstable();
        c
    }

    fn pick_random(
        &self,
        ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>,
        cands: &[u32],
    ) -> u32 {
        cands[ctx.rng().gen_index(cands.len())]
    }

    fn pick_rarest(
        &self,
        ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>,
        cands: &[u32],
    ) -> u32 {
        let min_avail = cands
            .iter()
            .map(|&b| self.availability(b))
            .min()
            .expect("nonempty candidates");
        let rare: Vec<u32> = cands
            .iter()
            .copied()
            .filter(|&b| self.availability(b) == min_avail)
            .collect();
        rare[ctx.rng().gen_index(rare.len())]
    }

    /// The download phase used as the learned resolver's context: 0 while
    /// under half done, 1 after.
    fn phase(&self) -> ContextKey {
        ContextKey(u64::from(self.have.len() as u32 * 2 >= self.total_blocks))
    }

    fn pick_block(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>,
        cands: &[u32],
    ) -> (u32, u64) {
        match self.strategy {
            BlockStrategy::Random => (self.pick_random(ctx, cands), KEY_RANDOM),
            BlockStrategy::RarestRandom => (self.pick_rarest(ctx, cands), KEY_RAREST),
            BlockStrategy::Resolved => {
                let options = [OptionDesc::key(KEY_RANDOM), OptionDesc::key(KEY_RAREST)];
                let i = ctx.choose("dissem.block-strategy", self.phase(), &options);
                if options[i].key == KEY_RAREST {
                    (self.pick_rarest(ctx, cands), KEY_RAREST)
                } else {
                    (self.pick_random(ctx, cands), KEY_RANDOM)
                }
            }
        }
    }

    fn issue_requests(&mut self, ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>) {
        if self.complete() {
            return;
        }
        // Visit neighbors in a rotating order for fairness.
        let mut order = self.neighbors.clone();
        let rot = ctx.rng().gen_index(order.len().max(1));
        order.rotate_left(rot);
        for peer in order {
            if self.in_flight.len() >= MAX_IN_FLIGHT {
                break;
            }
            // One outstanding request per peer.
            if self.in_flight.values().any(|(p, _, _)| *p == peer) {
                continue;
            }
            let cands = self.candidates(peer);
            if cands.is_empty() {
                continue;
            }
            let (block, skey) = self.pick_block(ctx, &cands);
            self.in_flight.insert(block, (peer, ctx.now(), skey));
            ctx.send(peer, SwarmMsg::Request { block });
        }
    }

    fn sweep_timeouts(&mut self, ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>) {
        let now = ctx.now();
        let expired: Vec<u32> = self
            .in_flight
            .iter()
            .filter(|(_, (_, at, _))| now.saturating_since(*at) > REQUEST_TIMEOUT)
            .map(|(&b, _)| b)
            .collect();
        for b in expired {
            let (_, _, skey) = self.in_flight.remove(&b).expect("present");
            if self.strategy == BlockStrategy::Resolved {
                // A timed-out request is the negative signal.
                ctx.feedback("dissem.block-strategy", self.phase(), skey, 0.0);
            }
        }
    }
}

impl Service for SwarmNode {
    type Msg = SwarmMsg;
    type Checkpoint = SwarmCheckpoint;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>) {
        let blocks = {
            let mut b: Vec<u32> = self.have.keys().copied().collect();
            b.sort_unstable();
            b
        };
        for &p in &self.neighbors.clone() {
            ctx.send(
                p,
                SwarmMsg::Bitmap {
                    blocks: blocks.clone(),
                },
            );
        }
        if self.complete() {
            self.completed_at = Some(ctx.now());
        }
        let jitter =
            SimDuration::from_nanos(ctx.rng().gen_below(self.request_period.as_nanos().max(1)));
        ctx.set_timer(self.request_period + jitter, REQUEST_TIMER);
        ctx.set_timer(SimDuration::from_secs(2), SWEEP_TIMER);
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>, tag: u64) {
        match tag {
            REQUEST_TIMER => {
                self.issue_requests(ctx);
                if !self.complete() {
                    ctx.set_timer(self.request_period, REQUEST_TIMER);
                }
            }
            SWEEP_TIMER => {
                self.sweep_timeouts(ctx);
                if !self.complete() {
                    ctx.set_timer(SimDuration::from_secs(2), SWEEP_TIMER);
                }
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>,
        from: NodeId,
        msg: SwarmMsg,
    ) {
        match msg {
            SwarmMsg::Bitmap { blocks } => {
                // Connections are bidirectional: adopt reverse neighbors and
                // answer first contact with our own map, so a peer that the
                // tracker pointed at us can request from us and vice versa.
                let first_contact = !self.peer_maps.contains_key(&from);
                self.peer_maps.entry(from).or_default().extend(blocks);
                if !self.neighbors.contains(&from) {
                    self.neighbors.push(from);
                }
                if first_contact {
                    let mut mine: Vec<u32> = self.have.keys().copied().collect();
                    mine.sort_unstable();
                    ctx.send(from, SwarmMsg::Bitmap { blocks: mine });
                }
            }
            SwarmMsg::Have { block } => {
                self.peer_maps.entry(from).or_default().insert(block);
            }
            SwarmMsg::Request { block } => {
                if self.have.contains_key(&block) {
                    ctx.send_sized(from, SwarmMsg::Data { block }, BLOCK_BYTES);
                }
            }
            SwarmMsg::Data { block } => {
                if ctx.domain(from) != ctx.domain(self.me) {
                    self.transit_bytes_in += BLOCK_BYTES as u64;
                }
                if self.have.contains_key(&block) {
                    self.duplicate_blocks += 1;
                    return;
                }
                self.have.insert(block, ctx.now());
                if let Some((_, _, skey)) = self.in_flight.remove(&block) {
                    if self.strategy == BlockStrategy::Resolved {
                        ctx.feedback("dissem.block-strategy", self.phase(), skey, 1.0);
                    }
                }
                for &p in &self.neighbors.clone() {
                    if p != from {
                        ctx.send(p, SwarmMsg::Have { block });
                    }
                }
                if self.complete() && self.completed_at.is_none() {
                    self.completed_at = Some(ctx.now());
                    ctx.note(format!("{} completed the file", self.me));
                }
            }
        }
    }

    fn on_conn_broken(
        &mut self,
        _ctx: &mut ServiceCtx<'_, '_, SwarmMsg, SwarmCheckpoint>,
        peer: NodeId,
    ) {
        // A broken connection usually means the peer crashed; it will come
        // back with *no* blocks. Forget its map so its next Bitmap counts
        // as first contact (and gets answered with ours), and abandon any
        // request we had outstanding against it so the request loop
        // re-issues the block elsewhere instead of waiting out the sweep.
        self.peer_maps.remove(&peer);
        self.in_flight.retain(|_, (p, _, _)| *p != peer);
    }

    fn checkpoint(&self, _model: &StateModel<SwarmCheckpoint>) -> SwarmCheckpoint {
        SwarmCheckpoint {
            blocks: self.have.len() as u32,
            total: self.total_blocks,
        }
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.neighbors.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(strategy: BlockStrategy) -> SwarmNode {
        SwarmNode::new(
            NodeId(1),
            8,
            strategy,
            vec![NodeId(0), NodeId(2)],
            false,
            SimDuration::from_millis(200),
        )
    }

    #[test]
    fn seed_starts_complete() {
        let s = SwarmNode::new(
            NodeId(0),
            8,
            BlockStrategy::Random,
            vec![],
            true,
            SimDuration::from_millis(200),
        );
        assert!(s.complete());
        assert_eq!(s.have.len(), 8);
    }

    #[test]
    fn availability_counts_peers_and_self() {
        let mut n = node(BlockStrategy::Random);
        assert_eq!(n.availability(3), 0);
        n.peer_maps.entry(NodeId(0)).or_default().insert(3);
        n.peer_maps.entry(NodeId(2)).or_default().insert(3);
        assert_eq!(n.availability(3), 2);
        n.have.insert(3, SimTime::ZERO);
        assert_eq!(n.availability(3), 3);
    }

    #[test]
    fn candidates_exclude_held_and_in_flight() {
        let mut n = node(BlockStrategy::Random);
        n.peer_maps.entry(NodeId(0)).or_default().extend([1, 2, 3]);
        n.have.insert(1, SimTime::ZERO);
        n.in_flight.insert(2, (NodeId(0), SimTime::ZERO, 0));
        assert_eq!(n.candidates(NodeId(0)), vec![3]);
        assert!(
            n.candidates(NodeId(5)).is_empty(),
            "unknown peer offers nothing"
        );
    }

    #[test]
    fn duplicate_data_is_counted_not_reannounced() {
        use cb_core::resolve::random::RandomResolver;
        use cb_core::runtime::{Envelope, RuntimeConfig, RuntimeNode};
        use cb_simnet::sim::Sim;
        use cb_simnet::time::SimTime;
        use cb_simnet::topology::Topology;

        let topo = Topology::star(3, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 3, |id| {
            RuntimeNode::new(
                SwarmNode::new(
                    id,
                    4,
                    BlockStrategy::Random,
                    vec![],
                    id == NodeId(0),
                    SimDuration::from_secs(3600), // no request loop
                ),
                RuntimeConfig::new(Box::new(RandomResolver::new(1))),
            )
        });
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        // Deliver block 2 twice to node 1.
        for _ in 0..2 {
            sim.invoke(NodeId(0), |_, ctx| {
                let now = ctx.now();
                ctx.send(
                    NodeId(1),
                    Envelope::App {
                        msg: SwarmMsg::Data { block: 2 },
                        sent_at: now,
                    },
                );
            });
        }
        sim.run_until_quiescent(SimTime::from_secs(10));
        let svc = sim.actor(NodeId(1)).service();
        assert_eq!(svc.have.len(), 1);
        assert_eq!(svc.duplicate_blocks, 1);
    }

    #[test]
    fn phase_flips_at_half() {
        let mut n = node(BlockStrategy::Resolved);
        assert_eq!(n.phase(), ContextKey(0));
        for b in 0..4 {
            n.have.insert(b, SimTime::ZERO);
        }
        assert_eq!(n.phase(), ContextKey(1));
    }
}
