//! The tracker: neighbor assignment, random or locality-biased.
//!
//! BitTorrent peers "connect to a random subset of the existing
//! participants … chosen via an external interface, i.e., a remote
//! tracker"; §3.1 notes that because the choice was exposed at the tracker,
//! biasing it to reduce ISP transit cost (P4P) was straightforward. The
//! tracker here is a setup-time component: it hands each peer its neighbor
//! set before the swarm starts, either uniformly at random or biased toward
//! the peer's own domain (ISP).

use cb_simnet::rng::SimRng;
use cb_simnet::topology::{NodeId, Topology};

/// Tracker peer-assignment policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrackerPolicy {
    /// Uniformly random neighbors.
    Random,
    /// Prefer same-domain neighbors, filling the remainder randomly
    /// (P4P-style locality bias).
    LocalityBiased {
        /// Fraction of the neighbor set drawn from the peer's own domain
        /// (as far as the domain has members), in `[0, 1]`.
        local_fraction: f64,
    },
}

impl TrackerPolicy {
    /// Label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            TrackerPolicy::Random => "Random tracker",
            TrackerPolicy::LocalityBiased { .. } => "Locality-biased tracker",
        }
    }
}

/// Assigns `degree` neighbors to every one of the first `n` hosts.
///
/// The seed (node 0) is always included in each peer's set so the swarm can
/// bootstrap. Assignments are symmetric-free (directed): A having B does
/// not imply B has A, matching tracker behavior.
///
/// # Panics
///
/// Panics if `degree + 1 >= n`.
pub fn assign_neighbors(
    topo: &Topology,
    n: usize,
    degree: usize,
    policy: TrackerPolicy,
    rng: &mut SimRng,
) -> Vec<Vec<NodeId>> {
    assert!(degree + 1 < n, "degree {degree} too large for swarm of {n}");
    let mut result = Vec::with_capacity(n);
    for me in 0..n as u32 {
        let me = NodeId(me);
        let mut neighbors: Vec<NodeId> = Vec::with_capacity(degree + 1);
        if me != NodeId(0) {
            neighbors.push(NodeId(0));
        }
        let mut pool_local: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&p| p != me && !neighbors.contains(&p) && topo.domain(p) == topo.domain(me))
            .collect();
        let mut pool_any: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&p| p != me && !neighbors.contains(&p))
            .collect();
        rng.shuffle(&mut pool_local);
        rng.shuffle(&mut pool_any);
        let want_local = match policy {
            TrackerPolicy::Random => 0,
            TrackerPolicy::LocalityBiased { local_fraction } => {
                ((degree as f64) * local_fraction).round() as usize
            }
        };
        for p in pool_local.into_iter().take(want_local) {
            if neighbors.len() <= degree {
                neighbors.push(p);
            }
        }
        for p in pool_any {
            if neighbors.len() > degree {
                break;
            }
            if !neighbors.contains(&p) {
                neighbors.push(p);
            }
        }
        result.push(neighbors);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_simnet::time::SimDuration;

    fn four_domain_topo() -> Topology {
        // Dumbbell gives two domains; for four use transit-stub.
        let cfg = cb_simnet::topology::TransitStubConfig {
            transit_routers: 4,
            stubs_per_transit: 1,
            hosts_per_stub: 6,
            ..Default::default()
        };
        Topology::transit_stub(&cfg, &mut SimRng::seed_from(9))
    }

    #[test]
    fn everyone_gets_degree_neighbors_including_seed() {
        let topo = four_domain_topo();
        let mut rng = SimRng::seed_from(1);
        let assign = assign_neighbors(&topo, 24, 6, TrackerPolicy::Random, &mut rng);
        assert_eq!(assign.len(), 24);
        for (i, nbrs) in assign.iter().enumerate() {
            assert!(nbrs.len() >= 6, "node {i} has only {}", nbrs.len());
            assert!(!nbrs.contains(&NodeId(i as u32)), "node {i} lists itself");
            if i != 0 {
                assert!(nbrs.contains(&NodeId(0)), "node {i} lacks the seed");
            }
            let mut uniq = nbrs.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), nbrs.len(), "node {i} has duplicates");
        }
    }

    #[test]
    fn locality_bias_raises_same_domain_share() {
        let topo = four_domain_topo();
        let count_local = |assign: &[Vec<NodeId>]| -> usize {
            assign
                .iter()
                .enumerate()
                .flat_map(|(i, nbrs)| {
                    let me = NodeId(i as u32);
                    let topo = &topo;
                    nbrs.iter()
                        .filter(move |&&p| topo.domain(p) == topo.domain(me))
                })
                .count()
        };
        let mut rng = SimRng::seed_from(2);
        let random = assign_neighbors(&topo, 24, 6, TrackerPolicy::Random, &mut rng);
        let biased = assign_neighbors(
            &topo,
            24,
            6,
            TrackerPolicy::LocalityBiased {
                local_fraction: 0.8,
            },
            &mut rng,
        );
        assert!(
            count_local(&biased) > count_local(&random) * 2,
            "bias ineffective: {} vs {}",
            count_local(&biased),
            count_local(&random)
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_degree_panics() {
        let topo = Topology::star(4, SimDuration::from_millis(1), 1_000_000);
        let mut rng = SimRng::seed_from(3);
        let _ = assign_neighbors(&topo, 4, 4, TrackerPolicy::Random, &mut rng);
    }
}
