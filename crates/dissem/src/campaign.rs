//! Campaign registration: the block-dissemination swarm under faults.
//!
//! A small rarest-first swarm (seed = `NodeId 0`) checked for the only
//! invariant that matters to a file swarm: **completion** — every peer
//! that is up at the horizon holds the whole file. Crash/restart churn
//! wipes a peer's blocks (it must re-fetch), transient partitions and
//! loss slow the exchange down; an unhealed partition leaves an island
//! without the seed's blocks and violates the oracle.

use crate::swarm::{BlockStrategy, SwarmNode};
use crate::tracker::{assign_neighbors, TrackerPolicy};
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode};
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;

/// The campaign-facing swarm scenario.
pub struct SwarmCampaign {
    /// Number of peers including the seed (`NodeId 0`).
    pub peers: usize,
    /// Blocks in the file.
    pub blocks: u32,
    /// Tracker neighbor degree.
    pub degree: usize,
    /// Run horizon.
    pub horizon: SimTime,
}

impl Default for SwarmCampaign {
    fn default() -> Self {
        SwarmCampaign {
            peers: 10,
            blocks: 16,
            degree: 4,
            horizon: SimTime::from_secs(600),
        }
    }
}

impl Scenario for SwarmCampaign {
    fn name(&self) -> &'static str {
        "dissem"
    }

    fn node_count(&self) -> usize {
        self.peers
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // Crash a rotating non-seed peer mid-download (wiping its blocks),
        // restart it, split two other peers off behind a healed partition,
        // and add early loss. Everything heals with hundreds of simulated
        // seconds to spare.
        let n = self.peers as u64;
        let victim = 1 + (seed % (n - 1)) as u32;
        let pa = 1 + ((seed + 2) % (n - 1)) as u32;
        let mut plan = FaultPlan::none()
            .crash(victim, 20_000)
            .restart(victim, 60_000)
            .loss(0.05, 5_000, 40_000);
        if pa != victim {
            let others: Vec<u32> = (0..self.peers as u32).filter(|&i| i != pa).collect();
            plan = plan.partition(&[pa], &others, 30_000, Some(90_000));
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        // Small swarms keep the historical two-transit shape (and thus
        // historical fingerprints); large ones get a proportioned backbone
        // with an exact host count.
        let mut trng = SimRng::seed_from(seed.wrapping_mul(0x5DEE_CE66));
        let topo = if self.peers <= 64 {
            let ts = TransitStubConfig {
                transit_routers: 2,
                stubs_per_transit: 1,
                hosts_per_stub: self.peers.div_ceil(2),
                ..Default::default()
            };
            Topology::transit_stub(&ts, &mut trng)
        } else {
            Topology::transit_stub_exact(
                &TransitStubConfig::balanced_for(self.peers),
                self.peers,
                &mut trng,
            )
        };
        let mut arng = SimRng::seed_from(seed.wrapping_add(17));
        let assignments = assign_neighbors(
            &topo,
            self.peers,
            self.degree,
            TrackerPolicy::Random,
            &mut arng,
        );
        let peers = self.peers;
        let blocks = self.blocks;
        let mut sim: Sim<RuntimeNode<SwarmNode>> = Sim::new(topo, seed, move |id| {
            let nbrs = if (id.0 as usize) < peers {
                assignments[id.0 as usize].clone()
            } else {
                Vec::new()
            };
            let svc = SwarmNode::new(
                id,
                blocks,
                BlockStrategy::RarestRandom,
                nbrs,
                id == NodeId(0),
                SimDuration::from_millis(250),
            );
            RuntimeNode::new(
                svc,
                RuntimeConfig::new(Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 20))))
                    .controller_every(SimDuration::from_secs(5)),
            )
        });
        // Large fleets run in lite-trace mode (compact word fingerprints,
        // empty provenance rings); see the gossip campaign for rationale.
        if peers >= 1000 {
            sim.set_lite(true);
        }
        for p in 0..peers as u32 {
            sim.schedule_start(NodeId(p), SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0xd155, self.horizon);

        // Oracle: every up non-seed peer completed the file.
        let mut incomplete = Vec::new();
        for p in 1..peers as u32 {
            let id = NodeId(p);
            if !sim.is_up(id) {
                continue;
            }
            if sim.actor(id).service().completed_at.is_none() {
                incomplete.push(format!("peer {p}"));
            }
        }
        let verdicts = vec![OracleVerdict::check(
            "swarm.completion",
            incomplete.is_empty(),
            if incomplete.is_empty() {
                "every up peer holds the full file".to_string()
            } else {
                format!("incomplete at horizon: {}", incomplete.join(", "))
            },
        )];
        // Request timers and the controller re-arm forever; skip the
        // quiescence oracle.
        RunReport::from_sim_quiescence(self.name(), seed, plan, &sim, self.horizon, verdicts, false)
            .with_telemetry(fleet_telemetry(&sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = SwarmCampaign::default();
        let r = s.run(1, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn default_plan_recovers() {
        let s = SwarmCampaign::default();
        let plan = s.default_plan(2);
        let r = s.run(2, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn unhealed_partition_blocks_completion() {
        let s = SwarmCampaign::default();
        let others: Vec<u32> = (0..10u32).filter(|&i| i != 4).collect();
        let plan = FaultPlan::none().partition(&[4], &others, 0, None);
        let r = s.run(6, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        assert!(r.failing_oracles().contains(&"swarm.completion"));
    }
}
