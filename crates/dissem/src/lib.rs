//! # cb-dissem — swarming content distribution with exposed choices
//!
//! The BulletPrime / BitTorrent example of §3.1 as a running system: peers
//! swap blocks over the simulated Internet, file maps feed the state model,
//! and two choices are exposed instead of hard-coded — *which block to
//! request* (random vs rarest-random vs runtime-resolved) and, at setup
//! time, *which peers the tracker hands out* (random vs locality-biased,
//! the P4P experiment).

pub mod campaign;
pub mod scenario;
pub mod swarm;
pub mod tracker;

pub use campaign::SwarmCampaign;
pub use scenario::{run_swarm, seed_serialization_floor_secs, SwarmConfig, SwarmOutcome};
pub use swarm::{BlockStrategy, SwarmCheckpoint, SwarmMsg, SwarmNode, BLOCK_BYTES};
pub use tracker::{assign_neighbors, TrackerPolicy};
