//! Swarm experiments: block-strategy crossover (E5) and tracker bias (E6).

use crate::swarm::{BlockStrategy, SwarmNode, BLOCK_BYTES};
use crate::tracker::{assign_neighbors, TrackerPolicy};
use cb_core::choice::Resolver;
use cb_core::resolve::learned::{BanditPolicy, LearnedResolver};
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{RuntimeConfig, RuntimeNode};
use cb_simnet::sim::Sim;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::{AccessLink, NodeId, Topology, TransitStubConfig};

/// Swarm scenario parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of peers (including the seed, node 0).
    pub peers: usize,
    /// Blocks in the file.
    pub blocks: u32,
    /// Tracker neighbor degree.
    pub degree: usize,
    /// Seed's uplink capacity, bits per second.
    pub seed_uplink_bps: u64,
    /// Peer uplink capacity, bits per second.
    pub peer_uplink_bps: u64,
    /// Tracker policy.
    pub tracker: TrackerPolicy,
    /// Simulated time limit.
    pub horizon: SimDuration,
    /// Seed for topology, tracker, and protocol randomness.
    pub seed: u64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            peers: 32,
            blocks: 64,
            degree: 6,
            seed_uplink_bps: 20_000_000,
            peer_uplink_bps: 20_000_000,
            tracker: TrackerPolicy::Random,
            horizon: SimDuration::from_secs(600),
            seed: 1,
        }
    }
}

/// Outcome of one swarm run.
#[derive(Clone, Debug)]
pub struct SwarmOutcome {
    /// Strategy that ran.
    pub strategy: BlockStrategy,
    /// Peers (excluding the seed) that completed within the horizon.
    pub completed: usize,
    /// Mean completion time over finishers, seconds.
    pub mean_time_secs: f64,
    /// Slowest finisher, seconds (the "last peer" metric).
    pub max_time_secs: f64,
    /// Total payload bytes that crossed a domain boundary (ISP transit).
    pub transit_bytes: u64,
    /// Total bytes sent by everyone.
    pub bytes_sent: u64,
    /// Duplicate block deliveries (wasted capacity).
    pub duplicates: u64,
}

fn resolver_for(strategy: BlockStrategy, seed: u64) -> Box<dyn Resolver> {
    match strategy {
        BlockStrategy::Random | BlockStrategy::RarestRandom => Box::new(RandomResolver::new(seed)),
        BlockStrategy::Resolved => Box::new(LearnedResolver::new(
            BanditPolicy::EpsilonGreedy { epsilon: 0.1 },
            seed,
        )),
    }
}

/// Runs one swarm experiment arm.
pub fn run_swarm(cfg: &SwarmConfig, strategy: BlockStrategy) -> SwarmOutcome {
    let ts = TransitStubConfig {
        transit_routers: 4,
        stubs_per_transit: 1,
        hosts_per_stub: cfg.peers.div_ceil(4),
        ..Default::default()
    };
    let mut trng = cb_simnet::rng::SimRng::seed_from(cfg.seed.wrapping_mul(0x5DEECE66D));
    let mut topo = Topology::transit_stub(&ts, &mut trng);
    for p in 0..cfg.peers as u32 {
        let up = if p == 0 {
            cfg.seed_uplink_bps
        } else {
            cfg.peer_uplink_bps
        };
        topo.set_access(
            NodeId(p),
            AccessLink {
                up_bps: up,
                down_bps: 100_000_000,
            },
        );
    }
    let mut arng = cb_simnet::rng::SimRng::seed_from(cfg.seed.wrapping_add(17));
    let assignments = assign_neighbors(&topo, cfg.peers, cfg.degree, cfg.tracker, &mut arng);
    let blocks = cfg.blocks;
    let seed = cfg.seed;
    let peers = cfg.peers;
    let mut sim = Sim::new(topo, seed, move |id| {
        let nbrs = if (id.0 as usize) < peers {
            assignments[id.0 as usize].clone()
        } else {
            Vec::new()
        };
        let svc = SwarmNode::new(
            id,
            blocks,
            strategy,
            nbrs,
            id == NodeId(0),
            SimDuration::from_millis(250),
        );
        RuntimeNode::new(
            svc,
            RuntimeConfig::new(resolver_for(strategy, seed ^ ((id.0 as u64) << 20)))
                .controller_every(SimDuration::from_secs(5)),
        )
    });
    for p in 0..peers as u32 {
        sim.schedule_start(NodeId(p), SimTime::ZERO);
    }
    sim.trace_mut().set_enabled(false);
    sim.run_until(SimTime::ZERO + cfg.horizon);

    let mut times: Vec<f64> = Vec::new();
    let mut transit = 0u64;
    let mut duplicates = 0u64;
    for p in 1..peers as u32 {
        let svc = sim.actor(NodeId(p)).service();
        transit += svc.transit_bytes_in;
        duplicates += svc.duplicate_blocks;
        if let Some(t) = svc.completed_at {
            times.push(t.as_secs_f64());
        }
    }
    let completed = times.len();
    let mean = if times.is_empty() {
        f64::INFINITY
    } else {
        times.iter().sum::<f64>() / completed as f64
    };
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    SwarmOutcome {
        strategy,
        completed,
        mean_time_secs: mean,
        max_time_secs: if completed == 0 { f64::INFINITY } else { max },
        transit_bytes: transit,
        bytes_sent: sim.summary().bytes_sent,
        duplicates,
    }
}

/// The ideal lower bound on distribution time: the seed must push every
/// block once, then the swarm can replicate in parallel.
pub fn seed_serialization_floor_secs(cfg: &SwarmConfig) -> f64 {
    (cfg.blocks as u64 * BLOCK_BYTES as u64 * 8) as f64 / cfg.seed_uplink_bps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> SwarmConfig {
        SwarmConfig {
            peers: 12,
            blocks: 24,
            degree: 4,
            horizon: SimDuration::from_secs(400),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn everyone_completes_with_each_strategy() {
        for strategy in [
            BlockStrategy::Random,
            BlockStrategy::RarestRandom,
            BlockStrategy::Resolved,
        ] {
            let out = run_swarm(&quick(3), strategy);
            assert_eq!(out.completed, 11, "{}: {out:?}", strategy.label());
            assert!(out.mean_time_secs.is_finite());
            assert!(out.max_time_secs >= out.mean_time_secs);
        }
    }

    #[test]
    fn completion_respects_seed_serialization_floor() {
        let cfg = SwarmConfig {
            peers: 8,
            blocks: 32,
            degree: 4,
            seed_uplink_bps: 2_000_000,
            horizon: SimDuration::from_secs(900),
            seed: 4,
            ..Default::default()
        };
        let floor = seed_serialization_floor_secs(&cfg);
        let out = run_swarm(&cfg, BlockStrategy::RarestRandom);
        assert!(out.completed > 0);
        assert!(
            out.max_time_secs >= floor * 0.9,
            "finished in {:.1}s, below the {:.1}s seed floor",
            out.max_time_secs,
            floor
        );
    }

    #[test]
    fn rarest_beats_random_when_seed_is_constrained() {
        // Constrained seed: every duplicate fetch of a common block wastes
        // scarce seed uplink; rarest-first equalizes availability.
        let mut random_total = 0.0;
        let mut rarest_total = 0.0;
        for seed in [5u64, 6, 7] {
            let cfg = SwarmConfig {
                peers: 12,
                blocks: 32,
                degree: 4,
                seed_uplink_bps: 2_000_000,
                horizon: SimDuration::from_secs(1200),
                seed,
                ..Default::default()
            };
            random_total += run_swarm(&cfg, BlockStrategy::Random).max_time_secs;
            rarest_total += run_swarm(&cfg, BlockStrategy::RarestRandom).max_time_secs;
        }
        assert!(
            rarest_total <= random_total * 1.1,
            "rarest {rarest_total:.0}s should not lose to random {random_total:.0}s under a constrained seed"
        );
    }

    #[test]
    fn locality_bias_cuts_transit_bytes() {
        let base = quick(8);
        let random = run_swarm(&base, BlockStrategy::RarestRandom);
        let biased_cfg = SwarmConfig {
            tracker: TrackerPolicy::LocalityBiased {
                local_fraction: 0.8,
            },
            ..base
        };
        let biased = run_swarm(&biased_cfg, BlockStrategy::RarestRandom);
        assert_eq!(biased.completed, 11, "{biased:?}");
        assert!(
            biased.transit_bytes < random.transit_bytes,
            "bias did not reduce transit: {} vs {}",
            biased.transit_bytes,
            random.transit_bytes
        );
    }
}
