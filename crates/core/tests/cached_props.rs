//! Property tests for the cached resolver (paper §3.4: cached decisions
//! keep expensive prediction off the critical path — but only if the cache
//! is *transparent*).
//!
//! Two properties:
//!
//! 1. **Transparency.** For a deterministic, stateless inner resolver, the
//!    cached wrapper serves the *same chosen option key* the inner resolver
//!    would pick — for arbitrary option orders, context keys, interleaved
//!    invalidations, and any refresh interval. (Indices may differ; the
//!    key may not.)
//! 2. **Accounting.** Every resolve is exactly one of hit / miss / refresh:
//!    `hits + misses + refreshes == resolves`, with misses bounded below by
//!    the number of distinct (context, option-set) cache keys touched.

use cb_core::choice::{ChoiceRequest, ContextKey, NullEvaluator, OptionDesc, Resolver};
use cb_core::resolve::CachedResolver;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A deterministic, stateless inner resolver: always picks the option with
/// the smallest key. Its decision depends only on the option *set*, never
/// on order or history — the ideal reference for cache transparency.
struct MinKey;

impl Resolver for MinKey {
    fn resolve(
        &mut self,
        request: &ChoiceRequest<'_>,
        _eval: &mut dyn cb_core::choice::OptionEvaluator,
    ) -> usize {
        request
            .options
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.key)
            .expect("nonempty request")
            .0
    }

    fn name(&self) -> &'static str {
        "minkey"
    }
}

/// Builds a distinct-key option list from raw generator output.
fn distinct_options(raw: &[u64]) -> Vec<OptionDesc> {
    let keys: BTreeSet<u64> = raw.iter().map(|k| k % 50).collect();
    keys.into_iter().map(OptionDesc::key).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache transparency: same chosen key as the inner resolver, for any
    /// option rotation, context, and invalidation pattern.
    #[test]
    fn cached_serves_the_inner_resolvers_key(
        raw_keys in prop::collection::vec(any::<u64>(), 1..8),
        ops in prop::collection::vec(any::<u32>(), 1..60),
        refresh_every in 1u64..6,
    ) {
        let base = distinct_options(&raw_keys);
        let min_key = base.iter().map(|o| o.key).min().expect("nonempty");
        let mut cached = CachedResolver::new(MinKey, refresh_every);
        for &op in &ops {
            // Arbitrary option order: rotate by an op-derived amount.
            let mut options = base.clone();
            let rot = op as usize % options.len();
            options.rotate_left(rot);
            let context = ContextKey(u64::from(op >> 8) % 3);
            if op % 13 == 0 {
                cached.invalidate();
            }
            let req = ChoiceRequest::new("prop.cache", &options).in_context(context);
            let idx = cached.resolve(&req, &mut NullEvaluator);
            prop_assert_eq!(
                options[idx].key, min_key,
                "cached wrapper diverged from inner resolver"
            );
        }
    }

    /// Accounting: hit + miss + refresh partitions the resolve count, and
    /// cold misses cover at least every distinct cache key touched.
    #[test]
    fn hit_miss_refresh_partitions_resolves(
        raw_keys in prop::collection::vec(any::<u64>(), 1..8),
        ops in prop::collection::vec(any::<u32>(), 1..60),
        refresh_every in 1u64..6,
    ) {
        let base = distinct_options(&raw_keys);
        let mut cached = CachedResolver::new(MinKey, refresh_every);
        let mut contexts = BTreeSet::new();
        for &op in &ops {
            let mut options = base.clone();
            let rot = op as usize % options.len();
            options.rotate_left(rot);
            let context = ContextKey(u64::from(op >> 8) % 3);
            contexts.insert(context.0);
            let req = ChoiceRequest::new("prop.cache", &options).in_context(context);
            let _ = cached.resolve(&req, &mut NullEvaluator);
        }
        prop_assert_eq!(
            cached.hits() + cached.misses() + cached.refreshes(),
            ops.len() as u64,
            "every resolve must be exactly one of hit/miss/refresh"
        );
        prop_assert_eq!(cached.resolves(), ops.len() as u64);
        // One option set, so cache keys = contexts touched; each needs at
        // least one cold miss before it can ever hit.
        prop_assert!(
            cached.misses() >= contexts.len() as u64,
            "misses {} < distinct cache keys {}",
            cached.misses(),
            contexts.len()
        );
        // Refreshes only happen once an entry has exhausted its budget, so
        // hits dominate refreshes by the refresh factor.
        prop_assert!(
            cached.hits() >= cached.refreshes().saturating_sub(1) * refresh_every,
            "hits {} vs refreshes {} at interval {}",
            cached.hits(),
            cached.refreshes(),
            refresh_every
        );
    }
}
