//! Property tests for the degradation governor's hysteresis and the
//! resolver ladder's healthy-path transparency.
//!
//! Three invariants, over randomized signal streams and option sets:
//!
//! 1. **No flapping.** A strictly alternating good/bad signal stream never
//!    builds a streak long enough to move the state, for *any* patience
//!    configuration with `down_patience >= 2`.
//! 2. **Monotone, one-level-at-a-time step-down.** Under a constant
//!    worst-grade signal the state only ever worsens, exactly one level
//!    per `down_patience` observations, and the transition accounting
//!    (`transitions == step_downs + recoveries`, decision counts sum to
//!    the number of observations) holds for arbitrary streams.
//! 3. **Healthy ladder is transparent.** With healthy signals and
//!    complete evaluations, [`LadderResolver`] resolves every request to
//!    exactly the option pure [`LookaheadResolver`] picks.

use cb_core::choice::{ChoiceRequest, FnEvaluator, OptionDesc, Prediction, Resolver};
use cb_core::governor::{DegradationGovernor, GovernorConfig, Health, HealthSignals};
use cb_core::resolve::ladder::LadderResolver;
use cb_core::resolve::lookahead::LookaheadResolver;
use cb_simnet::time::SimDuration;
use proptest::prelude::*;

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Signals classified as the given grade (0 = Healthy, 1 = Degraded,
/// 2 = Survival) via snapshot staleness against the default thresholds.
fn graded(grade: u8) -> HealthSignals {
    let secs = match grade {
        0 => 0,
        1 => 15,  // >= stale_degraded (10s), < stale_survival (30s)
        _ => 100, // >= stale_survival
    };
    HealthSignals {
        snapshot_staleness: Some(SimDuration::from_secs(secs)),
        ..HealthSignals::default()
    }
}

fn cfg(down: u32, up: u32) -> GovernorConfig {
    GovernorConfig {
        down_patience: down,
        up_patience: up,
        ..GovernorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A strictly alternating bad/good stream never moves the state: each
    /// direction's streak is reset before it can reach any patience >= 2.
    #[test]
    fn alternating_signals_never_move_the_state(
        down in 2u32..8,
        up in 2u32..16,
        bad_grade in 1u8..3,
        bad_first in any::<bool>(),
        len in 1usize..400,
    ) {
        let mut g = DegradationGovernor::new(cfg(down, up));
        for i in 0..len {
            let bad = (i % 2 == 0) == bad_first;
            let s = if bad { graded(bad_grade) } else { graded(0) };
            g.observe(&s);
        }
        prop_assert_eq!(g.health(), Health::Healthy);
        prop_assert_eq!(g.transitions(), 0, "hysteresis failed to damp flapping");
    }

    /// Under a constant worst-grade signal the state worsens monotonically,
    /// exactly one level per `down_patience` observations, saturating at
    /// `Survival` — never skipping a level, never recovering.
    #[test]
    fn constant_bad_signal_steps_down_monotonically(
        down in 1u32..6,
        up in 2u32..16,
        len in 1usize..40,
    ) {
        let mut g = DegradationGovernor::new(cfg(down, up));
        let mut prev = g.health();
        for i in 1..=len {
            let now = g.observe(&graded(2));
            // Monotone: never better than the previous decision's level.
            prop_assert!(now >= prev, "health improved under a constant bad signal");
            // One level at a time.
            prop_assert!(now.rung() <= prev.rung() + 1, "skipped a level");
            prev = now;
            // Exactly one step per full patience window until saturation.
            let expected_steps = (i / down as usize).min(2);
            prop_assert_eq!(g.step_downs(), expected_steps as u64);
        }
        prop_assert_eq!(g.recoveries(), 0);
    }

    /// Accounting invariants over arbitrary signal streams: transitions
    /// split exactly into step-downs and recoveries, and every observation
    /// is attributed to exactly one health level.
    #[test]
    fn transition_accounting_balances_on_arbitrary_streams(
        down in 1u32..5,
        up in 1u32..10,
        grades in prop::collection::vec(0u8..3, 1..300),
    ) {
        let mut g = DegradationGovernor::new(cfg(down, up));
        for &grade in &grades {
            g.observe(&graded(grade));
        }
        prop_assert_eq!(g.transitions(), g.step_downs() + g.recoveries());
        // Recoveries can never outnumber step-downs: the governor starts
        // at the top.
        prop_assert!(g.recoveries() <= g.step_downs());
        let mut reg = cb_telemetry::Registry::new();
        g.export_metrics(&mut reg);
        let attributed = reg.counter(cb_telemetry::keys::CORE_GOVERNOR_DECISIONS_HEALTHY)
            + reg.counter(cb_telemetry::keys::CORE_GOVERNOR_DECISIONS_DEGRADED)
            + reg.counter(cb_telemetry::keys::CORE_GOVERNOR_DECISIONS_SURVIVAL);
        prop_assert_eq!(attributed, grades.len() as u64);
    }

    /// Differential: with healthy signals and complete evaluations, the
    /// ladder is a transparent wrapper — it resolves every request to the
    /// option pure lookahead picks, for arbitrary option sets and
    /// prediction landscapes.
    #[test]
    fn healthy_ladder_is_pure_lookahead(
        seed in any::<u64>(),
        n_options in 1usize..6,
        decisions in 1usize..12,
    ) {
        let mut ladder = LadderResolver::new();
        let mut pure = LookaheadResolver::new();
        for d in 0..decisions {
            let options: Vec<OptionDesc> = (0..n_options as u64)
                .map(|k| OptionDesc::with_features(k, vec![mix(seed ^ k) as f64 % 100.0]))
                .collect();
            let req = ChoiceRequest::new("prop.ladder", &options);
            let predict = move |i: usize| {
                let h = mix(seed ^ ((d as u64) << 32) ^ i as u64);
                Prediction {
                    objective: (h % 1000) as f64 / 10.0,
                    violations: (h >> 10) % 2,
                    states_explored: 1,
                }
            };
            ladder.observe_health(&HealthSignals::default());
            let a = ladder.resolve(&req, &mut FnEvaluator(predict));
            let b = pure.resolve(&req, &mut FnEvaluator(predict));
            prop_assert_eq!(a, b, "ladder diverged from lookahead at decision {}", d);
            prop_assert_eq!(ladder.last_rung(), 0, "healthy ladder left the top rung");
        }
    }
}
