//! Differential property tests for the fused single-pass evaluator and the
//! cross-option evaluation cache.
//!
//! Three invariants, over randomized transition systems:
//!
//! 1. **Fusion is exact (BFS mode).** [`ModelEvaluator::evaluate`] returns
//!    bitwise the same `violations` and `objective` as the pre-fusion
//!    three-pass reference [`ModelEvaluator::evaluate_multipass`], while
//!    exploring no more (and with liveness in play, strictly fewer) states.
//!    In consequence mode the violation count still matches exactly
//!    (liveness satisfaction there is judged over chains, a documented
//!    semantic refinement).
//! 2. **The cache is transparent.** Resolving the same choice with the
//!    [`EvalCache`] on and off picks the same option *key*, for arbitrary
//!    option sets and rotations of their order.
//! 3. **Memoized predicates survive parallel exploration.** A property
//!    wrapped in a shared `EvalCache` verdict memo produces the same
//!    deterministic exploration report under `parallel_bfs` at 1/2/4/8
//!    threads as the unwrapped property does sequentially.

use cb_core::choice::{ChoiceRequest, OptionDesc, OptionEvaluator, Resolver};
use cb_core::evalcache::EvalCache;
use cb_core::objective::ObjectiveSet;
use cb_core::predict::{ModelEvaluator, PredictConfig};
use cb_core::resolve::LookaheadResolver;
use cb_mck::explore::{bfs, ExplorationReport, ExploreConfig};
use cb_mck::hash::fingerprint;
use cb_mck::parallel::parallel_bfs;
use cb_mck::props::Property;
use cb_mck::system::TransitionSystem;
use cb_simnet::rng::SimRng;
use proptest::prelude::*;
use std::sync::Arc;

/// A seed-parameterized random digraph over `0..states`: from `s`, action
/// `i in 0..fanout` steps to `mix(seed, s, i) % states`. Deterministic,
/// cyclic, and irregular — the shape that shakes out traversal-order and
/// memoization bugs.
#[derive(Clone)]
struct RandGraph {
    seed: u64,
    states: u64,
    fanout: u64,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TransitionSystem for RandGraph {
    type State = u64;
    type Action = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn actions(&self, s: &u64) -> Vec<u64> {
        (0..self.fanout)
            .map(|i| mix(self.seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i) % self.states)
            .collect()
    }

    fn step(&self, _s: &u64, a: &u64) -> u64 {
        *a
    }
}

/// The standard objective mix for these tests: a performance metric, a
/// safety property that some graphs violate, and a bounded-liveness goal.
fn objectives() -> ObjectiveSet<u64> {
    ObjectiveSet::new()
        .maximize("value", 1.0, |s: &u64| (*s % 17) as f64)
        .safety(Property::safety("state is not 1 mod 7", |s: &u64| {
            s % 7 != 1
        }))
        .liveness(Property::eventually("reaches 0 mod 5", |s: &u64| {
            s.is_multiple_of(5)
        }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused single-pass == three-pass reference, bitwise, in BFS mode —
    /// with and without the cache — at a strictly lower state count.
    #[test]
    fn fused_matches_multipass_in_bfs_mode(
        seed in any::<u64>(),
        states in 2u64..60,
        fanout in 1u64..4,
        depth in 1usize..6,
        walks in 0usize..6,
    ) {
        let objectives = objectives();
        let cfg = PredictConfig {
            depth,
            walks,
            consequence: false,
            max_states: 100_000,
            ..Default::default()
        };
        let mk = move |i: usize| RandGraph {
            seed: seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            states,
            fanout,
        };
        for cache in [true, false] {
            let cfg = PredictConfig { cache, ..cfg.clone() };
            let mut fused =
                ModelEvaluator::new(mk, &objectives, cfg.clone(), SimRng::seed_from(seed));
            let mut multi =
                ModelEvaluator::new(mk, &objectives, cfg, SimRng::seed_from(seed));
            for option in 0..2usize {
                let f = fused.evaluate(option);
                let m = multi.evaluate_multipass(option);
                prop_assert_eq!(f.violations, m.violations, "cache={}", cache);
                prop_assert_eq!(f.objective, m.objective, "cache={}", cache);
                prop_assert!(
                    f.states_explored < m.states_explored,
                    "fused must drop the dedicated liveness pass: {} vs {}",
                    f.states_explored,
                    m.states_explored
                );
            }
        }
    }

    /// In consequence mode the fused pass still reports exactly the
    /// violations the reference search finds.
    #[test]
    fn fused_matches_multipass_violations_in_consequence_mode(
        seed in any::<u64>(),
        states in 2u64..60,
        fanout in 1u64..4,
        depth in 1usize..6,
    ) {
        let objectives = objectives();
        let cfg = PredictConfig {
            depth,
            walks: 0,
            consequence: true,
            max_states: 100_000,
            ..Default::default()
        };
        let mk = move |_| RandGraph { seed, states, fanout };
        let mut fused =
            ModelEvaluator::new(mk, &objectives, cfg.clone(), SimRng::seed_from(seed));
        let mut multi = ModelEvaluator::new(mk, &objectives, cfg, SimRng::seed_from(seed));
        prop_assert_eq!(fused.evaluate(0).violations, multi.evaluate_multipass(0).violations);
    }

    /// Cache transparency end to end: a predictive resolution picks the
    /// same option key with the cache on and off, for every rotation of
    /// the option order.
    #[test]
    fn cache_never_changes_the_resolved_key(
        seed in any::<u64>(),
        states in 2u64..40,
        fanout in 1u64..4,
        n_options in 2usize..5,
        walks in 0usize..5,
        consequence in any::<bool>(),
    ) {
        let objectives = objectives();
        let base: Vec<OptionDesc> = (0..n_options as u64).map(OptionDesc::key).collect();
        for rot in 0..n_options {
            let mut options = base.clone();
            options.rotate_left(rot);
            let req = ChoiceRequest::new("prop.predict", &options);
            let resolve_with = |cache: bool| {
                let cfg = PredictConfig {
                    depth: 3,
                    walks,
                    consequence,
                    cache,
                    max_states: 100_000,
                    ..Default::default()
                };
                // The option *key* (not its position) selects the system,
                // so rotations reorder evaluation without changing what
                // each option means.
                let opts = options.clone();
                let mut eval = ModelEvaluator::new(
                    move |i: usize| RandGraph {
                        seed: seed ^ (opts[i].key + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        states,
                        fanout,
                    },
                    &objectives,
                    cfg,
                    SimRng::seed_from(seed),
                );
                let idx = LookaheadResolver::new().resolve(&req, &mut eval);
                options[idx].key
            };
            prop_assert_eq!(
                resolve_with(true),
                resolve_with(false),
                "cache changed the decision at rotation {}",
                rot
            );
        }
    }

    /// An `EvalCache`-memoized property predicate is interchangeable with
    /// the raw predicate under parallel exploration at any thread count:
    /// the deterministic face of the report is identical.
    #[test]
    fn memoized_predicates_survive_parallel_exploration(
        seed in any::<u64>(),
        states in 2u64..80,
        fanout in 1u64..4,
        max_depth in 1usize..7,
    ) {
        let sys = RandGraph { seed, states, fanout };
        let cfg = ExploreConfig {
            max_depth,
            max_states: 1_000_000,
            max_violations: 1_000_000,
            stop_at_first_violation: false,
        };
        let plain = [Property::safety("state is not 1 mod 7", |s: &u64| s % 7 != 1)];
        let reference = face(&bfs(&sys, &plain, &cfg));
        // One shared cache across every thread count: later runs are
        // all-hits and must still agree.
        let cache = Arc::new(EvalCache::new());
        let memo_cache = Arc::clone(&cache);
        let memoized = [Property::safety("state is not 1 mod 7", move |s: &u64| {
            memo_cache.verdict(0, fingerprint(s), || s % 7 != 1)
        })];
        for threads in [1usize, 2, 4, 8] {
            let par = parallel_bfs(&sys, &memoized, &cfg, threads);
            prop_assert_eq!(
                &face(&par),
                &reference,
                "memoized predicate diverged at {} threads",
                threads
            );
        }
        prop_assert_eq!(
            cache.hits() + cache.misses() > 0,
            true,
            "the memo must actually be exercised"
        );
    }
}

/// The deterministic face of an exploration report (worker scheduling may
/// reorder within-level discovery, so violation sets are compared sorted).
type ReportFace = (u64, u64, u64, u64, usize, bool, Vec<(String, usize)>);

fn face(r: &ExplorationReport<u64>) -> ReportFace {
    let mut viols: Vec<(String, usize)> = r
        .violations
        .iter()
        .map(|v| (v.property.clone(), v.path.len()))
        .collect();
    viols.sort();
    (
        r.states_visited,
        r.states_expanded,
        r.transitions,
        r.dedup_hits,
        r.max_depth_reached,
        r.truncated,
        viols,
    )
}
