//! The network model: per-peer performance estimates with aging confidence.
//!
//! Paper §3.3: the runtime, not each application, should own the network
//! model — latency, bandwidth, and loss per peer — built from passive
//! observation (the runtime timestamps every message) and explicit probes.
//! Because "the model can become out-of-date", each estimate carries a
//! confidence that decays exponentially with the age of its last sample
//! (§3.3.2: "incorporate confidence in the information as a function of its
//! age").

use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::BTreeMap;

/// Smoothing factor for the exponentially weighted moving averages.
const EWMA_ALPHA: f64 = 0.25;

/// One peer's link estimate.
#[derive(Clone, Debug)]
pub struct LinkEstimate {
    /// Smoothed one-way latency.
    pub latency: SimDuration,
    /// Smoothed deviation of the latency samples (RFC 6298-style).
    pub latency_dev: SimDuration,
    /// Smoothed available bandwidth, bits per second (0 until observed).
    pub bandwidth_bps: f64,
    /// Smoothed loss indicator in `[0, 1]` (0 until observed).
    pub loss: f64,
    /// When the last sample of any kind arrived.
    pub last_sample: SimTime,
    /// Total samples folded in.
    pub samples: u64,
    /// Multiplicative confidence penalty in `(0, 1]`. Collapses to
    /// [`CONN_BREAK_PENALTY`] when the connection to the peer is observed
    /// broken (partition, crash, reset) — age decay alone is far too slow
    /// to reflect a *known* disruption — and restores to `1.0` on the next
    /// fresh sample of any kind.
    pub confidence_penalty: f64,
}

/// The confidence multiplier applied when a peer's connection is observed
/// broken: the estimate survives (it is still the best guess we have) but
/// is barely trusted until a fresh sample proves the peer reachable again.
pub const CONN_BREAK_PENALTY: f64 = 0.05;

impl LinkEstimate {
    fn new(first_latency: SimDuration, now: SimTime) -> Self {
        LinkEstimate {
            latency: first_latency,
            latency_dev: first_latency / 2,
            bandwidth_bps: 0.0,
            loss: 0.0,
            last_sample: now,
            samples: 1,
            confidence_penalty: 1.0,
        }
    }
}

/// The runtime-owned model of this node's network neighborhood.
///
/// # Examples
///
/// ```
/// use cb_core::model::net::NetworkModel;
/// use cb_simnet::time::{SimDuration, SimTime};
/// use cb_simnet::topology::NodeId;
///
/// let mut net = NetworkModel::new(SimDuration::from_secs(10));
/// net.observe_latency(NodeId(1), SimDuration::from_millis(30), SimTime::from_secs(1));
/// let (lat, conf) = net.predicted_latency(NodeId(1), SimTime::from_secs(1)).unwrap();
/// assert_eq!(lat, SimDuration::from_millis(30));
/// assert!(conf > 0.99);
/// // Ten half-lives later the estimate is still there but barely trusted.
/// let (_, conf_old) = net.predicted_latency(NodeId(1), SimTime::from_secs(101)).unwrap();
/// assert!(conf_old < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// BTreeMap for deterministic iteration in reports.
    links: BTreeMap<NodeId, LinkEstimate>,
    /// Confidence halves every this much time without a sample.
    half_life: SimDuration,
    /// Total observations, for accounting.
    observations: u64,
}

impl NetworkModel {
    /// Creates an empty model whose confidence halves every `half_life`.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is zero.
    pub fn new(half_life: SimDuration) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        NetworkModel {
            links: BTreeMap::new(),
            half_life,
            observations: 0,
        }
    }

    /// Folds in a one-way latency sample (the runtime generates these
    /// passively from message timestamps).
    pub fn observe_latency(&mut self, peer: NodeId, sample: SimDuration, now: SimTime) {
        self.observations += 1;
        match self.links.get_mut(&peer) {
            None => {
                self.links.insert(peer, LinkEstimate::new(sample, now));
            }
            Some(est) => {
                let old = est.latency.as_nanos() as f64;
                let s = sample.as_nanos() as f64;
                let dev = (s - old).abs();
                est.latency =
                    SimDuration::from_nanos((old + EWMA_ALPHA * (s - old)).max(0.0) as u64);
                let old_dev = est.latency_dev.as_nanos() as f64;
                est.latency_dev = SimDuration::from_nanos(
                    (old_dev + EWMA_ALPHA * (dev - old_dev)).max(0.0) as u64,
                );
                est.last_sample = now;
                est.samples += 1;
                est.confidence_penalty = 1.0;
            }
        }
    }

    /// Folds in an achieved-bandwidth sample in bits per second (e.g. from
    /// a timed block transfer).
    pub fn observe_bandwidth(&mut self, peer: NodeId, bps: f64, now: SimTime) {
        self.observations += 1;
        let est = self
            .links
            .entry(peer)
            .or_insert_with(|| LinkEstimate::new(SimDuration::from_millis(50), now));
        est.bandwidth_bps = if est.bandwidth_bps == 0.0 {
            bps
        } else {
            est.bandwidth_bps + EWMA_ALPHA * (bps - est.bandwidth_bps)
        };
        est.last_sample = now;
        est.samples += 1;
        est.confidence_penalty = 1.0;
    }

    /// Folds in a loss indicator: `lost = true` for a missed delivery,
    /// `false` for a successful one.
    pub fn observe_loss(&mut self, peer: NodeId, lost: bool, now: SimTime) {
        self.observations += 1;
        let est = self
            .links
            .entry(peer)
            .or_insert_with(|| LinkEstimate::new(SimDuration::from_millis(50), now));
        let x = if lost { 1.0 } else { 0.0 };
        est.loss += EWMA_ALPHA * (x - est.loss);
        est.last_sample = now;
        est.samples += 1;
        est.confidence_penalty = 1.0;
    }

    /// Records that the connection to `peer` was observed broken (partition
    /// notification, reset, crash report). The estimate itself is kept — it
    /// is still the best structural guess available — but its confidence
    /// collapses by [`CONN_BREAK_PENALTY`] until the next fresh sample of
    /// any kind proves the peer reachable again (§3.3.2: confidence must
    /// react to *known* disruptions faster than age decay alone would).
    ///
    /// Unknown peers are ignored: there is no estimate to distrust.
    pub fn observe_conn_broken(&mut self, peer: NodeId, now: SimTime) {
        if let Some(est) = self.links.get_mut(&peer) {
            self.observations += 1;
            est.confidence_penalty = CONN_BREAK_PENALTY;
            // Deliberately does NOT touch `last_sample`: the break is not a
            // sample, and aging should keep running from the last real one.
            let _ = now;
        }
    }

    /// The raw estimate for a peer, if any sample has ever arrived.
    pub fn estimate(&self, peer: NodeId) -> Option<&LinkEstimate> {
        self.links.get(&peer)
    }

    /// Confidence in the peer's estimate at `now`: 1.0 right after a
    /// sample, halving every `half_life`, multiplied by the link's
    /// [`confidence_penalty`](LinkEstimate::confidence_penalty) (collapsed
    /// after an observed connection break). 0.0 for unknown peers.
    pub fn confidence(&self, peer: NodeId, now: SimTime) -> f64 {
        match self.links.get(&peer) {
            None => 0.0,
            Some(est) => {
                let age = now.saturating_since(est.last_sample);
                est.confidence_penalty
                    * 0.5f64.powf(age.as_secs_f64() / self.half_life.as_secs_f64())
            }
        }
    }

    /// Predicted one-way latency with its confidence, or `None` for unknown
    /// peers.
    pub fn predicted_latency(&self, peer: NodeId, now: SimTime) -> Option<(SimDuration, f64)> {
        self.links
            .get(&peer)
            .map(|est| (est.latency, self.confidence(peer, now)))
    }

    /// Predicted bandwidth (bits per second) with confidence; `None` when
    /// the peer is unknown or no bandwidth sample exists.
    pub fn predicted_bandwidth(&self, peer: NodeId, now: SimTime) -> Option<(f64, f64)> {
        self.links.get(&peer).and_then(|est| {
            if est.bandwidth_bps > 0.0 {
                Some((est.bandwidth_bps, self.confidence(peer, now)))
            } else {
                None
            }
        })
    }

    /// A conservative latency bound: estimate plus `k` deviations, scaled
    /// up when confidence is low. Useful for timeout selection.
    pub fn latency_bound(&self, peer: NodeId, k: f64, now: SimTime) -> Option<SimDuration> {
        let est = self.links.get(&peer)?;
        let conf = self.confidence(peer, now).max(0.1);
        let base = est.latency.as_secs_f64() + k * est.latency_dev.as_secs_f64();
        Some(SimDuration::from_secs_f64(base / conf))
    }

    /// Peers with any estimate, in id order.
    pub fn known_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.links.keys().copied()
    }

    /// Total samples ever folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Drops estimates older than `max_age` (model hygiene under churn).
    pub fn evict_stale(&mut self, now: SimTime, max_age: SimDuration) {
        self.links
            .retain(|_, est| now.saturating_since(est.last_sample) <= max_age);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_is_taken_verbatim() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        net.observe_latency(NodeId(1), ms(40), SimTime::from_secs(1));
        assert_eq!(net.estimate(NodeId(1)).unwrap().latency, ms(40));
        assert_eq!(net.observations(), 1);
    }

    #[test]
    fn ewma_converges_toward_new_level() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        let mut t = SimTime::from_secs(1);
        net.observe_latency(NodeId(1), ms(100), t);
        for _ in 0..40 {
            t += ms(100);
            net.observe_latency(NodeId(1), ms(20), t);
        }
        let lat = net.estimate(NodeId(1)).unwrap().latency;
        assert!(lat < ms(25), "EWMA stuck at {lat}");
        assert!(lat >= ms(20), "EWMA overshot to {lat}");
    }

    #[test]
    fn confidence_decays_with_half_life() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        net.observe_latency(NodeId(2), ms(10), SimTime::from_secs(0));
        let c0 = net.confidence(NodeId(2), SimTime::from_secs(0));
        let c1 = net.confidence(NodeId(2), SimTime::from_secs(10));
        let c2 = net.confidence(NodeId(2), SimTime::from_secs(20));
        assert!((c0 - 1.0).abs() < 1e-9);
        assert!((c1 - 0.5).abs() < 1e-9, "one half-life: {c1}");
        assert!((c2 - 0.25).abs() < 1e-9, "two half-lives: {c2}");
        assert_eq!(net.confidence(NodeId(99), SimTime::from_secs(0)), 0.0);
    }

    #[test]
    fn fresh_sample_restores_confidence() {
        let mut net = NetworkModel::new(SimDuration::from_secs(5));
        net.observe_latency(NodeId(1), ms(10), SimTime::from_secs(0));
        assert!(net.confidence(NodeId(1), SimTime::from_secs(50)) < 0.01);
        net.observe_latency(NodeId(1), ms(12), SimTime::from_secs(50));
        assert!(net.confidence(NodeId(1), SimTime::from_secs(50)) > 0.99);
    }

    #[test]
    fn conn_break_collapses_confidence_until_fresh_sample() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        let t = SimTime::from_secs(1);
        net.observe_latency(NodeId(1), ms(30), t);
        let before = net.confidence(NodeId(1), t);
        assert!(before > 0.99, "pre-break confidence {before}");

        net.observe_conn_broken(NodeId(1), t);
        let after = net.confidence(NodeId(1), t);
        assert!(
            after < before,
            "post-break confidence {after} not below pre-break {before}"
        );
        assert!(
            after <= CONN_BREAK_PENALTY + 1e-12,
            "penalty not applied: {after}"
        );
        // Estimate survives: still the best structural guess.
        assert_eq!(net.estimate(NodeId(1)).unwrap().latency, ms(30));

        // A fresh sample of any kind restores full trust.
        net.observe_loss(NodeId(1), false, t);
        assert!(net.confidence(NodeId(1), t) > 0.99);

        // Breaking an unknown peer is a no-op.
        let obs = net.observations();
        net.observe_conn_broken(NodeId(42), t);
        assert_eq!(net.observations(), obs);
        assert!(net.estimate(NodeId(42)).is_none());
    }

    #[test]
    fn bandwidth_and_loss_tracking() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        let t = SimTime::from_secs(1);
        net.observe_bandwidth(NodeId(3), 1e6, t);
        assert_eq!(net.predicted_bandwidth(NodeId(3), t).unwrap().0, 1e6);
        net.observe_bandwidth(NodeId(3), 2e6, t);
        let (bw, _) = net.predicted_bandwidth(NodeId(3), t).unwrap();
        assert!(bw > 1e6 && bw < 2e6, "bw {bw}");
        // Loss EWMA moves toward 1 with loss events.
        for _ in 0..10 {
            net.observe_loss(NodeId(3), true, t);
        }
        assert!(net.estimate(NodeId(3)).unwrap().loss > 0.8);
        for _ in 0..10 {
            net.observe_loss(NodeId(3), false, t);
        }
        assert!(net.estimate(NodeId(3)).unwrap().loss < 0.2);
    }

    #[test]
    fn latency_bound_grows_when_stale() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        net.observe_latency(NodeId(1), ms(20), SimTime::from_secs(0));
        let fresh = net
            .latency_bound(NodeId(1), 2.0, SimTime::from_secs(0))
            .unwrap();
        let stale = net
            .latency_bound(NodeId(1), 2.0, SimTime::from_secs(40))
            .unwrap();
        assert!(stale > fresh, "stale bound {stale} <= fresh {fresh}");
        assert!(net
            .latency_bound(NodeId(9), 2.0, SimTime::from_secs(0))
            .is_none());
    }

    #[test]
    fn unknown_bandwidth_is_none_even_with_latency() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        net.observe_latency(NodeId(1), ms(20), SimTime::from_secs(0));
        assert!(net
            .predicted_bandwidth(NodeId(1), SimTime::from_secs(0))
            .is_none());
    }

    #[test]
    fn eviction_removes_only_stale() {
        let mut net = NetworkModel::new(SimDuration::from_secs(10));
        net.observe_latency(NodeId(1), ms(20), SimTime::from_secs(0));
        net.observe_latency(NodeId(2), ms(20), SimTime::from_secs(100));
        net.evict_stale(SimTime::from_secs(101), SimDuration::from_secs(50));
        let peers: Vec<NodeId> = net.known_peers().collect();
        assert_eq!(peers, vec![NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_rejected() {
        let _ = NetworkModel::new(SimDuration::ZERO);
    }
}
