//! The state model: neighbor checkpoints and generic nodes.
//!
//! Paper §3.3: each node keeps a model of *system-wide* state built from
//! checkpoints its neighbors ship periodically. Two realities shape the
//! design. First, information is partial — nodes outside the collected
//! neighborhood appear as **generic (dummy) nodes** whose state is
//! deliberately under-specified, so predictions can account for unknown
//! participants without pretending to know them. Second, information is
//! stale — every checkpoint is stamped with its collection time, and the
//! consumer decides how much staleness it tolerates.

use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::BTreeMap;

/// A checkpoint of one node's service state, stamped with when it was taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamped<C> {
    /// The checkpointed state.
    pub state: C,
    /// When the owner took the checkpoint (its local simulated time).
    pub taken_at: SimTime,
}

/// What the model knows about one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeView<'a, C> {
    /// A checkpoint exists; it may be stale.
    Known(&'a Stamped<C>),
    /// No checkpoint: the node is modelled as a generic (dummy) node whose
    /// state is under-specified.
    Generic,
}

impl<'a, C> NodeView<'a, C> {
    /// True when this is a generic (unknown) node.
    pub fn is_generic(&self) -> bool {
        matches!(self, NodeView::Generic)
    }
}

/// A consistent cut of the neighborhood: the newest mutually compatible set
/// of checkpoints the runtime has assembled.
#[derive(Clone, Debug)]
pub struct Snapshot<C> {
    /// When the snapshot was assembled.
    pub at: SimTime,
    /// Checkpoints by node, in id order.
    pub nodes: BTreeMap<NodeId, Stamped<C>>,
}

impl<C> Snapshot<C> {
    /// Nodes present in the snapshot.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Age of the oldest checkpoint relative to the snapshot time.
    pub fn max_staleness(&self) -> SimDuration {
        self.nodes
            .values()
            .map(|s| self.at.saturating_since(s.taken_at))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The runtime's store of neighbor checkpoints.
///
/// # Examples
///
/// ```
/// use cb_core::model::state::StateModel;
/// use cb_simnet::time::{SimDuration, SimTime};
/// use cb_simnet::topology::NodeId;
///
/// let mut model: StateModel<u32> = StateModel::new(SimDuration::from_secs(30));
/// model.update(NodeId(1), 42, SimTime::from_secs(1), SimTime::from_secs(1));
/// assert!(!model.view(NodeId(1)).is_generic());
/// assert!(model.view(NodeId(2)).is_generic());
/// ```
#[derive(Clone, Debug)]
pub struct StateModel<C> {
    neighbors: BTreeMap<NodeId, Stamped<C>>,
    /// Checkpoints older than this are treated as generic at snapshot time.
    max_staleness: SimDuration,
    updates: u64,
}

impl<C: Clone> StateModel<C> {
    /// Creates an empty model tolerating the given checkpoint staleness.
    pub fn new(max_staleness: SimDuration) -> Self {
        StateModel {
            neighbors: BTreeMap::new(),
            max_staleness,
            updates: 0,
        }
    }

    /// Stores (or refreshes) a neighbor's checkpoint.
    ///
    /// `taken_at` is when the checkpoint was produced at its owner;
    /// `received_at` is the local arrival time. Checkpoints never move
    /// backwards: an older `taken_at` than the stored one is ignored.
    pub fn update(&mut self, peer: NodeId, state: C, taken_at: SimTime, received_at: SimTime) {
        let _ = received_at;
        match self.neighbors.get(&peer) {
            Some(existing) if existing.taken_at > taken_at => {}
            _ => {
                self.neighbors.insert(peer, Stamped { state, taken_at });
                self.updates += 1;
            }
        }
    }

    /// Forgets a neighbor (e.g. after its crash was detected).
    pub fn remove(&mut self, peer: NodeId) {
        self.neighbors.remove(&peer);
    }

    /// What the model knows about `peer` right now, ignoring staleness.
    pub fn view(&self, peer: NodeId) -> NodeView<'_, C> {
        match self.neighbors.get(&peer) {
            Some(s) => NodeView::Known(s),
            None => NodeView::Generic,
        }
    }

    /// Neighbors with stored checkpoints, in id order.
    pub fn known(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors.keys().copied()
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when no checkpoint is stored.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Total checkpoint updates accepted.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Age of the *oldest* stored checkpoint at `now`, or `None` when the
    /// model is empty. This is the pessimistic staleness signal the
    /// degradation governor consumes: predictions are only as trustworthy
    /// as the stalest neighbor state they build on.
    pub fn oldest_age(&self, now: SimTime) -> Option<SimDuration> {
        self.neighbors
            .values()
            .map(|s| now.saturating_since(s.taken_at))
            .max()
    }

    /// Assembles the freshest consistent snapshot at `now`: all checkpoints
    /// no older than the staleness bound. Returns `None` when nothing
    /// usable exists.
    pub fn snapshot(&self, now: SimTime) -> Option<Snapshot<C>> {
        let nodes: BTreeMap<NodeId, Stamped<C>> = self
            .neighbors
            .iter()
            .filter(|(_, s)| now.saturating_since(s.taken_at) <= self.max_staleness)
            .map(|(&n, s)| (n, s.clone()))
            .collect();
        if nodes.is_empty() {
            None
        } else {
            Some(Snapshot { at: now, nodes })
        }
    }

    /// Like [`StateModel::snapshot`] but also inserts the local node's own
    /// current state, which is always fresh.
    pub fn snapshot_with_self(&self, me: NodeId, my_state: C, now: SimTime) -> Snapshot<C> {
        let mut snap = self.snapshot(now).unwrap_or(Snapshot {
            at: now,
            nodes: BTreeMap::new(),
        });
        snap.nodes.insert(
            me,
            Stamped {
                state: my_state,
                taken_at: now,
            },
        );
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StateModel<String> {
        StateModel::new(SimDuration::from_secs(30))
    }

    #[test]
    fn update_and_view() {
        let mut m = model();
        m.update(
            NodeId(1),
            "a".into(),
            SimTime::from_secs(1),
            SimTime::from_secs(1),
        );
        match m.view(NodeId(1)) {
            NodeView::Known(s) => assert_eq!(s.state, "a"),
            NodeView::Generic => panic!("should be known"),
        }
        assert!(m.view(NodeId(5)).is_generic());
        assert_eq!(m.len(), 1);
        assert_eq!(m.updates(), 1);
    }

    #[test]
    fn stale_update_ignored_fresh_accepted() {
        let mut m = model();
        m.update(
            NodeId(1),
            "new".into(),
            SimTime::from_secs(10),
            SimTime::from_secs(10),
        );
        m.update(
            NodeId(1),
            "old".into(),
            SimTime::from_secs(5),
            SimTime::from_secs(11),
        );
        match m.view(NodeId(1)) {
            NodeView::Known(s) => assert_eq!(s.state, "new"),
            NodeView::Generic => panic!(),
        }
        m.update(
            NodeId(1),
            "newer".into(),
            SimTime::from_secs(20),
            SimTime::from_secs(20),
        );
        match m.view(NodeId(1)) {
            NodeView::Known(s) => assert_eq!(s.state, "newer"),
            NodeView::Generic => panic!(),
        }
        assert_eq!(m.updates(), 2);
    }

    #[test]
    fn snapshot_filters_stale_checkpoints() {
        let mut m = model();
        m.update(
            NodeId(1),
            "fresh".into(),
            SimTime::from_secs(100),
            SimTime::from_secs(100),
        );
        m.update(
            NodeId(2),
            "stale".into(),
            SimTime::from_secs(10),
            SimTime::from_secs(10),
        );
        let snap = m
            .snapshot(SimTime::from_secs(110))
            .expect("snapshot exists");
        assert_eq!(snap.members().collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(snap.max_staleness(), SimDuration::from_secs(10));
    }

    #[test]
    fn oldest_age_tracks_the_stalest_checkpoint() {
        let mut m = model();
        assert_eq!(m.oldest_age(SimTime::from_secs(10)), None);
        m.update(
            NodeId(1),
            "fresh".into(),
            SimTime::from_secs(9),
            SimTime::from_secs(9),
        );
        m.update(
            NodeId(2),
            "old".into(),
            SimTime::from_secs(2),
            SimTime::from_secs(2),
        );
        assert_eq!(
            m.oldest_age(SimTime::from_secs(10)),
            Some(SimDuration::from_secs(8))
        );
    }

    #[test]
    fn snapshot_none_when_everything_stale() {
        let mut m = model();
        m.update(
            NodeId(1),
            "x".into(),
            SimTime::from_secs(0),
            SimTime::from_secs(0),
        );
        assert!(m.snapshot(SimTime::from_secs(1000)).is_none());
    }

    #[test]
    fn snapshot_with_self_always_has_me() {
        let m = model();
        let snap = m.snapshot_with_self(NodeId(0), "me".into(), SimTime::from_secs(1));
        assert_eq!(snap.nodes.len(), 1);
        assert_eq!(snap.nodes[&NodeId(0)].state, "me");
        assert_eq!(snap.max_staleness(), SimDuration::ZERO);
    }

    #[test]
    fn remove_makes_generic() {
        let mut m = model();
        m.update(
            NodeId(3),
            "x".into(),
            SimTime::from_secs(1),
            SimTime::from_secs(1),
        );
        m.remove(NodeId(3));
        assert!(m.view(NodeId(3)).is_generic());
        assert!(m.is_empty());
    }

    #[test]
    fn known_iterates_in_id_order() {
        let mut m = model();
        for id in [5u32, 1, 3] {
            m.update(
                NodeId(id),
                "x".into(),
                SimTime::from_secs(1),
                SimTime::from_secs(1),
            );
        }
        assert_eq!(
            m.known().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(3), NodeId(5)]
        );
    }
}
