//! The predictive system model (paper §3.3).
//!
//! Two halves, both owned by the runtime rather than the application:
//!
//! * [`net`] — the network model: per-peer latency/bandwidth/loss estimates
//!   built from passive observation and probes, each with a confidence that
//!   decays as the estimate ages.
//! * [`state`] — the state model: neighbors' checkpoints (stamped,
//!   staleness-bounded) plus the *generic node* abstraction for the parts
//!   of the system no checkpoint covers.

pub mod net;
pub mod state;

pub use net::{LinkEstimate, NetworkModel};
pub use state::{NodeView, Snapshot, Stamped, StateModel};
