//! Cross-option memoization for predictive evaluation.
//!
//! Sibling options of one [`ChoiceRequest`] explore futures that overlap
//! almost entirely: the predictive models differ only in the first step, so
//! most states reached by option *i*'s search are reached again by option
//! *i+1*'s. An [`EvalCache`] exploits that overlap by memoizing — keyed by
//! state **fingerprint** — the two pure-per-decision quantities evaluation
//! keeps recomputing:
//!
//! * **property verdicts** (`Property::holds` per safety/liveness property),
//! * **objective scores** (`ObjectiveSet::score` on walk end states).
//!
//! The cache lives for one decision: [`ModelEvaluator::new`] creates one
//! and shares it across the options of that choice. It can also be shared
//! *across refreshes of the same choice epoch* (a `CachedResolver` that
//! re-resolves the same request when its context shifts) via
//! [`ModelEvaluator::with_cache`]; call [`EvalCache::clear`] when the epoch
//! — i.e. the snapshot the predictive models are built from — advances, so
//! stale verdicts cannot leak across epochs.
//!
//! # Transparency
//!
//! Caching must never change which option a resolver picks. That holds by
//! construction: a memoized verdict/score is exactly the value the
//! predicate/metric returned for that fingerprint, search traversal order
//! is untouched, and walk RNG consumption depends only on action weights,
//! never on scores. Two states that collide on their 64-bit fingerprint
//! would share a verdict — the same identification the visited-set dedup in
//! `cb-mck` already makes. The proptest suite pins this: resolutions with
//! the cache on and off must pick the same option key.
//!
//! [`ChoiceRequest`]: crate::choice::ChoiceRequest
//! [`ModelEvaluator::new`]: crate::predict::ModelEvaluator::new
//! [`ModelEvaluator::with_cache`]: crate::predict::ModelEvaluator::with_cache

use cb_mck::hash::FingerprintMap;
use std::sync::Mutex;

/// Up to this many properties can be memoized per decision (bitmask width).
pub const MAX_CACHED_PROPS: usize = 64;

#[derive(Default)]
struct Inner {
    /// fingerprint -> (checked bitmask, holds bitmask), one bit per
    /// property slot.
    verdicts: FingerprintMap<(u64, u64)>,
    /// fingerprint -> combined weighted objective score.
    scores: FingerprintMap<f64>,
    hits: u64,
    misses: u64,
}

/// Per-decision memo of property verdicts and objective scores, keyed by
/// state fingerprint. See the module docs for lifecycle and transparency.
///
/// Thread-safe (`Mutex`-guarded) so wrapped property predicates satisfy the
/// `Send + Sync` bound `Property` requires; within one decision the lock is
/// uncontended.
#[derive(Default)]
pub struct EvalCache {
    inner: Mutex<Inner>,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Returns the memoized verdict of property `slot` on the state with
    /// fingerprint `fp`, computing and recording it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MAX_CACHED_PROPS`.
    pub fn verdict(&self, slot: usize, fp: u64, compute: impl FnOnce() -> bool) -> bool {
        assert!(slot < MAX_CACHED_PROPS, "property slot out of range");
        let bit = 1u64 << slot;
        let mut inner = self.inner.lock().expect("evalcache poisoned");
        let entry = inner.verdicts.entry(fp).or_insert((0, 0));
        if entry.0 & bit != 0 {
            let holds = entry.1 & bit != 0;
            inner.hits += 1;
            return holds;
        }
        let holds = compute();
        entry.0 |= bit;
        if holds {
            entry.1 |= bit;
        }
        inner.misses += 1;
        holds
    }

    /// Returns the memoized objective score of the state with fingerprint
    /// `fp`, computing and recording it on first sight.
    pub fn score(&self, fp: u64, compute: impl FnOnce() -> f64) -> f64 {
        let mut inner = self.inner.lock().expect("evalcache poisoned");
        if let Some(&score) = inner.scores.get(&fp) {
            inner.hits += 1;
            return score;
        }
        let score = compute();
        inner.scores.insert(fp, score);
        inner.misses += 1;
        score
    }

    /// Drops every memoized entry (epoch advance). Hit/miss counters are
    /// preserved — they account the decision stream, not one epoch.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("evalcache poisoned");
        inner.verdicts.clear();
        inner.scores.clear();
    }

    /// Lookups answered from a memoized entry.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("evalcache poisoned").hits
    }

    /// Lookups that computed fresh.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("evalcache poisoned").misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_memoize_per_slot_and_fingerprint() {
        let cache = EvalCache::new();
        let mut calls = 0;
        assert!(cache.verdict(0, 7, || {
            calls += 1;
            true
        }));
        // Same slot+fp: served from cache, compute not run.
        assert!(cache.verdict(0, 7, || {
            calls += 1;
            false // would flip the verdict if (wrongly) recomputed
        }));
        assert_eq!(calls, 1);
        // Different slot on the same fingerprint is independent.
        assert!(!cache.verdict(1, 7, || false));
        // Different fingerprint on the same slot is independent.
        assert!(!cache.verdict(0, 8, || false));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn false_verdicts_are_cached_too() {
        let cache = EvalCache::new();
        assert!(!cache.verdict(3, 42, || false));
        // A hit must return the recorded false, not "unchecked".
        assert!(!cache.verdict(3, 42, || panic!("must not recompute")));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn scores_memoize() {
        let cache = EvalCache::new();
        assert_eq!(cache.score(5, || 2.5), 2.5);
        assert_eq!(cache.score(5, || panic!("must not recompute")), 2.5);
        assert_eq!(cache.score(6, || -1.0), -1.0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_accounting() {
        let cache = EvalCache::new();
        cache.verdict(0, 1, || true);
        cache.score(1, || 9.0);
        cache.clear();
        // Recomputes after clear (epoch advanced; values may differ now).
        assert!(!cache.verdict(0, 1, || false));
        assert_eq!(cache.score(1, || 3.0), 3.0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn slot_overflow_rejected() {
        EvalCache::new().verdict(64, 0, || true);
    }
}
