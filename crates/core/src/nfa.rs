//! Non-deterministic handler sets (paper §3.1).
//!
//! > "Another way of presenting the choices is to implement a distributed
//! > system as a non-deterministic finite state automaton (NFA) with
//! > multiple applicable handlers. Instead of hard coding the logic for
//! > making several choices into one message handler, the programmer can
//! > write several, simpler handlers for the same type of message. […] It
//! > is then the runtime's task to resolve the non-determinism."
//!
//! A [`HandlerSet`] holds named handlers, each with a *guard* (is this
//! handler applicable to this message in this state?) and a *body*. On
//! dispatch, the applicable subset is computed; when more than one handler
//! applies, the selection is exposed to the runtime as an ordinary choice
//! (`"nfa.<set name>"`, options keyed by handler index and carrying the
//! handler's feature hint), so the same resolver machinery — random,
//! learned, predictive — decides which transition the automaton takes.

use crate::choice::{ContextKey, OptionDesc};
use crate::runtime::ServiceCtx;
use cb_simnet::topology::NodeId;
use std::fmt;

/// A guard: is this handler applicable?
type Guard<S, M> = Box<dyn Fn(&S, NodeId, &M) -> bool>;

/// A handler body: consume the message, mutate service state, use the ctx.
type Body<S, M, C> = Box<dyn FnMut(&mut S, &mut ServiceCtx<'_, '_, M, C>, NodeId, M)>;

/// A feature hint evaluated on applicable handlers, shown to the resolver.
type FeatureFn<S, M> = Box<dyn Fn(&S, NodeId, &M) -> Vec<f64>>;

struct Handler<S, M, C> {
    name: &'static str,
    guard: Guard<S, M>,
    body: Body<S, M, C>,
    features: Option<FeatureFn<S, M>>,
}

/// What a dispatch did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// No guard matched; the message was dropped.
    NoneApplicable,
    /// Exactly one handler applied — no choice was needed.
    Deterministic(&'static str),
    /// Multiple handlers applied; the runtime chose this one.
    Resolved(&'static str),
}

impl Dispatch {
    /// The executed handler's name, if any ran.
    pub fn handler(&self) -> Option<&'static str> {
        match self {
            Dispatch::NoneApplicable => None,
            Dispatch::Deterministic(n) | Dispatch::Resolved(n) => Some(n),
        }
    }
}

/// A named set of alternative handlers for one message type.
///
/// # Examples
///
/// See `examples/nfa.rs` for a complete service; the shape is:
///
/// ```ignore
/// let handlers = HandlerSet::new("cache.get")
///     .handler("serve-local", |s, _, m| s.has(m), |s, ctx, from, m| { ... })
///     .handler("forward-origin", |_, _, _| true, |s, ctx, from, m| { ... });
/// // In Service::on_message:
/// handlers.dispatch(&mut self.state, ctx, from, msg);
/// ```
pub struct HandlerSet<S, M, C> {
    name: &'static str,
    handlers: Vec<Handler<S, M, C>>,
    /// Dispatches that needed runtime resolution.
    pub resolved: u64,
    /// Dispatches with a single applicable handler.
    pub deterministic: u64,
    /// Dispatches with no applicable handler.
    pub dropped: u64,
}

impl<S, M, C> fmt::Debug for HandlerSet<S, M, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerSet")
            .field("name", &self.name)
            .field(
                "handlers",
                &self.handlers.iter().map(|h| h.name).collect::<Vec<_>>(),
            )
            .field("resolved", &self.resolved)
            .finish()
    }
}

impl<S, M, C> HandlerSet<S, M, C>
where
    M: Clone + fmt::Debug + 'static,
    C: Clone + fmt::Debug + 'static,
{
    /// Creates an empty set; `name` becomes the choice-point id
    /// (`"nfa.<name>"` appears in decision logs).
    pub fn new(name: &'static str) -> Self {
        HandlerSet {
            name,
            handlers: Vec::new(),
            resolved: 0,
            deterministic: 0,
            dropped: 0,
        }
    }

    /// Adds a handler with a guard and a body.
    pub fn handler(
        mut self,
        name: &'static str,
        guard: impl Fn(&S, NodeId, &M) -> bool + 'static,
        body: impl FnMut(&mut S, &mut ServiceCtx<'_, '_, M, C>, NodeId, M) + 'static,
    ) -> Self {
        self.handlers.push(Handler {
            name,
            guard: Box::new(guard),
            body: Box::new(body),
            features: None,
        });
        self
    }

    /// Adds a feature hint to the most recently added handler; the resolver
    /// sees these as the option's features.
    ///
    /// # Panics
    ///
    /// Panics when no handler has been added yet.
    pub fn with_features(
        mut self,
        features: impl Fn(&S, NodeId, &M) -> Vec<f64> + 'static,
    ) -> Self {
        let last = self
            .handlers
            .last_mut()
            .expect("with_features needs a handler first");
        last.features = Some(Box::new(features));
        self
    }

    /// Handler names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.handlers.iter().map(|h| h.name).collect()
    }

    /// Dispatches a message: evaluates guards, exposes the ambiguity as a
    /// runtime choice when several handlers apply, and runs the selected
    /// body.
    pub fn dispatch(
        &mut self,
        state: &mut S,
        ctx: &mut ServiceCtx<'_, '_, M, C>,
        from: NodeId,
        msg: M,
    ) -> Dispatch {
        let applicable: Vec<usize> = self
            .handlers
            .iter()
            .enumerate()
            .filter(|(_, h)| (h.guard)(state, from, &msg))
            .map(|(i, _)| i)
            .collect();
        match applicable.len() {
            0 => {
                self.dropped += 1;
                Dispatch::NoneApplicable
            }
            1 => {
                self.deterministic += 1;
                let i = applicable[0];
                let name = self.handlers[i].name;
                (self.handlers[i].body)(state, ctx, from, msg);
                Dispatch::Deterministic(name)
            }
            _ => {
                let options: Vec<OptionDesc> = applicable
                    .iter()
                    .map(|&i| {
                        let features = self.handlers[i]
                            .features
                            .as_ref()
                            .map_or(Vec::new(), |f| f(state, from, &msg));
                        OptionDesc::with_features(i as u64, features)
                    })
                    .collect();
                let pick = ctx.choose(self.name, ContextKey::default(), &options);
                let i = applicable[pick];
                self.resolved += 1;
                let name = self.handlers[i].name;
                (self.handlers[i].body)(state, ctx, from, msg);
                Dispatch::Resolved(name)
            }
        }
    }

    /// Reports the realized reward of the handler chosen for a past
    /// dispatch (by handler index key) so learned resolvers improve.
    pub fn feedback(
        &self,
        ctx: &mut ServiceCtx<'_, '_, M, C>,
        handler_name: &'static str,
        reward: f64,
    ) {
        if let Some(i) = self.handlers.iter().position(|h| h.name == handler_name) {
            ctx.feedback(self.name, ContextKey::default(), i as u64, reward);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::state::StateModel;
    use crate::resolve::random::RandomResolver;
    use crate::runtime::{RuntimeConfig, RuntimeNode, Service};
    use cb_simnet::sim::Sim;
    use cb_simnet::time::{SimDuration, SimTime};
    use cb_simnet::topology::Topology;

    /// A toy cache: Get(k) is answered locally when cached, forwarded to
    /// the origin (node 0) otherwise — and for cached keys *both* handlers
    /// apply, so the runtime decides freshness-vs-latency.
    struct CacheState {
        cached: Vec<u32>,
        served_local: u32,
        forwarded: u32,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Get(u32),
        Answer(#[allow(dead_code)] u32),
    }

    struct CacheSvc {
        state: CacheState,
        handlers: HandlerSet<CacheState, Msg, u8>,
    }

    fn make_handlers() -> HandlerSet<CacheState, Msg, u8> {
        HandlerSet::new("nfa.cache-get")
            .handler(
                "serve-local",
                |s: &CacheState, _, m| matches!(m, Msg::Get(k) if s.cached.contains(k)),
                |s, ctx, from, m| {
                    if let Msg::Get(k) = m {
                        s.served_local += 1;
                        ctx.send(from, Msg::Answer(k));
                    }
                },
            )
            .with_features(|_, _, _| vec![1.0])
            .handler(
                "forward-origin",
                |_, _, m| matches!(m, Msg::Get(_)),
                |s, ctx, _from, m| {
                    if let Msg::Get(k) = m {
                        s.forwarded += 1;
                        ctx.send(NodeId(0), Msg::Get(k));
                    }
                },
            )
            .with_features(|_, _, _| vec![0.0])
    }

    impl Service for CacheSvc {
        type Msg = Msg;
        type Checkpoint = u8;

        fn on_message(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u8>, from: NodeId, msg: Msg) {
            if let Msg::Answer(_) = msg {
                return;
            }
            if ctx.id() == NodeId(0) {
                // The origin always answers directly.
                if let Msg::Get(k) = msg {
                    ctx.send(from, Msg::Answer(k));
                }
                return;
            }
            self.handlers.dispatch(&mut self.state, ctx, from, msg);
        }

        fn checkpoint(&self, _m: &StateModel<u8>) -> u8 {
            0
        }

        fn neighbors(&self) -> Vec<NodeId> {
            Vec::new()
        }
    }

    fn run_cache(keys: &'static [u32]) -> Sim<RuntimeNode<CacheSvc>> {
        let topo = Topology::star(3, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 17, |_| {
            RuntimeNode::new(
                CacheSvc {
                    state: CacheState {
                        cached: vec![1, 2],
                        served_local: 0,
                        forwarded: 0,
                    },
                    handlers: make_handlers(),
                },
                RuntimeConfig::new(Box::new(RandomResolver::new(3))),
            )
        });
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        for &k in keys {
            sim.invoke(NodeId(2), |_, ctx| {
                let now = ctx.now();
                ctx.send(
                    NodeId(1),
                    crate::runtime::Envelope::App {
                        msg: Msg::Get(k),
                        sent_at: now,
                    },
                );
            });
        }
        sim.run_until_quiescent(SimTime::from_secs(10));
        sim
    }

    #[test]
    fn single_applicable_handler_is_deterministic() {
        // Key 9 is not cached: only forward-origin applies.
        let sim = run_cache(&[9]);
        let svc = sim.actor(NodeId(1)).service();
        assert_eq!(svc.state.forwarded, 1);
        assert_eq!(svc.state.served_local, 0);
        assert_eq!(svc.handlers.deterministic, 1);
        assert_eq!(svc.handlers.resolved, 0);
        assert!(
            sim.actor(NodeId(1)).decisions().is_empty(),
            "no choice should be logged"
        );
    }

    #[test]
    fn ambiguous_dispatch_is_exposed_as_a_choice() {
        // Key 1 is cached: both handlers apply; the runtime resolves.
        let sim = run_cache(&[1]);
        let svc = sim.actor(NodeId(1)).service();
        assert_eq!(svc.handlers.resolved, 1);
        let decisions = sim.actor(NodeId(1)).decisions();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].id, "nfa.cache-get");
        assert_eq!(decisions[0].option_keys, vec![0, 1]);
    }

    #[test]
    fn unmatched_messages_are_counted_dropped() {
        // Dispatch requires a live ctx; drive through a minimal sim.
        struct Null {
            handlers: HandlerSet<u8, u8, u8>,
            outcome: Option<Dispatch>,
        }
        impl Service for Null {
            type Msg = u8;
            type Checkpoint = u8;
            fn on_message(&mut self, ctx: &mut ServiceCtx<'_, '_, u8, u8>, from: NodeId, msg: u8) {
                let mut state = 0;
                self.outcome = Some(self.handlers.dispatch(&mut state, ctx, from, msg));
            }
            fn checkpoint(&self, _m: &StateModel<u8>) -> u8 {
                0
            }
            fn neighbors(&self) -> Vec<NodeId> {
                Vec::new()
            }
        }
        let topo = Topology::star(2, SimDuration::from_millis(1), 1_000_000);
        let mut sim = Sim::new(topo, 1, move |_| {
            RuntimeNode::new(
                Null {
                    handlers: HandlerSet::new("nfa.never").handler(
                        "never",
                        |_, _, _| false,
                        |_, _, _, _| {},
                    ),
                    outcome: None,
                },
                RuntimeConfig::new(Box::new(RandomResolver::new(1))),
            )
        });
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_, ctx| {
            let now = ctx.now();
            ctx.send(
                NodeId(1),
                crate::runtime::Envelope::App {
                    msg: 7,
                    sent_at: now,
                },
            );
        });
        sim.run_until_quiescent(SimTime::from_secs(5));
        let svc = sim.actor(NodeId(1)).service();
        assert_eq!(svc.outcome, Some(Dispatch::NoneApplicable));
        assert_eq!(svc.handlers.dropped, 1);
    }

    #[test]
    fn feedback_teaches_a_learned_resolver_which_handler_wins() {
        use crate::resolve::learned::{BanditPolicy, LearnedResolver};

        // Same cache service, but rewards: serving locally pays 1.0,
        // forwarding pays 0.1. The learned resolver should converge on
        // serve-local for cached keys.
        struct Learny {
            state: CacheState,
            handlers: HandlerSet<CacheState, Msg, u8>,
        }
        impl Service for Learny {
            type Msg = Msg;
            type Checkpoint = u8;
            fn on_message(
                &mut self,
                ctx: &mut ServiceCtx<'_, '_, Msg, u8>,
                from: NodeId,
                msg: Msg,
            ) {
                if ctx.id() != NodeId(1) {
                    return;
                }
                let outcome = self.handlers.dispatch(&mut self.state, ctx, from, msg);
                if let Some(name) = outcome.handler() {
                    let reward = if name == "serve-local" { 1.0 } else { 0.1 };
                    self.handlers.feedback(ctx, name, reward);
                }
            }
            fn checkpoint(&self, _m: &StateModel<u8>) -> u8 {
                0
            }
            fn neighbors(&self) -> Vec<NodeId> {
                Vec::new()
            }
        }
        let topo = Topology::star(3, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 91, |_| {
            RuntimeNode::new(
                Learny {
                    state: CacheState {
                        cached: vec![1],
                        served_local: 0,
                        forwarded: 0,
                    },
                    handlers: make_handlers(),
                },
                RuntimeConfig::new(Box::new(LearnedResolver::new(
                    BanditPolicy::EpsilonGreedy { epsilon: 0.05 },
                    7,
                ))),
            )
        });
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        for _ in 0..40 {
            sim.invoke(NodeId(2), |_, ctx| {
                let now = ctx.now();
                ctx.send(
                    NodeId(1),
                    crate::runtime::Envelope::App {
                        msg: Msg::Get(1),
                        sent_at: now,
                    },
                );
            });
        }
        sim.run_until_quiescent(SimTime::from_secs(30));
        let svc = sim.actor(NodeId(1)).service();
        assert!(
            svc.state.served_local > svc.state.forwarded * 2,
            "learning failed: local {} vs forwarded {}",
            svc.state.served_local,
            svc.state.forwarded
        );
    }

    #[test]
    fn names_and_debug() {
        let h = make_handlers();
        assert_eq!(h.names(), vec!["serve-local", "forward-origin"]);
        let text = format!("{h:?}");
        assert!(text.contains("nfa.cache-get"), "{text}");
    }

    #[test]
    #[should_panic(expected = "with_features needs a handler first")]
    fn features_before_handler_panics() {
        let _: HandlerSet<u8, u8, u8> = HandlerSet::new("x").with_features(|_, _, _| vec![]);
    }
}
