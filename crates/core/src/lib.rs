//! # cb-core — the explicit-choice programming model with a predictive runtime
//!
//! A Rust realization of *"Simplifying Distributed System Development"*
//! (Yabandeh, Vasić, Kostić, Kuncak — HotOS 2009): distributed services
//! **expose the choices** they need to make and **the objectives** they want
//! maximized; the runtime maintains a **predictive system model** (network +
//! state) and resolves the choices by predicting the future — or steers
//! execution away from predicted safety violations.
//!
//! ## Map of the crate (Figure 1 of the paper)
//!
//! | Paper component | Module |
//! |---|---|
//! | Exposed choices | [`choice`] |
//! | NFA multi-handler dispatch | [`nfa`] |
//! | Exposed objectives | [`objective`] |
//! | Network/state predictive model | [`model`] |
//! | Prediction of performance/reliability/correctness | [`predict`] (over `cb-mck`) |
//! | Choice resolution strategies | [`resolve`] |
//! | Execution steering (event filters) | [`steering`] |
//! | CrystalBall-enabled runtime (interposition) | [`runtime`] |
//!
//! ## A tiny end-to-end flavor
//!
//! ```
//! use cb_core::prelude::*;
//!
//! /// A service that pings a peer chosen by the runtime.
//! struct Pinger;
//! impl Service for Pinger {
//!     type Msg = &'static str;
//!     type Checkpoint = u8;
//!     fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, &'static str, u8>) {
//!         if ctx.id() == NodeId(0) {
//!             let peers: Vec<OptionDesc> = (1..ctx.host_count() as u64)
//!                 .map(OptionDesc::key)
//!                 .collect();
//!             // The choice is exposed: the runtime decides which peer.
//!             let i = ctx.choose("pinger.peer", ContextKey::default(), &peers);
//!             let target = NodeId(peers[i].key as u32);
//!             ctx.send(target, "ping");
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut ServiceCtx<'_, '_, &'static str, u8>, _from: NodeId, _m: &'static str) {}
//!     fn checkpoint(&self, _model: &StateModel<u8>) -> u8 { 0 }
//!     fn neighbors(&self) -> Vec<NodeId> { Vec::new() }
//! }
//!
//! let topo = Topology::star(4, SimDuration::from_millis(5), 10_000_000);
//! let mut sim = Sim::new(topo, 42, |_| {
//!     RuntimeNode::new(Pinger, RuntimeConfig::new(Box::new(RandomResolver::new(7))))
//! });
//! sim.start_all();
//! sim.run_until_quiescent(SimTime::from_secs(5));
//! assert_eq!(sim.actor(NodeId(0)).decisions().len(), 1);
//! ```

pub mod choice;
pub mod evalcache;
pub mod governor;
pub mod model;
pub mod nfa;
pub mod objective;
pub mod predict;
pub mod resolve;
pub mod runtime;
pub mod steering;

/// Everything most services and experiments need, in one import.
pub mod prelude {
    pub use crate::choice::{
        ChoiceId, ChoiceRequest, ContextKey, DecisionRecord, EvalVerdict, FnEvaluator,
        NullEvaluator, OptionDesc, OptionEvaluator, Prediction, Resolver,
    };
    pub use crate::evalcache::EvalCache;
    pub use crate::governor::{DegradationGovernor, GovernorConfig, Health, HealthSignals};
    pub use crate::model::net::NetworkModel;
    pub use crate::model::state::{NodeView, Snapshot, StateModel};
    pub use crate::nfa::{Dispatch, HandlerSet};
    pub use crate::objective::ObjectiveSet;
    pub use crate::predict::{ModelEvaluator, PredictConfig};
    pub use crate::resolve::{
        BanditPolicy, CachedResolver, DampedResolver, HeuristicResolver, LadderResolver,
        LearnedResolver, LookaheadResolver, PrecomputedResolver, RandomResolver,
    };
    pub use crate::runtime::{
        fleet_telemetry, Envelope, RuntimeConfig, RuntimeNode, Service, ServiceCtx, SteeringAdvice,
        SteeringAdvisor, SteeringInput, CONTROLLER_TAG,
    };
    pub use crate::steering::{EventFilter, FilterAction, Steering};
    pub use cb_mck::props::Property;
    pub use cb_simnet::prelude::*;
    pub use cb_telemetry::{Registry, TelemetrySummary};
}
