//! Bridging choices to the model checker: predictive option evaluation.
//!
//! A [`ModelEvaluator`] is the glue between an exposed choice and the
//! prediction machinery of `cb-mck`. The service (or the runtime on its
//! behalf) supplies a factory that builds a [`TransitionSystem`] modelling
//! the system's near future *as if option `i` had been chosen* — typically
//! instantiated from the latest consistent snapshot plus the network model,
//! exactly as Figure 1 of the paper wires it. Evaluation then:
//!
//! 1. runs **consequence prediction** over that system to count predicted
//!    safety violations, and
//! 2. runs **weighted random walks** to estimate the expected objective
//!    score of the reachable futures (the "model checker as simulator").
//!
//! The result is a [`Prediction`] the [`LookaheadResolver`] can rank.
//!
//! [`LookaheadResolver`]: crate::resolve::lookahead::LookaheadResolver

use crate::choice::{OptionEvaluator, Prediction};
use crate::objective::ObjectiveSet;
use cb_mck::explore::ExploreConfig;
use cb_mck::system::TransitionSystem;
use cb_mck::walk::{random_walks, WalkConfig};
use cb_simnet::rng::SimRng;

/// Budget and mode of a predictive evaluation.
#[derive(Clone, Debug)]
pub struct PredictConfig {
    /// Exploration depth ("several levels of state space into the future").
    pub depth: usize,
    /// State budget for the violation search.
    pub max_states: usize,
    /// Random walks used to estimate the objective (0 disables walk-based
    /// scoring; the objective is then evaluated on the initial state only).
    pub walks: usize,
    /// Use consequence prediction (chains) for the violation search; when
    /// false, exhaustive BFS is used instead. The E8 ablation flips this.
    pub consequence: bool,
    /// Weight of bounded-liveness satisfaction in the objective: each
    /// `eventually` property contributes `weight × satisfaction` (paper
    /// §3.2: the number of liveness properties expected to hold is a
    /// generically useful objective). 0 skips the liveness search.
    pub liveness_weight: f64,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            depth: 4,
            max_states: 20_000,
            walks: 24,
            consequence: true,
            liveness_weight: 1.0,
        }
    }
}

/// An [`OptionEvaluator`] that scores options by exploring their futures.
///
/// `F` builds the transition system for a given option index. The same
/// evaluator is handed to the resolver for one choice and then discarded —
/// it borrows the models that back the factory.
pub struct ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    F: FnMut(usize) -> T,
{
    make_system: F,
    objectives: &'a ObjectiveSet<T::State>,
    cfg: PredictConfig,
    rng: SimRng,
}

impl<'a, T, F> ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    F: FnMut(usize) -> T,
{
    /// Creates an evaluator.
    ///
    /// `rng` seeds the walk sampler; fork it from the node's stream so
    /// evaluation stays deterministic per run.
    pub fn new(
        make_system: F,
        objectives: &'a ObjectiveSet<T::State>,
        cfg: PredictConfig,
        rng: SimRng,
    ) -> Self {
        ModelEvaluator {
            make_system,
            objectives,
            cfg,
            rng,
        }
    }
}

impl<'a, T, F> OptionEvaluator for ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    F: FnMut(usize) -> T,
{
    fn evaluate(&mut self, index: usize) -> Prediction {
        let sys = (self.make_system)(index);
        let props = self.objectives.properties();
        let explore_cfg = ExploreConfig {
            max_depth: self.cfg.depth,
            max_states: self.cfg.max_states,
            stop_at_first_violation: false,
            max_violations: 64,
        };
        // Violation search over causally related futures.
        let (violations, states_a) = if self.cfg.consequence {
            let r = cb_mck::consequence::predict(&sys, &props, &explore_cfg);
            (r.report.violations.len() as u64, r.report.states_visited)
        } else {
            let r = cb_mck::explore::bfs(&sys, &props, &explore_cfg);
            (r.violations.len() as u64, r.states_visited)
        };
        // Objective estimation over sampled futures.
        let (mut objective, states_b) = if self.cfg.walks == 0 {
            (self.objectives.score(&sys.initial()), 0)
        } else {
            let wcfg = WalkConfig {
                walks: self.cfg.walks,
                depth: self.cfg.depth,
            };
            let report = random_walks(&sys, &[], &wcfg, &mut self.rng, |s| {
                self.objectives.score(s)
            });
            (report.mean_score(), report.steps)
        };
        // Bounded liveness: reward options whose futures satisfy the
        // `eventually` properties.
        let mut states_c = 0;
        if self.cfg.liveness_weight != 0.0 && !self.objectives.liveness_properties().is_empty() {
            let live_props: Vec<_> = self.objectives.liveness_properties().to_vec();
            let r = cb_mck::explore::bfs(&sys, &live_props, &explore_cfg);
            states_c = r.states_visited;
            for (_, outcome) in &r.liveness {
                objective += self.cfg.liveness_weight * outcome.satisfaction();
            }
        }
        Prediction {
            objective,
            violations,
            states_explored: states_a + states_b + states_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{ChoiceRequest, OptionDesc, Resolver};
    use crate::resolve::lookahead::LookaheadResolver;
    use cb_mck::props::Property;

    /// A one-dimensional walk that drifts by `bias` per step; option = bias.
    #[derive(Clone)]
    struct Drift {
        start: i64,
        bias: i64,
    }

    impl TransitionSystem for Drift {
        type State = i64;
        type Action = i64;
        fn initial(&self) -> i64 {
            self.start
        }
        fn actions(&self, s: &i64) -> Vec<i64> {
            // The action carries the successor value so that each step
            // newly enables the next one (a causal chain).
            vec![s + self.bias]
        }
        fn step(&self, _s: &i64, a: &i64) -> i64 {
            *a
        }
    }

    #[test]
    fn evaluator_prefers_option_with_higher_future_score() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let biases = [-2i64, 0, 3];
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 5,
                walks: 8,
                ..Default::default()
            },
            SimRng::seed_from(1),
        );
        let p_down = eval.evaluate(0);
        let p_up = eval.evaluate(2);
        assert!(p_up.objective > p_down.objective, "{p_up:?} vs {p_down:?}");
    }

    #[test]
    fn evaluator_counts_future_violations() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().safety(Property::safety("stays below 3", |s: &i64| *s < 3));
        let biases = [0i64, 1];
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 6,
                walks: 0,
                ..Default::default()
            },
            SimRng::seed_from(2),
        );
        assert_eq!(eval.evaluate(0).violations, 0);
        assert!(
            eval.evaluate(1).violations > 0,
            "upward drift crosses 3 within depth 6"
        );
    }

    #[test]
    fn lookahead_plus_evaluator_end_to_end() {
        let objectives: ObjectiveSet<i64> = ObjectiveSet::new()
            .maximize("value", 1.0, |s: &i64| *s as f64)
            .safety(Property::safety("stays below 10", |s: &i64| *s < 10));
        let biases = [1i64, 5]; // option 1 scores higher but violates within depth 4
        let opts = [OptionDesc::key(0), OptionDesc::key(1)];
        let req = ChoiceRequest::new("drift", &opts);
        let mut resolver = LookaheadResolver::new();
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 4,
                walks: 8,
                ..Default::default()
            },
            SimRng::seed_from(3),
        );
        // bias 5 reaches 10 in 2 steps -> violation; safety dominates.
        assert_eq!(resolver.resolve(&req, &mut eval), 0);
    }

    #[test]
    fn zero_walks_scores_initial_state() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let mut eval = ModelEvaluator::new(
            |_| Drift {
                start: 7,
                bias: 100,
            },
            &objectives,
            PredictConfig {
                walks: 0,
                ..Default::default()
            },
            SimRng::seed_from(4),
        );
        assert_eq!(eval.evaluate(0).objective, 7.0);
    }

    #[test]
    fn bfs_mode_also_finds_violations() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().safety(Property::safety("below 2", |s: &i64| *s < 2));
        let mut eval = ModelEvaluator::new(
            |_| Drift { start: 0, bias: 1 },
            &objectives,
            PredictConfig {
                consequence: false,
                walks: 0,
                depth: 4,
                ..Default::default()
            },
            SimRng::seed_from(5),
        );
        assert!(eval.evaluate(0).violations > 0);
    }

    #[test]
    fn liveness_satisfaction_rewards_options() {
        // Objective: eventually reach 6. Upward drift satisfies it within
        // the horizon; downward drift never does.
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().liveness(Property::eventually("reaches 6", |s: &i64| *s >= 6));
        let biases = [-1i64, 2];
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 4,
                walks: 0,
                liveness_weight: 5.0,
                ..Default::default()
            },
            SimRng::seed_from(7),
        );
        let down = eval.evaluate(0);
        let up = eval.evaluate(1);
        assert!(up.objective > down.objective + 2.0, "{up:?} vs {down:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let run = |seed| {
            let mut eval = ModelEvaluator::new(
                |_| Drift { start: 0, bias: 1 },
                &objectives,
                PredictConfig::default(),
                SimRng::seed_from(seed),
            );
            eval.evaluate(0)
        };
        assert_eq!(run(9), run(9));
    }
}
