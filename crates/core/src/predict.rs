//! Bridging choices to the model checker: predictive option evaluation.
//!
//! A [`ModelEvaluator`] is the glue between an exposed choice and the
//! prediction machinery of `cb-mck`. The service (or the runtime on its
//! behalf) supplies a factory that builds a [`TransitionSystem`] modelling
//! the system's near future *as if option `i` had been chosen* — typically
//! instantiated from the latest consistent snapshot plus the network model,
//! exactly as Figure 1 of the paper wires it. Evaluation then runs a
//! **fused single pass**:
//!
//! 1. one exploration (**consequence prediction** or BFS) that checks
//!    safety *and* judges bounded liveness in the same traversal, and
//! 2. **weighted random walks** to estimate the expected objective score of
//!    the reachable futures (the "model checker as simulator").
//!
//! Earlier revisions ran up to three searches per option — a violation
//! search, the walks, and a *second full BFS* just for liveness
//! satisfaction. The exploration kernels now carry liveness bitmasks
//! through every search, so the dedicated liveness pass is gone; the
//! pre-fusion behavior survives as [`ModelEvaluator::evaluate_multipass`]
//! for differential tests and as the perf-bench baseline. Property verdicts
//! and objective scores are additionally memoized **across the options of
//! one choice** by an [`EvalCache`] (sibling options explore almost the
//! same futures), without ever changing what gets picked — see the
//! [`crate::evalcache`] module docs for the transparency argument.
//!
//! Note one semantic refinement of the fusion: with
//! [`PredictConfig::consequence`] enabled, liveness satisfaction is now
//! judged over the *same causally related futures* the violation search
//! explores, instead of over a separate exhaustive BFS. The two agree
//! exactly in BFS mode.
//!
//! The result is a [`Prediction`] the [`LookaheadResolver`] can rank.
//!
//! [`LookaheadResolver`]: crate::resolve::lookahead::LookaheadResolver

use crate::choice::{EvalVerdict, OptionEvaluator, Prediction};
use crate::evalcache::{EvalCache, MAX_CACHED_PROPS};
use crate::objective::ObjectiveSet;
use cb_mck::explore::ExploreConfig;
use cb_mck::hash::fingerprint;
use cb_mck::props::{Property, PropertyKind};
use cb_mck::system::TransitionSystem;
use cb_mck::walk::{random_walks, WalkConfig};
use cb_simnet::rng::SimRng;
use cb_telemetry::{keys, Registry};
use std::sync::Arc;

/// Budget and mode of a predictive evaluation.
#[derive(Clone, Debug)]
pub struct PredictConfig {
    /// Exploration depth ("several levels of state space into the future").
    pub depth: usize,
    /// State budget for the violation search.
    pub max_states: usize,
    /// Random walks used to estimate the objective (0 disables walk-based
    /// scoring; the objective is then evaluated on the initial state only).
    pub walks: usize,
    /// Use consequence prediction (chains) for the violation search; when
    /// false, exhaustive BFS is used instead. The E8 ablation flips this.
    pub consequence: bool,
    /// Weight of bounded-liveness satisfaction in the objective: each
    /// `eventually` property contributes `weight × satisfaction` (paper
    /// §3.2: the number of liveness properties expected to hold is a
    /// generically useful objective). 0 skips liveness scoring.
    pub liveness_weight: f64,
    /// Memoize property verdicts and objective scores across the options
    /// of one choice (see [`EvalCache`]). Transparent: resolution picks the
    /// same option with the cache on or off.
    pub cache: bool,
    /// Per-decision prediction deadline, as a sim-cost budget in explored
    /// states (the decision-latency clock prices one state at 1 µs of
    /// sim-cost). `0` disables the deadline. When set, the cumulative
    /// states explored across all option evaluations of one decision never
    /// exceed this: the search budget and walk count of each evaluation
    /// are capped at what remains, and once the budget is exhausted
    /// further evaluations return [`Prediction::unknown`] immediately.
    /// Any cut-short evaluation flips the evaluator's verdict to
    /// [`EvalVerdict::Partial`] — an explicit signal, not a silent
    /// truncation — which the resolver ladder treats as a deadline firing.
    pub deadline_states: u64,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            depth: 4,
            max_states: 20_000,
            walks: 24,
            consequence: true,
            liveness_weight: 1.0,
            cache: true,
            deadline_states: 0,
        }
    }
}

/// An [`OptionEvaluator`] that scores options by exploring their futures.
///
/// `F` builds the transition system for a given option index. The same
/// evaluator is handed to the resolver for one choice and then discarded —
/// it borrows the models that back the factory. Its [`EvalCache`] spans all
/// options of that one choice; to additionally share memoized verdicts
/// across refreshes of the same choice epoch, build the evaluator with
/// [`ModelEvaluator::with_cache`] and [`clear`](EvalCache::clear) the cache
/// whenever the underlying snapshot advances.
pub struct ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    F: FnMut(usize) -> T,
{
    make_system: F,
    objectives: &'a ObjectiveSet<T::State>,
    cfg: PredictConfig,
    rng: SimRng,
    cache: Option<Arc<EvalCache>>,
    /// Cache counters already present at construction (epoch-shared
    /// caches): exports report only this evaluator's delta.
    base_hits: u64,
    base_misses: u64,
    /// Dedicated liveness searches the fused pass avoided.
    fused_searches_saved: u64,
    /// Cumulative states explored across this decision's evaluations
    /// (deadline accounting).
    spent_states: u64,
    /// Evaluations cut short by the prediction deadline.
    evals_cut_short: u64,
}

impl<'a, T, F> ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    F: FnMut(usize) -> T,
{
    /// Creates an evaluator with a fresh per-decision [`EvalCache`] (when
    /// `cfg.cache` is set).
    ///
    /// `rng` seeds the walk sampler; fork it from the node's stream so
    /// evaluation stays deterministic per run.
    pub fn new(
        make_system: F,
        objectives: &'a ObjectiveSet<T::State>,
        cfg: PredictConfig,
        rng: SimRng,
    ) -> Self {
        let cache = cfg.cache.then(|| Arc::new(EvalCache::new()));
        ModelEvaluator {
            make_system,
            objectives,
            cfg,
            rng,
            cache,
            base_hits: 0,
            base_misses: 0,
            fused_searches_saved: 0,
            spent_states: 0,
            evals_cut_short: 0,
        }
    }

    /// Creates an evaluator sharing an existing [`EvalCache`] — the
    /// cross-refresh form: a service re-evaluating the same choice epoch
    /// hands every evaluator the same cache (and clears it when the epoch
    /// advances). Implies caching regardless of `cfg.cache`.
    pub fn with_cache(
        make_system: F,
        objectives: &'a ObjectiveSet<T::State>,
        cfg: PredictConfig,
        rng: SimRng,
        cache: Arc<EvalCache>,
    ) -> Self {
        let (base_hits, base_misses) = (cache.hits(), cache.misses());
        ModelEvaluator {
            make_system,
            objectives,
            cfg,
            rng,
            cache: Some(cache),
            base_hits,
            base_misses,
            fused_searches_saved: 0,
            spent_states: 0,
            evals_cut_short: 0,
        }
    }

    /// The evaluation cache, when caching is enabled.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// Dedicated liveness searches the fused pass avoided so far.
    pub fn fused_searches_saved(&self) -> u64 {
        self.fused_searches_saved
    }

    /// Cumulative states explored across this decision's evaluations.
    pub fn spent_states(&self) -> u64 {
        self.spent_states
    }

    /// Evaluations cut short by the prediction deadline so far.
    pub fn evals_cut_short(&self) -> u64 {
        self.evals_cut_short
    }

    fn explore_cfg(&self) -> ExploreConfig {
        ExploreConfig {
            max_depth: self.cfg.depth,
            max_states: self.cfg.max_states,
            stop_at_first_violation: false,
            // Never cut the traversal on violation count: the fused pass
            // must finish its liveness accounting, and rankings get full
            // violation resolution.
            max_violations: usize::MAX,
        }
    }

    fn want_liveness(&self) -> bool {
        self.cfg.liveness_weight != 0.0 && !self.objectives.liveness_properties().is_empty()
    }
}

impl<'a, T, F> ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    T::State: 'static,
    F: FnMut(usize) -> T,
{
    /// The properties the search should check — wrapped in memoizing
    /// predicates when the cache is on (and the property count fits the
    /// cache's bitmask).
    fn effective_props(&self) -> Vec<Property<T::State>> {
        let props = self.objectives.properties();
        let Some(cache) = &self.cache else {
            return props;
        };
        if props.len() > MAX_CACHED_PROPS {
            return props;
        }
        props
            .iter()
            .enumerate()
            .map(|(slot, p)| {
                let cache = Arc::clone(cache);
                let orig = p.clone();
                let pred = move |s: &T::State| {
                    let fp = fingerprint(s);
                    cache.verdict(slot, fp, || orig.holds(s))
                };
                match p.kind() {
                    PropertyKind::Safety => Property::safety(p.name().to_string(), pred),
                    PropertyKind::EventuallyWithinHorizon => {
                        Property::eventually(p.name().to_string(), pred)
                    }
                }
            })
            .collect()
    }

    fn scored(&self, state: &T::State) -> f64 {
        match &self.cache {
            Some(cache) => cache.score(fingerprint(state), || self.objectives.score(state)),
            None => self.objectives.score(state),
        }
    }

    /// The pre-fusion reference evaluation: a violation-only search, the
    /// walks, and a **second full BFS** for liveness satisfaction. No
    /// memoization. Kept (a) as the baseline the decision perf bench
    /// measures against, and (b) for differential tests pinning that fusion
    /// did not change predictions — in BFS mode the two return identical
    /// `Prediction`s up to `states_explored`, which is exactly the cost the
    /// fusion removes.
    pub fn evaluate_multipass(&mut self, index: usize) -> Prediction {
        let sys = (self.make_system)(index);
        let props = self.objectives.properties();
        let explore_cfg = self.explore_cfg();
        // Pass 1: violation search over causally related futures.
        let (violations, states_a) = if self.cfg.consequence {
            let r = cb_mck::consequence::predict(&sys, &props, &explore_cfg);
            (r.report.violations.len() as u64, r.report.states_visited)
        } else {
            let r = cb_mck::explore::bfs(&sys, &props, &explore_cfg);
            (r.violations.len() as u64, r.states_visited)
        };
        // Pass 2: objective estimation over sampled futures.
        let (mut objective, states_b) = if self.cfg.walks == 0 {
            (self.objectives.score(&sys.initial()), 0)
        } else {
            let wcfg = WalkConfig {
                walks: self.cfg.walks,
                depth: self.cfg.depth,
            };
            let report = random_walks(&sys, &[], &wcfg, &mut self.rng, |s| {
                self.objectives.score(s)
            });
            (report.mean_score(), report.steps)
        };
        // Pass 3: a dedicated liveness search.
        let mut states_c = 0;
        if self.want_liveness() {
            let live_props: Vec<_> = self.objectives.liveness_properties().to_vec();
            let r = cb_mck::explore::bfs(&sys, &live_props, &explore_cfg);
            states_c = r.states_visited;
            for (_, outcome) in &r.liveness {
                objective += self.cfg.liveness_weight * outcome.satisfaction();
            }
        }
        Prediction {
            objective,
            violations,
            states_explored: states_a + states_b + states_c,
        }
    }
}

impl<'a, T, F> OptionEvaluator for ModelEvaluator<'a, T, F>
where
    T: TransitionSystem,
    T::State: 'static,
    F: FnMut(usize) -> T,
{
    fn evaluate(&mut self, index: usize) -> Prediction {
        // Deadline accounting: the per-decision sim-cost budget that is
        // still unspent. `deadline_states == 0` disables the whole
        // mechanism, leaving evaluation bit-identical to the undeadlined
        // path (the differential tests pin this).
        let deadline = self.cfg.deadline_states;
        let budget = if deadline == 0 {
            u64::MAX
        } else {
            deadline.saturating_sub(self.spent_states)
        };
        if budget == 0 {
            // Earlier options already exhausted the decision's budget:
            // stop explicitly (Partial) instead of silently truncating.
            self.evals_cut_short += 1;
            return Prediction::unknown();
        }
        let sys = (self.make_system)(index);
        let props = self.effective_props();
        let mut explore_cfg = self.explore_cfg();
        if deadline != 0 {
            explore_cfg.max_states = explore_cfg.max_states.min(budget as usize);
        }
        let want_live = self.want_liveness();
        // One fused search: safety violations AND bounded-liveness
        // satisfaction from the same traversal.
        let (violations, states_a, liveness) = if self.cfg.consequence {
            let r = cb_mck::consequence::predict(&sys, &props, &explore_cfg);
            (
                r.report.violations.len() as u64,
                r.report.states_visited,
                r.report.liveness,
            )
        } else {
            let r = cb_mck::explore::bfs(&sys, &props, &explore_cfg);
            (r.violations.len() as u64, r.states_visited, r.liveness)
        };
        // What the walks may still spend after the fused search, and
        // whether the search itself consumed its entire allowance (in
        // which case it may have been truncated by the deadline cap).
        self.spent_states += states_a;
        let walk_budget = budget.saturating_sub(states_a);
        let mut cut_short = deadline != 0 && states_a >= budget;
        let effective_walks = if deadline == 0 {
            self.cfg.walks
        } else {
            let affordable = (walk_budget / self.cfg.depth.max(1) as u64) as usize;
            self.cfg.walks.min(affordable)
        };
        if effective_walks < self.cfg.walks {
            cut_short = true;
        }
        // Objective estimation over sampled futures. Walk RNG consumption
        // depends only on action weights, so memoized scores cannot shift
        // the sampled paths.
        let (mut objective, states_b) = if effective_walks == 0 {
            (self.scored(&sys.initial()), 0)
        } else {
            let wcfg = WalkConfig {
                walks: effective_walks,
                depth: self.cfg.depth,
            };
            let cache = self.cache.clone();
            let objectives = self.objectives;
            let report = random_walks(&sys, &[], &wcfg, &mut self.rng, |s| match &cache {
                Some(c) => c.score(fingerprint(s), || objectives.score(s)),
                None => objectives.score(s),
            });
            (report.mean_score(), report.steps)
        };
        self.spent_states += states_b;
        if cut_short {
            self.evals_cut_short += 1;
        }
        // Bounded liveness folded from the same search — this is the whole
        // exploration the pre-fusion path spent on a second BFS.
        if want_live {
            self.fused_searches_saved += 1;
            for (_, outcome) in &liveness {
                objective += self.cfg.liveness_weight * outcome.satisfaction();
            }
        }
        Prediction {
            objective,
            violations,
            states_explored: states_a + states_b,
        }
    }

    fn verdict(&self) -> EvalVerdict {
        if self.evals_cut_short > 0 {
            EvalVerdict::Partial
        } else {
            EvalVerdict::Complete
        }
    }

    fn states_spent(&self) -> u64 {
        self.spent_states
    }

    fn export_metrics(&self, reg: &mut Registry) {
        if let Some(cache) = &self.cache {
            reg.add(
                keys::CORE_EVALCACHE_HITS,
                cache.hits().saturating_sub(self.base_hits),
            );
            reg.add(
                keys::CORE_EVALCACHE_MISSES,
                cache.misses().saturating_sub(self.base_misses),
            );
        }
        reg.add(
            keys::CORE_EVALCACHE_FUSED_SEARCHES_SAVED,
            self.fused_searches_saved,
        );
        reg.add(keys::CORE_PREDICT_PARTIAL_EVALS, self.evals_cut_short);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{ChoiceRequest, OptionDesc, Resolver};
    use crate::resolve::lookahead::LookaheadResolver;
    use cb_mck::props::Property;

    /// A one-dimensional walk that drifts by `bias` per step; option = bias.
    #[derive(Clone)]
    struct Drift {
        start: i64,
        bias: i64,
    }

    impl TransitionSystem for Drift {
        type State = i64;
        type Action = i64;
        fn initial(&self) -> i64 {
            self.start
        }
        fn actions(&self, s: &i64) -> Vec<i64> {
            // The action carries the successor value so that each step
            // newly enables the next one (a causal chain).
            vec![s + self.bias]
        }
        fn step(&self, _s: &i64, a: &i64) -> i64 {
            *a
        }
    }

    #[test]
    fn evaluator_prefers_option_with_higher_future_score() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let biases = [-2i64, 0, 3];
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 5,
                walks: 8,
                ..Default::default()
            },
            SimRng::seed_from(1),
        );
        let p_down = eval.evaluate(0);
        let p_up = eval.evaluate(2);
        assert!(p_up.objective > p_down.objective, "{p_up:?} vs {p_down:?}");
    }

    #[test]
    fn evaluator_counts_future_violations() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().safety(Property::safety("stays below 3", |s: &i64| *s < 3));
        let biases = [0i64, 1];
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 6,
                walks: 0,
                ..Default::default()
            },
            SimRng::seed_from(2),
        );
        assert_eq!(eval.evaluate(0).violations, 0);
        assert!(
            eval.evaluate(1).violations > 0,
            "upward drift crosses 3 within depth 6"
        );
    }

    #[test]
    fn lookahead_plus_evaluator_end_to_end() {
        let objectives: ObjectiveSet<i64> = ObjectiveSet::new()
            .maximize("value", 1.0, |s: &i64| *s as f64)
            .safety(Property::safety("stays below 10", |s: &i64| *s < 10));
        let biases = [1i64, 5]; // option 1 scores higher but violates within depth 4
        let opts = [OptionDesc::key(0), OptionDesc::key(1)];
        let req = ChoiceRequest::new("drift", &opts);
        let mut resolver = LookaheadResolver::new();
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 4,
                walks: 8,
                ..Default::default()
            },
            SimRng::seed_from(3),
        );
        // bias 5 reaches 10 in 2 steps -> violation; safety dominates.
        assert_eq!(resolver.resolve(&req, &mut eval), 0);
    }

    #[test]
    fn zero_walks_scores_initial_state() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let mut eval = ModelEvaluator::new(
            |_| Drift {
                start: 7,
                bias: 100,
            },
            &objectives,
            PredictConfig {
                walks: 0,
                ..Default::default()
            },
            SimRng::seed_from(4),
        );
        assert_eq!(eval.evaluate(0).objective, 7.0);
    }

    #[test]
    fn bfs_mode_also_finds_violations() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().safety(Property::safety("below 2", |s: &i64| *s < 2));
        let mut eval = ModelEvaluator::new(
            |_| Drift { start: 0, bias: 1 },
            &objectives,
            PredictConfig {
                consequence: false,
                walks: 0,
                depth: 4,
                ..Default::default()
            },
            SimRng::seed_from(5),
        );
        assert!(eval.evaluate(0).violations > 0);
    }

    #[test]
    fn liveness_satisfaction_rewards_options() {
        // Objective: eventually reach 6. Upward drift satisfies it within
        // the horizon; downward drift never does.
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().liveness(Property::eventually("reaches 6", |s: &i64| *s >= 6));
        let biases = [-1i64, 2];
        let mut eval = ModelEvaluator::new(
            |i| Drift {
                start: 0,
                bias: biases[i],
            },
            &objectives,
            PredictConfig {
                depth: 4,
                walks: 0,
                liveness_weight: 5.0,
                ..Default::default()
            },
            SimRng::seed_from(7),
        );
        let down = eval.evaluate(0);
        let up = eval.evaluate(1);
        assert!(up.objective > down.objective + 2.0, "{up:?} vs {down:?}");
    }

    #[test]
    fn fused_skips_the_liveness_search_and_accounts_it() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().liveness(Property::eventually("reaches 3", |s: &i64| *s >= 3));
        let cfg = PredictConfig {
            depth: 4,
            walks: 0,
            consequence: false,
            ..Default::default()
        };
        let mk = |i: usize| {
            let _ = i;
            Drift { start: 0, bias: 1 }
        };
        let mut fused = ModelEvaluator::new(mk, &objectives, cfg.clone(), SimRng::seed_from(8));
        let mut multi = ModelEvaluator::new(mk, &objectives, cfg, SimRng::seed_from(8));
        let f = fused.evaluate(0);
        let m = multi.evaluate_multipass(0);
        // Same verdicts and objective, roughly half the explored states.
        assert_eq!(f.violations, m.violations);
        assert_eq!(f.objective, m.objective);
        assert!(
            f.states_explored < m.states_explored,
            "fused {} vs multipass {}",
            f.states_explored,
            m.states_explored
        );
        assert_eq!(fused.fused_searches_saved(), 1);
        let mut reg = Registry::new();
        fused.export_metrics(&mut reg);
        assert_eq!(reg.counter(keys::CORE_EVALCACHE_FUSED_SEARCHES_SAVED), 1);
        assert!(reg.counter(keys::CORE_EVALCACHE_MISSES) > 0);
    }

    #[test]
    fn cache_memoizes_across_options_without_changing_predictions() {
        // Options share their entire future (same system): the second
        // evaluation must be all hits, with identical predictions.
        let objectives: ObjectiveSet<i64> = ObjectiveSet::new()
            .maximize("value", 1.0, |s: &i64| *s as f64)
            .safety(Property::safety("below 100", |s: &i64| *s < 100));
        let cfg = PredictConfig {
            depth: 5,
            walks: 4,
            ..Default::default()
        };
        let mut cached = ModelEvaluator::new(
            |_| Drift { start: 0, bias: 1 },
            &objectives,
            cfg.clone(),
            SimRng::seed_from(11),
        );
        let c0 = cached.evaluate(0);
        let hits_after_first = cached.cache().expect("cache on").hits();
        let c1 = cached.evaluate(1);
        let hits_after_second = cached.cache().expect("cache on").hits();
        assert!(
            hits_after_second > hits_after_first,
            "second option must reuse memoized verdicts"
        );
        let mut uncached = ModelEvaluator::new(
            |_| Drift { start: 0, bias: 1 },
            &objectives,
            PredictConfig {
                cache: false,
                ..cfg
            },
            SimRng::seed_from(11),
        );
        assert_eq!(c0, uncached.evaluate(0));
        assert_eq!(c1, uncached.evaluate(1));
        assert!(uncached.cache().is_none());
    }

    #[test]
    fn shared_cache_spans_refreshes_and_exports_deltas() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().safety(Property::safety("below 50", |s: &i64| *s < 50));
        let cfg = PredictConfig {
            depth: 5,
            walks: 0,
            ..Default::default()
        };
        let cache = Arc::new(EvalCache::new());
        let mk = |_| Drift { start: 0, bias: 2 };
        let mut first = ModelEvaluator::with_cache(
            mk,
            &objectives,
            cfg.clone(),
            SimRng::seed_from(12),
            Arc::clone(&cache),
        );
        let p1 = first.evaluate(0);
        // A "refresh": a fresh evaluator over the same epoch and cache.
        let mut second =
            ModelEvaluator::with_cache(mk, &objectives, cfg, SimRng::seed_from(12), cache);
        let p2 = second.evaluate(0);
        assert_eq!(p1, p2, "same epoch, same prediction");
        let mut reg = Registry::new();
        second.export_metrics(&mut reg);
        // The refresh was served from the first evaluator's entries, and
        // its export covers only its own delta.
        assert!(reg.counter(keys::CORE_EVALCACHE_HITS) > 0);
        assert_eq!(reg.counter(keys::CORE_EVALCACHE_MISSES), 0);
    }

    #[test]
    fn deadline_caps_spent_states_and_reports_partial() {
        let objectives: ObjectiveSet<i64> = ObjectiveSet::new()
            .maximize("value", 1.0, |s: &i64| *s as f64)
            .safety(Property::safety("below 1000", |s: &i64| *s < 1000));
        let cfg = PredictConfig {
            depth: 8,
            walks: 16,
            deadline_states: 12,
            ..Default::default()
        };
        let mut eval = ModelEvaluator::new(
            |_| Drift { start: 0, bias: 1 },
            &objectives,
            cfg,
            SimRng::seed_from(13),
        );
        // Several options: the budget spans the whole decision.
        let mut total = 0;
        for i in 0..4 {
            total += eval.evaluate(i).states_explored;
        }
        assert!(total <= 12, "deadline overrun: spent {total} > 12");
        assert_eq!(eval.spent_states(), total);
        assert_eq!(eval.verdict(), EvalVerdict::Partial);
        assert!(eval.evals_cut_short() > 0);
        let mut reg = Registry::new();
        eval.export_metrics(&mut reg);
        assert_eq!(
            reg.counter(keys::CORE_PREDICT_PARTIAL_EVALS),
            eval.evals_cut_short()
        );
    }

    #[test]
    fn exhausted_deadline_returns_unknown_immediately() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let mut eval = ModelEvaluator::new(
            |_| Drift { start: 0, bias: 1 },
            &objectives,
            PredictConfig {
                depth: 6,
                walks: 8,
                deadline_states: 3,
                ..Default::default()
            },
            SimRng::seed_from(14),
        );
        let _ = eval.evaluate(0); // consumes the whole (tiny) budget
        let p = eval.evaluate(1);
        assert_eq!(
            p,
            Prediction::unknown(),
            "exhausted budget must be explicit"
        );
        assert_eq!(eval.verdict(), EvalVerdict::Partial);
    }

    #[test]
    fn no_deadline_is_bitwise_identical_to_the_default_path() {
        let objectives: ObjectiveSet<i64> = ObjectiveSet::new()
            .maximize("value", 1.0, |s: &i64| *s as f64)
            .safety(Property::safety("below 100", |s: &i64| *s < 100));
        let run = |deadline: u64| {
            let mut eval = ModelEvaluator::new(
                |_| Drift { start: 0, bias: 1 },
                &objectives,
                PredictConfig {
                    depth: 5,
                    walks: 8,
                    deadline_states: deadline,
                    ..Default::default()
                },
                SimRng::seed_from(15),
            );
            (eval.evaluate(0), eval.verdict())
        };
        let (p_off, v_off) = run(0);
        // A deadline generous enough to never fire is also transparent.
        let (p_big, v_big) = run(1_000_000);
        assert_eq!(p_off, p_big);
        assert_eq!(v_off, EvalVerdict::Complete);
        assert_eq!(v_big, EvalVerdict::Complete);
    }

    #[test]
    fn deterministic_given_seed() {
        let objectives: ObjectiveSet<i64> =
            ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
        let run = |seed| {
            let mut eval = ModelEvaluator::new(
                |_| Drift { start: 0, bias: 1 },
                &objectives,
                PredictConfig::default(),
                SimRng::seed_from(seed),
            );
            eval.evaluate(0)
        };
        assert_eq!(run(9), run(9));
    }
}
