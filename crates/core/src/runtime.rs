//! The CrystalBall-enabled runtime (Figure 1 of the paper).
//!
//! A [`RuntimeNode`] interposes between the network and the service state
//! machine, exactly as the paper draws it:
//!
//! * **inbound** messages pass through the [`Steering`] filters (predicted-
//!   violation avoidance) and feed passive latency samples into the
//!   [`NetworkModel`] before reaching the service handler;
//! * **outbound** messages are timestamped so the peer can measure;
//! * a **controller** timer periodically ships the service's checkpoint to
//!   its neighbors (building every peer's [`StateModel`]) and consults the
//!   optional steering advisor, which runs consequence prediction over the
//!   latest consistent snapshot and proposes event filters;
//! * **exposed choices** made inside handlers are resolved by the
//!   configured [`Resolver`] and logged as [`DecisionRecord`]s.
//!
//! The service code underneath stays a plain state machine: it sends,
//! receives, sets timers — and *chooses*, through [`ServiceCtx::choose`].

use crate::choice::{
    ChoiceId, ChoiceRequest, ContextKey, DecisionRecord, EvalVerdict, NullEvaluator, OptionDesc,
    OptionEvaluator, Prediction, Resolver,
};
use crate::model::net::NetworkModel;
use crate::model::state::StateModel;
use crate::steering::{EventFilter, FilterAction, Steering};
use cb_simnet::rng::SimRng;
use cb_simnet::sim::{Actor, Ctx as SimCtx, Sim, TimerId};
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use cb_telemetry::{keys, Registry, Stopwatch};
use cb_trace::{Span, SpanId, SpanKind};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Timer tag reserved for the runtime's controller cycle. Service tags must
/// stay below this value.
pub const CONTROLLER_TAG: u64 = u64::MAX;

/// What travels on the wire: application messages wrapped with runtime
/// metadata, plus runtime-to-runtime checkpoint and probe traffic.
#[derive(Clone, Debug)]
pub enum Envelope<M, C> {
    /// An application message, timestamped for passive latency measurement.
    App {
        /// The service-level payload.
        msg: M,
        /// Sender's clock at send time.
        sent_at: SimTime,
    },
    /// A checkpoint of the sender's service state.
    Checkpoint {
        /// The checkpointed state.
        data: C,
        /// When the checkpoint was taken at the sender.
        taken_at: SimTime,
    },
    /// An active network probe (paper §3.3.1: "explicitly probing various
    /// network conditions"). Answered by the peer's runtime; the service
    /// never sees it.
    Probe {
        /// Sender's clock at probe time.
        sent_at: SimTime,
    },
    /// The probe answer, echoing the probe's timestamp so the prober can
    /// fold the measured round trip into its network model.
    ProbeReply {
        /// The original probe's send time (the prober's clock).
        probe_sent_at: SimTime,
    },
}

/// A distributed service written against the explicit-choice model.
///
/// Compared to a raw [`Actor`], a `Service` additionally exposes
/// checkpointing (for the state model) and its neighbor set (who receives
/// those checkpoints); in exchange its handlers get a [`ServiceCtx`] that
/// can resolve exposed choices.
pub trait Service: 'static + Sized {
    /// The service's message type.
    type Msg: Clone + Debug + 'static;
    /// The checkpoint the runtime ships to neighbors.
    type Checkpoint: Clone + Debug + Hash + Eq + 'static;

    /// Called when the node starts (or restarts after a crash).
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>) {
        let _ = ctx;
    }

    /// Called for each delivered application message.
    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>,
        from: NodeId,
        msg: Self::Msg,
    );

    /// Called when a service timer fires.
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when the reliable connection to `peer` breaks.
    fn on_conn_broken(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>,
        peer: NodeId,
    ) {
        let _ = (ctx, peer);
    }

    /// Takes a checkpoint of the current service state.
    ///
    /// The runtime passes its [`StateModel`] so services can fold their
    /// neighbors' latest reports into aggregated state (the paper's
    /// "export state whose goal is to keep track of information in other
    /// nodes", §3.3.2).
    fn checkpoint(&self, model: &StateModel<Self::Checkpoint>) -> Self::Checkpoint;

    /// The peers whose state model should include this node (checkpoint
    /// recipients). Typically O(log n) in scalable systems.
    fn neighbors(&self) -> Vec<NodeId>;
}

/// Advice produced by a steering advisor: install a filter against `from`.
#[derive(Clone, Debug)]
pub struct SteeringAdvice {
    /// Why (normally the predicted violated property).
    pub reason: String,
    /// Sender whose next message(s) should be filtered.
    pub from: NodeId,
    /// The corrective action.
    pub action: FilterAction,
}

/// Everything a steering advisor may inspect when predicting violations.
pub struct SteeringInput<'a, C> {
    /// The node running the prediction.
    pub me: NodeId,
    /// Current local time.
    pub now: SimTime,
    /// The node's own fresh checkpoint.
    pub my_state: C,
    /// Neighbor checkpoints.
    pub model: &'a StateModel<C>,
    /// The network model.
    pub net: &'a NetworkModel,
}

/// The advisor callback: runs prediction over the models and proposes
/// filters. Runs on the controller cycle, off the message path.
pub type SteeringAdvisor<C> = Box<dyn FnMut(&SteeringInput<'_, C>) -> Vec<SteeringAdvice>>;

/// Runtime configuration for one node.
pub struct RuntimeConfig<C> {
    /// The choice resolver.
    pub resolver: Box<dyn Resolver>,
    /// Controller (checkpoint + prediction) period. Zero disables the
    /// controller entirely.
    pub controller_interval: SimDuration,
    /// Staleness bound for checkpoints entering snapshots.
    pub max_checkpoint_staleness: SimDuration,
    /// Half-life of network-model confidence.
    pub net_half_life: SimDuration,
    /// Optional predicted-violation steering.
    pub advisor: Option<SteeringAdvisor<C>>,
    /// Probe neighbors whose estimates have decayed below this confidence
    /// on each controller cycle (0.0 disables auto-probing).
    pub probe_below_confidence: f64,
    /// Reporting-only prediction deadline, in explored states per decision
    /// (0 disables). When a decision's evaluator spends more than this, the
    /// runtime counts a `core.predict.deadline_overruns` — without cutting
    /// the evaluation short. This is the *control-arm* knob of the
    /// degradation experiments: the ladder arm instead enforces the same
    /// budget inside the evaluator
    /// ([`crate::predict::PredictConfig::deadline_states`]) and therefore
    /// never overruns by construction.
    pub report_deadline_states: u64,
}

impl<C> RuntimeConfig<C> {
    /// A configuration with the given resolver and sensible defaults:
    /// 1 s controller cycle, 30 s checkpoint staleness, 20 s confidence
    /// half-life, no steering advisor.
    pub fn new(resolver: Box<dyn Resolver>) -> Self {
        RuntimeConfig {
            resolver,
            controller_interval: SimDuration::from_secs(1),
            max_checkpoint_staleness: SimDuration::from_secs(30),
            net_half_life: SimDuration::from_secs(20),
            advisor: None,
            probe_below_confidence: 0.0,
            report_deadline_states: 0,
        }
    }

    /// Sets the controller period.
    pub fn controller_every(mut self, interval: SimDuration) -> Self {
        self.controller_interval = interval;
        self
    }

    /// Installs a steering advisor.
    pub fn with_advisor(mut self, advisor: SteeringAdvisor<C>) -> Self {
        self.advisor = Some(advisor);
        self
    }

    /// Enables auto-probing: on each controller cycle, neighbors whose
    /// network-model confidence has decayed below `threshold` get an active
    /// probe.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn probe_when_stale(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "confidence threshold out of range"
        );
        self.probe_below_confidence = threshold;
        self
    }

    /// Enables reporting-only deadline accounting: decisions whose
    /// evaluator explored more than `states` count an overrun in
    /// `core.predict.deadline_overruns` (the evaluation itself is not cut
    /// short). 0 disables.
    pub fn report_deadline(mut self, states: u64) -> Self {
        self.report_deadline_states = states;
        self
    }
}

/// The runtime state that is not the service itself.
struct RuntimeCore<M, C> {
    resolver: Box<dyn Resolver>,
    controller_interval: SimDuration,
    advisor: Option<SteeringAdvisor<C>>,
    probe_below_confidence: f64,
    report_deadline_states: u64,
    net_model: NetworkModel,
    state_model: StateModel<C>,
    steering: Steering<M>,
    decisions: Vec<DecisionRecord>,
    controller_cycles: u64,
    checkpoints_sent: u64,
    checkpoints_received: u64,
    /// Latest service-reported load (normalized backlog, in units of
    /// work-per-drain-interval). Folded into every decision's
    /// [`crate::governor::HealthSignals`] so overload can step the
    /// governor down even when models stay fresh.
    reported_load: u64,
    /// Service-owned counters ([`ServiceCtx::count`]): absolute totals
    /// keyed by pre-registered telemetry names, exported idempotently in
    /// [`RuntimeNode::telemetry`].
    service_counters: BTreeMap<&'static str, u64>,
    /// Attrs queued by the service ([`ServiceCtx::decision_attr`]) for the
    /// *next* decision span — lets handlers label the decision they are
    /// about to expose (e.g. `workload=flash`).
    pending_attrs: Vec<(String, String)>,
    /// Hot-path telemetry: every standard key (and the resolver-arm
    /// counter below) is pre-registered in [`RuntimeNode::new`], so
    /// per-decision updates never allocate.
    telemetry: Registry,
    /// Pre-formatted `core.resolver_arm.<name>` counter key.
    arm_key: String,
}

/// A node of the distributed system: the service plus the CrystalBall-style
/// runtime wrapped around it. Implements [`Actor`] so it runs directly on
/// the simulator.
pub struct RuntimeNode<S: Service> {
    service: S,
    core: RuntimeCore<S::Msg, S::Checkpoint>,
}

impl<S: Service> RuntimeNode<S> {
    /// Wraps `service` with a runtime configured by `config`.
    pub fn new(service: S, config: RuntimeConfig<S::Checkpoint>) -> Self {
        let mut telemetry = Registry::new();
        keys::preregister_standard(&mut telemetry);
        let arm_key = format!(
            "{}{}",
            keys::CORE_RESOLVER_ARM_PREFIX,
            config.resolver.name()
        );
        telemetry.register_counter(&arm_key);
        RuntimeNode {
            service,
            core: RuntimeCore {
                resolver: config.resolver,
                controller_interval: config.controller_interval,
                advisor: config.advisor,
                probe_below_confidence: config.probe_below_confidence,
                report_deadline_states: config.report_deadline_states,
                net_model: NetworkModel::new(config.net_half_life),
                state_model: StateModel::new(config.max_checkpoint_staleness),
                steering: Steering::new(),
                decisions: Vec::new(),
                controller_cycles: 0,
                checkpoints_sent: 0,
                checkpoints_received: 0,
                reported_load: 0,
                service_counters: BTreeMap::new(),
                pending_attrs: Vec::new(),
                telemetry,
                arm_key,
            },
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the wrapped service (drivers only).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }

    /// The decision log.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.core.decisions
    }

    /// The network model.
    pub fn net_model(&self) -> &NetworkModel {
        &self.core.net_model
    }

    /// The state model.
    pub fn state_model(&self) -> &StateModel<S::Checkpoint> {
        &self.core.state_model
    }

    /// Steering statistics: (messages dropped, connections broken).
    pub fn steering_stats(&self) -> (u64, u64) {
        (self.core.steering.dropped, self.core.steering.breaks)
    }

    /// Controller cycles completed.
    pub fn controller_cycles(&self) -> u64 {
        self.core.controller_cycles
    }

    /// Checkpoints (sent, received).
    pub fn checkpoint_traffic(&self) -> (u64, u64) {
        (self.core.checkpoints_sent, self.core.checkpoints_received)
    }

    /// Snapshot of this node's telemetry under the standard `core.*` keys:
    /// the hot-path registry (decision counts and dual-clock latency)
    /// plus controller/checkpoint/steering counters and whatever the
    /// resolver exports (cache hit/miss/refresh, lookahead evaluations).
    /// Idempotent; aggregate nodes with [`Registry::merge`] or use
    /// [`fleet_telemetry`].
    pub fn telemetry(&self) -> Registry {
        let mut reg = self.core.telemetry.clone();
        reg.set_counter(keys::CORE_CONTROLLER_CYCLES, self.core.controller_cycles);
        reg.set_counter(keys::CORE_CHECKPOINTS_SENT, self.core.checkpoints_sent);
        reg.set_counter(
            keys::CORE_CHECKPOINTS_RECEIVED,
            self.core.checkpoints_received,
        );
        reg.set_counter(keys::CORE_STEERING_DROPPED, self.core.steering.dropped);
        reg.set_counter(keys::CORE_STEERING_BREAKS, self.core.steering.breaks);
        reg.set_counter(keys::CORE_STEERING_INSTALLED, self.core.steering.installed);
        reg.set_counter(keys::CORE_STEERING_FIRED, self.core.steering.fired);
        reg.set_counter(keys::CORE_STEERING_EXPIRED, self.core.steering.expired);
        reg.set_counter(keys::CORE_STEERING_REMOVED, self.core.steering.removed);
        for (key, total) in &self.core.service_counters {
            reg.set_counter(key, *total);
        }
        self.core.resolver.export_metrics(&mut reg);
        reg
    }

    fn run_controller(&mut self, ctx: &mut SimCtx<'_, Envelope<S::Msg, S::Checkpoint>>) {
        self.core.controller_cycles += 1;
        let now = ctx.now();
        // Keep the resolver's degradation governor observing between
        // decisions: a node that stops choosing while overloaded (or
        // after load vanishes) must still step down — and, crucially,
        // climb back to Healthy — on the controller cadence.
        self.core
            .resolver
            .observe_health(&crate::governor::HealthSignals {
                snapshot_staleness: self.core.state_model.oldest_age(now),
                min_peer_confidence: 1.0,
                steering_pressure: self.core.steering.active() as u64,
                deadline_fired: false,
                load: self.core.reported_load,
                now,
            });
        // 1. Ship a fresh checkpoint to the neighborhood.
        let cp = self.service.checkpoint(&self.core.state_model);
        for peer in self.service.neighbors() {
            if peer != ctx.id() {
                ctx.send(
                    peer,
                    Envelope::Checkpoint {
                        data: cp.clone(),
                        taken_at: now,
                    },
                );
                self.core.checkpoints_sent += 1;
            }
        }
        // 2. Re-probe neighbors whose estimates have gone stale.
        if self.core.probe_below_confidence > 0.0 {
            for peer in self.service.neighbors() {
                if peer != ctx.id()
                    && self.core.net_model.confidence(peer, now) < self.core.probe_below_confidence
                {
                    ctx.send(peer, Envelope::Probe { sent_at: now });
                }
            }
        }
        // 3. Consult the advisor (prediction over the current models).
        if let Some(advisor) = self.core.advisor.as_mut() {
            let input = SteeringInput {
                me: ctx.id(),
                now,
                my_state: cp,
                model: &self.core.state_model,
                net: &self.core.net_model,
            };
            for advice in advisor(&input) {
                ctx.note(format!(
                    "steering: filter {} ({})",
                    advice.from, advice.reason
                ));
                // Provenance: the install descends from the controller
                // timer that ran the prediction; the filter remembers the
                // install span so a later fire can link back to it.
                let at_ns = ctx.now_ns();
                let parents: Vec<SpanId> = ctx.cause().into_iter().collect();
                let recorder = ctx.recorder_mut();
                let span_id = recorder.next_id(at_ns);
                recorder.push(
                    Span::new(
                        span_id,
                        SpanKind::SteeringInstall,
                        format!("steer-install:{}", advice.from),
                        parents,
                    )
                    .with_attr("reason", advice.reason.clone())
                    .with_attr("from", advice.from.index().to_string()),
                );
                self.core.steering.install(
                    EventFilter::from_sender(advice.reason, advice.from, advice.action, now)
                        .with_span(span_id),
                );
            }
        }
    }
}

impl<S: Service> Actor for RuntimeNode<S> {
    type Msg = Envelope<S::Msg, S::Checkpoint>;

    fn on_start(&mut self, ctx: &mut SimCtx<'_, Self::Msg>) {
        if !self.core.controller_interval.is_zero() {
            // Stagger the first cycle to avoid fleet-wide synchronization.
            let jitter = SimDuration::from_nanos(
                ctx.rng()
                    .gen_below(self.core.controller_interval.as_nanos().max(1)),
            );
            ctx.set_timer(self.core.controller_interval + jitter, CONTROLLER_TAG);
        }
        let mut sctx = ServiceCtx {
            net: ctx,
            core: &mut self.core,
        };
        self.service.on_start(&mut sctx);
    }

    fn on_message(&mut self, ctx: &mut SimCtx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            Envelope::App { msg, sent_at } => {
                // Passive network measurement (paper §3.3.1).
                let sample = ctx.now().saturating_since(sent_at);
                self.core.net_model.observe_latency(from, sample, ctx.now());
                // Execution steering: predicted-violation filters.
                if let Some((action, (reason, install_span))) =
                    self.core.steering.check_traced(from, &msg)
                {
                    ctx.note(format!("steered: dropped message from {from}"));
                    // Provenance: the fire descends from both the delivery
                    // it intercepted and the install that armed the filter,
                    // tying the prediction to its enforcement.
                    let at_ns = ctx.now_ns();
                    let mut parents: Vec<SpanId> = ctx.cause().into_iter().collect();
                    if let Some(install) = install_span {
                        parents.push(install);
                    }
                    let recorder = ctx.recorder_mut();
                    let span_id = recorder.next_id(at_ns);
                    recorder.push(
                        Span::new(
                            span_id,
                            SpanKind::SteeringFire,
                            format!("steer-fire:{from}"),
                            parents,
                        )
                        .with_attr("reason", reason)
                        .with_attr(
                            "action",
                            match action {
                                FilterAction::Drop => "drop",
                                FilterAction::DropAndBreak => "drop_and_break",
                            },
                        ),
                    );
                    // The conn break (if any) is a consequence of the fire.
                    ctx.set_cause(span_id);
                    if action == FilterAction::DropAndBreak {
                        ctx.break_connection(from);
                    }
                    return;
                }
                let mut sctx = ServiceCtx {
                    net: ctx,
                    core: &mut self.core,
                };
                self.service.on_message(&mut sctx, from, msg);
            }
            Envelope::Checkpoint { data, taken_at } => {
                let sample = ctx.now().saturating_since(taken_at);
                self.core.net_model.observe_latency(from, sample, ctx.now());
                self.core.checkpoints_received += 1;
                self.core
                    .state_model
                    .update(from, data, taken_at, ctx.now());
            }
            Envelope::Probe { sent_at } => {
                ctx.send(
                    from,
                    Envelope::ProbeReply {
                        probe_sent_at: sent_at,
                    },
                );
            }
            Envelope::ProbeReply { probe_sent_at } => {
                // One-way estimate = half the measured round trip.
                let rtt = ctx.now().saturating_since(probe_sent_at);
                self.core
                    .net_model
                    .observe_latency(from, rtt / 2, ctx.now());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_, Self::Msg>, _timer: TimerId, tag: u64) {
        if tag == CONTROLLER_TAG {
            self.run_controller(ctx);
            let interval = self.core.controller_interval;
            if !interval.is_zero() {
                ctx.set_timer(interval, CONTROLLER_TAG);
            }
            return;
        }
        let mut sctx = ServiceCtx {
            net: ctx,
            core: &mut self.core,
        };
        self.service.on_timer(&mut sctx, tag);
    }

    fn on_conn_broken(&mut self, ctx: &mut SimCtx<'_, Self::Msg>, peer: NodeId) {
        // The break is hard evidence the peer's link estimate is wrong:
        // collapse its confidence before the service (which may expose a
        // choice in its failure handler) sees the event.
        self.core.net_model.observe_conn_broken(peer, ctx.now());
        let mut sctx = ServiceCtx {
            net: ctx,
            core: &mut self.core,
        };
        self.service.on_conn_broken(&mut sctx, peer);
    }
}

/// Aggregates telemetry across a whole simulated fleet of runtime nodes:
/// every node's [`RuntimeNode::telemetry`] snapshot merged (counters add,
/// peak gauges keep the max, histograms merge), plus the simulator's
/// `net.*` traffic summary. This is the per-run registry campaign
/// harnesses embed in their artifacts.
pub fn fleet_telemetry<S: Service>(sim: &Sim<RuntimeNode<S>>) -> Registry {
    let mut reg = Registry::new();
    keys::preregister_standard(&mut reg);
    for n in sim.topology().hosts() {
        reg.merge(&sim.actor(n).telemetry());
    }
    sim.summary().record_into(&mut reg);
    // Provenance accounting: flat-trace eviction plus the flight
    // recorders' span totals (all deterministic for a given seed).
    reg.set_counter(keys::SIMNET_TRACE_EVICTED, sim.trace().evicted());
    let (mut recorded, mut evicted) = (0u64, 0u64);
    for rec in sim.flight_recorders() {
        recorded += rec.pushed();
        evicted += rec.evicted();
    }
    reg.set_counter(keys::TRACE_SPANS_RECORDED, recorded);
    reg.set_counter(keys::TRACE_SPANS_EVICTED, evicted);
    reg
}

/// Wraps the caller's evaluator so the runtime can tap every per-option
/// prediction for the decision's provenance span without changing what the
/// resolver sees. Pure pass-through for verdict / budget / telemetry.
struct TapEval<'e> {
    inner: &'e mut dyn OptionEvaluator,
    /// `(option index, prediction)` in evaluation order. Empty when the
    /// resolver never consulted the evaluator (random/heuristic/static
    /// rungs, cache hits).
    taps: Vec<(usize, Prediction)>,
}

impl OptionEvaluator for TapEval<'_> {
    fn evaluate(&mut self, index: usize) -> Prediction {
        let p = self.inner.evaluate(index);
        self.taps.push((index, p));
        p
    }

    fn verdict(&self) -> EvalVerdict {
        self.inner.verdict()
    }

    fn states_spent(&self) -> u64 {
        self.inner.states_spent()
    }

    fn export_metrics(&self, reg: &mut Registry) {
        self.inner.export_metrics(reg);
    }
}

/// What a service handler sees: the network context plus the runtime's
/// choice, model, and steering facilities.
pub struct ServiceCtx<'a, 'b, M, C> {
    net: &'a mut SimCtx<'b, Envelope<M, C>>,
    core: &'a mut RuntimeCore<M, C>,
}

impl<'a, 'b, M: Clone + Debug + 'static, C: Clone + Debug + 'static> ServiceCtx<'a, 'b, M, C> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.net.id()
    }

    /// Number of hosts in the deployment.
    pub fn host_count(&self) -> usize {
        self.net.host_count()
    }

    /// All host ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.net.nodes()
    }

    /// Sends an application message (reliable, in order).
    pub fn send(&mut self, to: NodeId, msg: M) {
        let now = self.net.now();
        self.net.send(to, Envelope::App { msg, sent_at: now });
    }

    /// Sends an application message with an explicit payload size.
    pub fn send_sized(&mut self, to: NodeId, msg: M, bytes: u32) {
        let now = self.net.now();
        self.net
            .send_sized(to, Envelope::App { msg, sent_at: now }, bytes);
    }

    /// Sends an unreliable datagram.
    pub fn send_unreliable(&mut self, to: NodeId, msg: M) {
        let now = self.net.now();
        self.net
            .send_unreliable(to, Envelope::App { msg, sent_at: now });
    }

    /// Arms a service timer.
    ///
    /// # Panics
    ///
    /// Panics if `tag` collides with the runtime's [`CONTROLLER_TAG`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        assert!(
            tag != CONTROLLER_TAG,
            "timer tag {tag} is reserved for the runtime"
        );
        self.net.set_timer(delay, tag)
    }

    /// Cancels a pending timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.net.cancel_timer(id);
    }

    /// The node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.net.rng()
    }

    /// Tears down the connection with `peer`.
    pub fn break_connection(&mut self, peer: NodeId) {
        self.net.break_connection(peer);
    }

    /// Appends an annotation to the simulation trace.
    pub fn note(&mut self, text: impl Into<String>) {
        self.net.note(text);
    }

    /// The domain (ISP / stub) label of a host (see
    /// [`cb_simnet::topology::Topology::domain`]).
    pub fn domain(&self, n: NodeId) -> u32 {
        self.net.domain(n)
    }

    /// The runtime's network model (read side).
    pub fn net_model(&self) -> &NetworkModel {
        &self.core.net_model
    }

    /// Actively probes `peer`: the peer's runtime echoes, and the reply
    /// folds a fresh latency sample into the network model. Use when a
    /// passive sample is not coming (e.g. before a first contact).
    pub fn probe(&mut self, peer: NodeId) {
        let now = self.net.now();
        self.net.send(peer, Envelope::Probe { sent_at: now });
    }

    /// The runtime's state model (read side).
    pub fn state_model(&self) -> &StateModel<C> {
        &self.core.state_model
    }

    /// Resolves an exposed choice with no predictive evaluation (random,
    /// heuristic, and learned resolvers never need one).
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn choose(&mut self, id: ChoiceId, context: ContextKey, options: &[OptionDesc]) -> usize {
        self.choose_with(id, context, options, &mut NullEvaluator)
    }

    /// Resolves an exposed choice, letting predictive resolvers evaluate
    /// options through `eval` (usually a
    /// [`crate::predict::ModelEvaluator`] built over the snapshot models).
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or the resolver returns an out-of-range
    /// index.
    pub fn choose_with(
        &mut self,
        id: ChoiceId,
        context: ContextKey,
        options: &[OptionDesc],
        eval: &mut dyn OptionEvaluator,
    ) -> usize {
        assert!(!options.is_empty(), "choice '{id}' has no options");
        let request = ChoiceRequest {
            id,
            options,
            context,
            state_fp: 0,
        };
        // Model-health snapshot for this decision: snapshot staleness,
        // worst network confidence among the peers the options name, and
        // steering pressure. Health-aware resolvers (the ladder) route
        // these into their degradation governor; everything else ignores
        // the call.
        let now = self.net.now();
        let mut min_conf = 1.0f64;
        for o in options {
            if o.key <= u32::MAX as u64 {
                let peer = NodeId(o.key as u32);
                if self.core.net_model.estimate(peer).is_some() {
                    min_conf = min_conf.min(self.core.net_model.confidence(peer, now));
                }
            }
        }
        let signals = crate::governor::HealthSignals {
            snapshot_staleness: self.core.state_model.oldest_age(now),
            min_peer_confidence: min_conf,
            steering_pressure: self.core.steering.active() as u64,
            deadline_fired: false,
            load: self.core.reported_load,
            now,
        };
        self.core.resolver.observe_health(&signals);
        // Tap per-option predictions for the decision's provenance span.
        let mut tap = TapEval {
            inner: eval,
            taps: Vec::new(),
        };
        let stopwatch = Stopwatch::start();
        let chosen = self.core.resolver.resolve(&request, &mut tap);
        let wall_ns = stopwatch.elapsed_ns();
        assert!(
            chosen < options.len(),
            "resolver returned out-of-range option {chosen}"
        );
        let prediction = self.core.resolver.last_prediction();
        // Dual-clock decision accounting. Sim time does not advance inside
        // a handler, so the deterministic clock records a *modeled* cost:
        // 1 µs per state the prediction explored (0 for non-predictive
        // resolvers). The wall clock records the real hardware cost and is
        // fingerprint-exempt.
        let states = prediction.map_or(0, |p| p.states_explored);
        self.core.telemetry.inc(keys::CORE_DECISIONS_TOTAL);
        self.core.telemetry.add(keys::CORE_STATES_EXPLORED, states);
        self.core
            .telemetry
            .record(keys::CORE_DECISION_LATENCY_SIM_US, states);
        self.core
            .telemetry
            .record(keys::CORE_DECISION_LATENCY_WALL_NS, wall_ns);
        self.core.telemetry.inc(&self.core.arm_key);
        // Reporting-only deadline accounting: the control arm's unenforced
        // budget. Charged against the evaluator's total per-decision spend,
        // not just the chosen option's prediction.
        if self.core.report_deadline_states > 0
            && tap.states_spent() > self.core.report_deadline_states
        {
            self.core
                .telemetry
                .inc(keys::CORE_PREDICT_DEADLINE_OVERRUNS);
        }
        // Evaluator-internal accounting (evalcache hits/misses, fused-pass
        // savings). Delta semantics: once per decision. Routed through a
        // scratch registry so the per-decision deltas can also land on the
        // provenance span, then merged (counters add) into the node
        // registry — identical totals to exporting directly.
        let mut eval_reg = Registry::new();
        tap.export_metrics(&mut eval_reg);
        let cache_hits = eval_reg.counter(keys::CORE_EVALCACHE_HITS);
        let cache_misses = eval_reg.counter(keys::CORE_EVALCACHE_MISSES);
        self.core.telemetry.merge(&eval_reg);
        let verdict = tap.verdict();
        // Open the DecisionSpan: parents = whatever event dispatched this
        // handler (deliver / timer / conn-break / start), carrying the full
        // option set, every tapped per-option prediction, the verdict,
        // cache disposition, and the resolver's own attrs (ladder rung,
        // governor level + dominant pressure cause).
        let mut attrs: Vec<(String, String)> = Vec::with_capacity(10 + tap.taps.len() * 3);
        attrs.push(("choice".into(), id.to_string()));
        attrs.push(("context".into(), context.0.to_string()));
        attrs.push(("resolver".into(), self.core.resolver.name().to_string()));
        attrs.push(("options".into(), options.len().to_string()));
        attrs.push(("chosen".into(), chosen.to_string()));
        attrs.push(("chosen_key".into(), options[chosen].key.to_string()));
        for (i, o) in options.iter().enumerate() {
            attrs.push((format!("opt{i}.key"), o.key.to_string()));
        }
        for (i, p) in &tap.taps {
            attrs.push((format!("opt{i}.objective"), format!("{}", p.objective)));
            attrs.push((format!("opt{i}.violations"), p.violations.to_string()));
            attrs.push((format!("opt{i}.states"), p.states_explored.to_string()));
        }
        attrs.push((
            "verdict".into(),
            match verdict {
                EvalVerdict::Complete => "complete",
                EvalVerdict::Partial => "partial",
            }
            .into(),
        ));
        attrs.push(("evalcache.hits".into(), cache_hits.to_string()));
        attrs.push(("evalcache.misses".into(), cache_misses.to_string()));
        attrs.append(&mut self.core.pending_attrs);
        self.core.resolver.decision_attrs(&mut attrs);
        let at_ns = self.net.now_ns();
        let cause: Vec<SpanId> = self.net.cause().into_iter().collect();
        let recorder = self.net.recorder_mut();
        let span_id = recorder.next_id(at_ns);
        let mut span = Span::new(span_id, SpanKind::Decision, format!("decide:{id}"), cause);
        span.sim_cost_us = states;
        span.wall_ns = wall_ns;
        span.attrs = attrs;
        recorder.push(span);
        // Effects the handler emits after this point (sends, timers, conn
        // breaks) are consequences of the decision, not merely of the
        // triggering event: re-parent them to the decision span.
        self.net.set_cause(span_id);
        self.core.decisions.push(DecisionRecord {
            at: self.net.now(),
            id,
            context,
            option_keys: options.iter().map(|o| o.key).collect(),
            chosen,
            prediction,
        });
        chosen
    }

    /// Reports the service's current load to the runtime as a normalized
    /// backlog (units of work-per-drain-interval; 0 = idle). The value is
    /// folded into every subsequent decision's
    /// [`crate::governor::HealthSignals`], so sustained overload steps a
    /// health-aware resolver's governor down even while the models stay
    /// fresh — and its removal lets the governor climb back up.
    pub fn report_load(&mut self, normalized_backlog: u64) {
        self.core.reported_load = normalized_backlog;
    }

    /// The most recently reported service load (see [`Self::report_load`]).
    pub fn reported_load(&self) -> u64 {
        self.core.reported_load
    }

    /// Adds `delta` to a service-owned telemetry counter. Totals are
    /// exported idempotently by [`RuntimeNode::telemetry`] and therefore
    /// sum across the fleet under [`Registry::merge`]. `key` should be a
    /// pre-registered standard key (e.g. the `workload.*` family) so
    /// masked-telemetry digests keep a stable key set.
    pub fn count(&mut self, key: &'static str, delta: u64) {
        *self.core.service_counters.entry(key).or_insert(0) += delta;
    }

    /// Reads back a service-owned counter total (see [`Self::count`]).
    pub fn counted(&self, key: &'static str) -> u64 {
        self.core.service_counters.get(key).copied().unwrap_or(0)
    }

    /// Queues an attribute for the *next* decision span this handler
    /// opens via [`Self::choose`] / [`Self::choose_with`] — e.g.
    /// `workload=flash` on an admission decision, so blame walks can
    /// filter decisions by the traffic regime that forced them.
    pub fn decision_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.core.pending_attrs.push((key.into(), value.into()));
    }

    /// Reports the realized reward of a past decision (learned resolvers
    /// use this; others ignore it).
    pub fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        self.core.resolver.feedback(id, context, option_key, reward);
    }

    /// The resolver's name (for experiment labelling).
    pub fn resolver_name(&self) -> &'static str {
        self.core.resolver.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::random::RandomResolver;
    use cb_simnet::sim::Sim;
    use cb_simnet::topology::Topology;

    /// A counter service: node 0 spams increments to everyone; everyone
    /// tracks the max seen and exposes a trivial choice on each message.
    #[derive(Debug)]
    struct CounterSvc {
        max_seen: u64,
        choices_made: u64,
    }

    impl CounterSvc {
        fn new() -> Self {
            CounterSvc {
                max_seen: 0,
                choices_made: 0,
            }
        }
    }

    impl Service for CounterSvc {
        type Msg = u64;
        type Checkpoint = u64;

        fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>) {
            if ctx.id() == NodeId(0) {
                ctx.set_timer(SimDuration::from_millis(100), 1);
            }
        }

        fn on_timer(
            &mut self,
            ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>,
            tag: u64,
        ) {
            if tag == 1 {
                self.max_seen += 1;
                for n in ctx.nodes() {
                    if n != ctx.id() {
                        ctx.send(n, self.max_seen);
                    }
                }
                if self.max_seen < 10 {
                    ctx.set_timer(SimDuration::from_millis(100), 1);
                }
            }
        }

        fn on_message(
            &mut self,
            ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>,
            _from: NodeId,
            msg: u64,
        ) {
            self.max_seen = self.max_seen.max(msg);
            let opts = [OptionDesc::key(0), OptionDesc::key(1)];
            let _ = ctx.choose("counter.ack", ContextKey::default(), &opts);
            self.choices_made += 1;
        }

        fn checkpoint(&self, _model: &StateModel<u64>) -> u64 {
            self.max_seen
        }

        fn neighbors(&self) -> Vec<NodeId> {
            vec![NodeId(0), NodeId(1), NodeId(2)]
        }
    }

    fn build() -> Sim<RuntimeNode<CounterSvc>> {
        let topo = Topology::star(3, SimDuration::from_millis(5), 10_000_000);
        Sim::new(topo, 77, |_| {
            RuntimeNode::new(
                CounterSvc::new(),
                RuntimeConfig::new(Box::new(RandomResolver::new(5)))
                    .controller_every(SimDuration::from_millis(500)),
            )
        })
    }

    #[test]
    fn end_to_end_messages_choices_and_checkpoints() {
        let mut sim = build();
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(30));
        // All nodes converged on the max counter.
        for n in [0u32, 1, 2] {
            assert_eq!(sim.actor(NodeId(n)).service().max_seen, 10, "node {n}");
        }
        // Choices were made and logged.
        let node1 = sim.actor(NodeId(1));
        assert_eq!(node1.service().choices_made, 10);
        assert_eq!(node1.decisions().len(), 10);
        assert_eq!(node1.decisions()[0].id, "counter.ack");
        // Controller ran and checkpoints flowed.
        assert!(node1.controller_cycles() > 3);
        let (sent, received) = node1.checkpoint_traffic();
        assert!(sent > 0 && received > 0, "sent={sent} received={received}");
        // The state model holds peers' checkpoints.
        assert!(!node1.state_model().is_empty());
    }

    #[test]
    fn passive_latency_measurement_populates_net_model() {
        let mut sim = build();
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(30));
        let node1 = sim.actor(NodeId(1));
        let (lat, conf) = node1
            .net_model()
            .predicted_latency(NodeId(0), sim.now())
            .expect("node 0 was measured");
        // Star with 5 ms spokes: one-way ≈ 10 ms.
        assert!(lat >= SimDuration::from_millis(9), "latency {lat}");
        assert!(lat <= SimDuration::from_millis(20), "latency {lat}");
        assert!(conf > 0.0);
    }

    #[test]
    fn steering_advisor_filters_messages() {
        let topo = Topology::star(3, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 78, |_| {
            let advisor: SteeringAdvisor<u64> = Box::new(|input| {
                // Predict doom from node 0 forever (test stub).
                if input.me == NodeId(1) {
                    vec![SteeringAdvice {
                        reason: "test-predicted-violation".into(),
                        from: NodeId(0),
                        action: FilterAction::DropAndBreak,
                    }]
                } else {
                    Vec::new()
                }
            });
            RuntimeNode::new(
                CounterSvc::new(),
                RuntimeConfig::new(Box::new(RandomResolver::new(5)))
                    .controller_every(SimDuration::from_millis(200))
                    .with_advisor(advisor),
            )
        });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(30));
        let node1 = sim.actor(NodeId(1));
        let (dropped, breaks) = node1.steering_stats();
        assert!(dropped > 0, "steering never fired");
        assert!(breaks > 0);
        // Node 2 runs no filter and keeps converging.
        assert_eq!(sim.actor(NodeId(2)).service().max_seen, 10);
        // Node 1 missed at least one increment delivery attempt; its view
        // may still converge via retries of later sends, but dropped > 0
        // proves interposition.
    }

    #[test]
    #[should_panic(expected = "reserved for the runtime")]
    fn controller_tag_is_reserved() {
        let topo = Topology::star(2, SimDuration::from_millis(5), 10_000_000);
        struct Bad;
        impl Service for Bad {
            type Msg = u8;
            type Checkpoint = u8;
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, Self::Msg, Self::Checkpoint>) {
                ctx.set_timer(SimDuration::from_millis(1), CONTROLLER_TAG);
            }
            fn on_message(&mut self, _: &mut ServiceCtx<'_, '_, u8, u8>, _: NodeId, _: u8) {}
            fn checkpoint(&self, _model: &StateModel<u8>) -> u8 {
                0
            }
            fn neighbors(&self) -> Vec<NodeId> {
                Vec::new()
            }
        }
        let mut sim = Sim::new(topo, 1, |_| {
            RuntimeNode::new(Bad, RuntimeConfig::new(Box::new(RandomResolver::new(1))))
        });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(1));
    }

    #[test]
    fn manual_probe_measures_latency_without_app_traffic() {
        let topo = Topology::star(2, SimDuration::from_millis(15), 10_000_000);
        let mut sim = Sim::new(topo, 81, |_| {
            RuntimeNode::new(
                CounterSvc::new(),
                // Controller disabled: only the probe can produce samples.
                RuntimeConfig::new(Box::new(RandomResolver::new(5)))
                    .controller_every(SimDuration::ZERO),
            )
        });
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        assert!(sim
            .actor(NodeId(0))
            .net_model()
            .estimate(NodeId(1))
            .is_none());
        sim.invoke(NodeId(0), |_node, ctx| {
            let now = ctx.now();
            ctx.send(NodeId(1), Envelope::Probe { sent_at: now });
        });
        sim.run_until_quiescent(SimTime::from_secs(5));
        let (lat, conf) = sim
            .actor(NodeId(0))
            .net_model()
            .predicted_latency(NodeId(1), sim.now())
            .expect("probe reply measured");
        // Star with 15 ms spokes: RTT/2 = one-way = 30 ms (plus handshake
        // on the first message, folded into the probe RTT).
        assert!(lat >= SimDuration::from_millis(29), "latency {lat}");
        assert!(conf > 0.5);
    }

    #[test]
    fn conn_break_collapses_model_confidence_through_the_runtime() {
        let topo = Topology::star(2, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 91, |_| {
            RuntimeNode::new(
                CounterSvc::new(),
                // Controller disabled: no checkpoint traffic can refresh
                // node 0's estimate of node 1 behind our back.
                RuntimeConfig::new(Box::new(RandomResolver::new(5)))
                    .controller_every(SimDuration::ZERO),
            )
        });
        sim.start_all();
        sim.run_until(SimTime::ZERO);
        sim.invoke(NodeId(0), |_n, ctx| {
            let now = ctx.now();
            ctx.send(NodeId(1), Envelope::Probe { sent_at: now });
        });
        sim.run_until_quiescent(SimTime::from_secs(2));
        let before = sim
            .actor(NodeId(0))
            .net_model()
            .confidence(NodeId(1), sim.now());
        assert!(before > 0.9, "probe sample missing: {before}");
        sim.invoke(NodeId(0), |_n, ctx| ctx.break_connection(NodeId(1)));
        sim.run_until_quiescent(SimTime::from_secs(4));
        let after = sim
            .actor(NodeId(0))
            .net_model()
            .confidence(NodeId(1), sim.now());
        assert!(
            after < before * 0.1,
            "break did not collapse confidence: {before} -> {after}"
        );
        // The estimate itself survives as the best structural guess.
        assert!(sim
            .actor(NodeId(0))
            .net_model()
            .estimate(NodeId(1))
            .is_some());
    }

    #[test]
    fn auto_probe_refreshes_stale_estimates() {
        let topo = Topology::star(3, SimDuration::from_millis(5), 10_000_000);
        let mut sim = Sim::new(topo, 82, |_| {
            RuntimeNode::new(
                CounterSvc::new(),
                RuntimeConfig::new(Box::new(RandomResolver::new(5)))
                    .controller_every(SimDuration::from_millis(500))
                    .probe_when_stale(0.9),
            )
        });
        sim.start_all();
        // No application traffic at all (node 0's timer drives sends, but
        // CounterSvc only sends from node 0; neighbors() covers 0..3, so
        // every node auto-probes its stale neighbors each cycle).
        sim.run_until(SimTime::from_secs(10));
        let node2 = sim.actor(NodeId(2));
        let conf = node2.net_model().confidence(NodeId(1), sim.now());
        assert!(
            conf > 0.5,
            "auto-probe left node 1 stale at confidence {conf}"
        );
    }

    #[test]
    fn telemetry_tracks_decisions_and_fleet_merge() {
        let mut sim = build();
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(30));
        let node1 = sim.actor(NodeId(1));
        let reg = node1.telemetry();
        // Per-node: one decision per received message, all resolved by the
        // random arm with zero modeled (sim-clock) latency.
        assert_eq!(reg.counter(keys::CORE_DECISIONS_TOTAL), 10);
        assert_eq!(reg.counter("core.resolver_arm.random"), 10);
        let sim_lat = reg.hist(keys::CORE_DECISION_LATENCY_SIM_US).unwrap();
        assert_eq!(sim_lat.count(), 10);
        assert_eq!(sim_lat.max(), 0, "random resolver explores no states");
        assert_eq!(
            reg.hist(keys::CORE_DECISION_LATENCY_WALL_NS)
                .unwrap()
                .count(),
            10
        );
        assert_eq!(
            reg.counter(keys::CORE_CONTROLLER_CYCLES),
            node1.controller_cycles()
        );
        // Snapshot is idempotent.
        assert_eq!(reg, node1.telemetry());
        // Fleet aggregate: decisions add across nodes, net.* filled in.
        let fleet = fleet_telemetry(&sim);
        assert_eq!(fleet.counter(keys::CORE_DECISIONS_TOTAL), 20);
        assert!(fleet.counter(keys::NET_MSGS_DELIVERED) > 0);
        assert!(fleet.hist(keys::NET_DELIVERY_LATENCY_US).unwrap().count() > 0);
        // Deterministic halves match across a re-run after masking.
        let mut sim2 = build();
        sim2.start_all();
        sim2.run_until_quiescent(SimTime::from_secs(30));
        assert_eq!(fleet.masked(), fleet_telemetry(&sim2).masked());
    }

    #[test]
    fn decision_log_records_option_keys() {
        let mut sim = build();
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(5));
        let recs = sim.actor(NodeId(1)).decisions();
        assert!(!recs.is_empty());
        for r in recs {
            assert_eq!(r.option_keys, vec![0, 1]);
            assert!(r.chosen < 2);
        }
    }
}
