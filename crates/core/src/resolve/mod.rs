//! Choice-resolution strategies.
//!
//! Every resolver implements [`crate::choice::Resolver`]; the experiments
//! compare them directly:
//!
//! * [`random`] — uniform choice, the "Choice-Random" control arm.
//! * [`heuristic`] — a fixed score over option features, the stand-in for
//!   hand-tuned adaptive mechanisms.
//! * [`lookahead`] — consequence prediction per option, the
//!   "Choice-CrystalBall" arm.
//! * [`learned`] — contextual bandits (ε-greedy / UCB1 / EXP3) fed by
//!   realized rewards: the fast learned alternative of §3.4.
//! * [`cached`] — memoizes any inner resolver to keep expensive prediction
//!   off the critical path.
//! * [`precomputed`] — offline decision tables (§3.4's "precompute the
//!   impact of actions before the system is deployed").
//! * [`damped`] — switch hysteresis against synchronized flapping (§3.4's
//!   emergent-behavior concern).
//! * [`ladder`] — the health-governed fallback ladder: lookahead → cached →
//!   heuristic → static safe default, stepped by the
//!   [`DegradationGovernor`](crate::governor::DegradationGovernor).

pub mod cached;
pub mod damped;
pub mod heuristic;
pub mod ladder;
pub mod learned;
pub mod lookahead;
pub mod precomputed;
pub mod random;

pub use cached::CachedResolver;
pub use damped::DampedResolver;
pub use heuristic::HeuristicResolver;
pub use ladder::LadderResolver;
pub use learned::{ArmStats, BanditPolicy, LearnedResolver};
pub use lookahead::LookaheadResolver;
pub use precomputed::{precompute_table, PrecomputedResolver};
pub use random::RandomResolver;
