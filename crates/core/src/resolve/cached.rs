//! The cached resolver: keep expensive prediction off the critical path.
//!
//! Paper §3.4: "a useful design decision is removing complex mechanisms for
//! making the choices from the critical path, using choices based on
//! previous similar scenarios as a fast alternative, and updating the
//! choices as more information becomes available." This wrapper memoizes an
//! inner (expensive) resolver's decision per (choice point, context,
//! option-set) and refreshes it every `refresh_every` uses — the refresh
//! standing in for the background recomputation a multi-core deployment
//! would run concurrently.

use crate::choice::{ChoiceId, ChoiceRequest, ContextKey, OptionEvaluator, Resolver};
use cb_mck::hash::fingerprint;
use std::collections::BTreeMap;

type CacheKey = (ChoiceId, ContextKey, u64);

struct CacheEntry {
    /// The chosen option's key (not index: option order may vary between
    /// requests with the same set).
    chosen_key: u64,
    /// Uses since the last refresh.
    uses: u64,
}

/// Wraps a resolver and serves cached decisions, recomputing periodically.
///
/// # Examples
///
/// ```
/// use cb_core::choice::{ChoiceRequest, NullEvaluator, OptionDesc, Prediction, FnEvaluator, Resolver};
/// use cb_core::resolve::cached::CachedResolver;
/// use cb_core::resolve::lookahead::LookaheadResolver;
///
/// let mut r = CachedResolver::new(LookaheadResolver::new(), 100);
/// let opts = [OptionDesc::key(0), OptionDesc::key(1)];
/// let req = ChoiceRequest::new("x", &opts);
/// let mut evals = 0u32;
/// for _ in 0..50 {
///     let mut eval = FnEvaluator(|i| { evals += 1; Prediction { objective: i as f64, violations: 0, states_explored: 1 } });
///     r.resolve(&req, &mut eval);
/// }
/// // Only the first call evaluated (2 options); 49 were served from cache.
/// assert_eq!(evals, 2);
/// ```
pub struct CachedResolver<R: Resolver> {
    inner: R,
    refresh_every: u64,
    cache: BTreeMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
    refreshes: u64,
}

impl<R: Resolver> CachedResolver<R> {
    /// Wraps `inner`, recomputing each cached decision after
    /// `refresh_every` cache hits.
    ///
    /// # Panics
    ///
    /// Panics if `refresh_every` is zero.
    pub fn new(inner: R, refresh_every: u64) -> Self {
        assert!(refresh_every > 0, "refresh interval must be positive");
        CachedResolver {
            inner,
            refresh_every,
            cache: BTreeMap::new(),
            hits: 0,
            misses: 0,
            refreshes: 0,
        }
    }

    /// Cache hits served so far (no inner resolution).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cold misses so far: no usable entry existed (new key, option-set
    /// hash collision, or post-invalidation), so the inner resolver ran.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Scheduled refreshes so far: an entry existed but had reached its
    /// reuse budget, so the inner resolver recomputed it.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Total resolves served. Invariant: `hits + misses + refreshes ==
    /// resolves` — every resolve is exactly one of the three.
    pub fn resolves(&self) -> u64 {
        self.hits + self.misses + self.refreshes
    }

    /// Drops all cached decisions (e.g. after a detected regime change).
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }

    /// Access to the wrapped resolver.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    fn option_set_hash(request: &ChoiceRequest<'_>) -> u64 {
        let mut keys: Vec<u64> = request.options.iter().map(|o| o.key).collect();
        keys.sort_unstable();
        fingerprint(&keys)
    }
}

impl<R: Resolver> Resolver for CachedResolver<R> {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        let key = (request.id, request.context, Self::option_set_hash(request));
        // Every resolve is exactly one of hit / miss / refresh:
        //   hit     — live entry served without touching the inner resolver;
        //   refresh — entry exists but exhausted its reuse budget;
        //   miss    — no usable entry (cold key, option-set hash collision,
        //             or post-invalidation).
        let is_refresh = match self.cache.get_mut(&key) {
            Some(entry) if entry.uses < self.refresh_every => {
                entry.uses += 1;
                // The cached key must still be present (same option-set hash
                // guarantees it barring hash collisions).
                if let Some(idx) = request
                    .options
                    .iter()
                    .position(|o| o.key == entry.chosen_key)
                {
                    self.hits += 1;
                    return idx;
                }
                false // collision: treat as a cold miss
            }
            Some(_) => true,
            None => false,
        };
        if is_refresh {
            self.refreshes += 1;
        } else {
            self.misses += 1;
        }
        let idx = self.inner.resolve(request, eval);
        assert!(
            idx < request.len(),
            "inner resolver returned out-of-range index"
        );
        self.cache.insert(
            key,
            CacheEntry {
                chosen_key: request.options[idx].key,
                uses: 0,
            },
        );
        idx
    }

    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        self.inner.feedback(id, context, option_key, reward);
    }

    fn name(&self) -> &'static str {
        "cached"
    }

    fn last_prediction(&self) -> Option<crate::choice::Prediction> {
        self.inner.last_prediction()
    }

    fn export_metrics(&self, reg: &mut cb_telemetry::Registry) {
        reg.set_counter(cb_telemetry::keys::CORE_CACHE_HITS, self.hits);
        reg.set_counter(cb_telemetry::keys::CORE_CACHE_MISSES, self.misses);
        reg.set_counter(cb_telemetry::keys::CORE_CACHE_REFRESHES, self.refreshes);
        self.inner.export_metrics(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{NullEvaluator, OptionDesc};
    use crate::resolve::random::RandomResolver;

    fn opts(keys: &[u64]) -> Vec<OptionDesc> {
        keys.iter().map(|&k| OptionDesc::key(k)).collect()
    }

    #[test]
    fn caches_until_refresh() {
        let mut r = CachedResolver::new(RandomResolver::new(1), 5);
        let o = opts(&[10, 20, 30]);
        let req = ChoiceRequest::new("c", &o);
        let first = r.resolve(&req, &mut NullEvaluator);
        for _ in 0..5 {
            assert_eq!(r.resolve(&req, &mut NullEvaluator), first);
        }
        assert_eq!(r.misses(), 1);
        assert_eq!(r.hits(), 5);
        assert_eq!(r.refreshes(), 0);
        // Sixth reuse triggers a refresh (not a cold miss).
        let _ = r.resolve(&req, &mut NullEvaluator);
        assert_eq!(r.misses(), 1);
        assert_eq!(r.refreshes(), 1);
        assert_eq!(r.resolves(), r.hits() + r.misses() + r.refreshes());
        assert_eq!(r.resolves(), 7);
    }

    #[test]
    fn cache_keyed_by_option_set_not_order() {
        let mut r = CachedResolver::new(RandomResolver::new(3), 100);
        let a = opts(&[1, 2, 3]);
        let b = opts(&[3, 2, 1]);
        let pick_a = r.resolve(&ChoiceRequest::new("c", &a), &mut NullEvaluator);
        let pick_b = r.resolve(&ChoiceRequest::new("c", &b), &mut NullEvaluator);
        // Same decision by key, found at a different index.
        assert_eq!(a[pick_a].key, b[pick_b].key);
        assert_eq!(r.misses(), 1);
    }

    #[test]
    fn different_option_sets_miss() {
        let mut r = CachedResolver::new(RandomResolver::new(3), 100);
        let a = opts(&[1, 2]);
        let b = opts(&[1, 2, 3]);
        r.resolve(&ChoiceRequest::new("c", &a), &mut NullEvaluator);
        r.resolve(&ChoiceRequest::new("c", &b), &mut NullEvaluator);
        assert_eq!(r.misses(), 2);
    }

    #[test]
    fn different_contexts_miss() {
        let mut r = CachedResolver::new(RandomResolver::new(3), 100);
        let o = opts(&[1, 2]);
        r.resolve(
            &ChoiceRequest::new("c", &o).in_context(ContextKey(1)),
            &mut NullEvaluator,
        );
        r.resolve(
            &ChoiceRequest::new("c", &o).in_context(ContextKey(2)),
            &mut NullEvaluator,
        );
        assert_eq!(r.misses(), 2);
    }

    #[test]
    fn invalidate_clears() {
        let mut r = CachedResolver::new(RandomResolver::new(3), 100);
        let o = opts(&[1, 2]);
        let req = ChoiceRequest::new("c", &o);
        r.resolve(&req, &mut NullEvaluator);
        r.invalidate();
        r.resolve(&req, &mut NullEvaluator);
        // Post-invalidation resolutions are cold misses, not refreshes.
        assert_eq!(r.misses(), 2);
        assert_eq!(r.refreshes(), 0);
    }

    #[test]
    fn export_metrics_snapshots_absolute_counts() {
        use cb_telemetry::{keys, Registry};
        let mut r = CachedResolver::new(RandomResolver::new(1), 2);
        let o = opts(&[10, 20]);
        let req = ChoiceRequest::new("c", &o);
        for _ in 0..6 {
            r.resolve(&req, &mut NullEvaluator);
        }
        let mut reg = Registry::new();
        r.export_metrics(&mut reg);
        r.export_metrics(&mut reg); // idempotent
        assert_eq!(reg.counter(keys::CORE_CACHE_HITS), r.hits());
        assert_eq!(reg.counter(keys::CORE_CACHE_MISSES), r.misses());
        assert_eq!(reg.counter(keys::CORE_CACHE_REFRESHES), r.refreshes());
        assert_eq!(
            reg.counter(keys::CORE_CACHE_HITS)
                + reg.counter(keys::CORE_CACHE_MISSES)
                + reg.counter(keys::CORE_CACHE_REFRESHES),
            6
        );
    }

    #[test]
    #[should_panic(expected = "refresh interval")]
    fn zero_refresh_rejected() {
        let _ = CachedResolver::new(RandomResolver::new(0), 0);
    }
}
