//! The resolver fallback ladder: graceful degradation of choice resolution.
//!
//! Prediction quality tracks model health (paper §3.4). Instead of a binary
//! predict-or-don't switch, the ladder composes six rungs of decreasing
//! cost and model dependence and lets the
//! [`DegradationGovernor`](crate::governor::DegradationGovernor) pick the
//! rung per decision:
//!
//! | rung | strategy | needs |
//! |---|---|---|
//! | 0 | full lookahead ([`LookaheadResolver`]) | fresh models, budget |
//! | 1 | cached lookahead ([`CachedResolver`]) | occasionally-fresh models |
//! | 2 | precomputed table ([`PrecomputedResolver`]) | a cross-run policy store hit |
//! | 3 | learned bandit ([`LearnedResolver`]) | prior feedback or warm-start |
//! | 4 | feature heuristic (lowest first feature) | option features only |
//! | 5 | static safe default (first option) | nothing |
//!
//! The governor's three health levels map onto the *fallback chain*
//! lookahead → cached → heuristic → static (rungs 0, 1, 4, 5); a
//! [`Partial`](EvalVerdict::Partial) verdict from the previous decision's
//! evaluator bumps the next decision one chain position further down.
//! Rungs 2 and 3 are the *fast rungs*: they answer only when they actually
//! know something — rung 2 when a loaded [`PolicyStore`] has a
//! content-addressed entry for the exact decision at hand, rung 3 when the
//! bandit has arm statistics for the (choice, context) pair — and are
//! consulted *before* the expensive chain rungs, so a warm store turns the
//! common-case decision into a table lookup (~ns, zero modeled states).
//!
//! Staleness degrades safely two ways. A stored entry whose chosen option
//! key is no longer offered is a miss, never a wrong answer. And while the
//! governor reports `Healthy` — the only level at which fresh lookahead is
//! trustworthy — every `policy_refresh_every`-th store hit is re-resolved
//! by full lookahead and compared against the store ("governor-gated
//! background refresh"): a mismatch counts `core.policy.stale`, serves the
//! *fresh* answer, and re-records it.
//!
//! While the governor reports `Healthy`, no deadline fired, and no policy
//! store is loaded, the ladder remains a *pure delegation* to its rung-0
//! `LookaheadResolver` — decision-for-decision identical, which the
//! differential tests assert.

use crate::choice::{
    ChoiceId, ChoiceRequest, ContextKey, EvalVerdict, OptionEvaluator, Prediction, Resolver,
};
use crate::governor::{DegradationGovernor, GovernorConfig, Health, HealthSignals};
use crate::resolve::cached::CachedResolver;
use crate::resolve::learned::{BanditPolicy, LearnedResolver};
use crate::resolve::lookahead::LookaheadResolver;
use crate::resolve::precomputed::PrecomputedResolver;
use cb_mck::hash::fingerprint;
use cb_policy::{PolicyEntry, PolicyKey, PolicyStore};
use cb_telemetry::{keys, Registry};
use std::sync::{Arc, Mutex};

/// Number of rungs on the ladder.
pub const RUNGS: usize = 6;

/// The health-driven fallback chain: governor level + deadline bump pick a
/// position here, not a raw rung index (the fast rungs 2–3 are gated on
/// knowledge, not health).
const CHAIN: [usize; 4] = [0, 1, 4, 5];

/// The content address of a choice request in the cross-run policy store:
/// hashed choice id, raw context key, and an order-independent fingerprint
/// of the offered option keys folded with the request's explicit state
/// fingerprint. Option *rotations* (same set, different order) address the
/// same entry; the stored value is an option key, not an index, so the
/// answer is rotation-stable too.
pub fn policy_key(request: &ChoiceRequest<'_>) -> PolicyKey {
    let mut keys: Vec<u64> = request.options.iter().map(|o| o.key).collect();
    keys.sort_unstable();
    let set = fingerprint(&keys);
    PolicyKey::for_choice(
        request.id,
        request.context.0,
        set ^ cb_policy::mix64(request.state_fp),
    )
}

/// How the policy store participated in the most recent decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyDisposition {
    /// No store is loaded.
    Off,
    /// Served from the store (rung 2, zero modeled states).
    Hit,
    /// Store loaded but could not answer; the health chain resolved.
    Miss,
    /// Refresh cadence fired: fresh lookahead agreed with the store.
    Refreshed,
    /// Refresh cadence fired and caught a stale entry: the fresh answer
    /// was served and re-recorded.
    Stale,
}

impl PolicyDisposition {
    /// Stable label for provenance attributes.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyDisposition::Off => "off",
            PolicyDisposition::Hit => "hit",
            PolicyDisposition::Miss => "miss",
            PolicyDisposition::Refreshed => "refresh",
            PolicyDisposition::Stale => "stale",
        }
    }
}

/// Fallback type for the ladder's precomputed rung. Never invoked: the
/// ladder consults the table through `try_resolve`, which has no fallback
/// path.
struct NoFallback;

impl Resolver for NoFallback {
    fn resolve(&mut self, _request: &ChoiceRequest<'_>, _eval: &mut dyn OptionEvaluator) -> usize {
        unreachable!("ladder consults the precomputed table via try_resolve only")
    }

    fn name(&self) -> &'static str {
        "unreachable"
    }
}

/// A health-governed resolver that steps down a ladder of strategies as the
/// predictive model degrades, and climbs back only after sustained health.
pub struct LadderResolver {
    /// Rung 0: full per-decision lookahead.
    lookahead: LookaheadResolver,
    /// Rung 1: cached lookahead (its own inner `LookaheadResolver` runs
    /// only on misses/refreshes).
    cached: CachedResolver<LookaheadResolver>,
    /// Rung 2: the precomputed table, lazily materialized from policy-store
    /// hits (the store keys are hashed; the live request supplies the
    /// `'static` choice id the table needs).
    precomputed: PrecomputedResolver<NoFallback>,
    /// Rung 3: contextual bandit, trained by live feedback and warm-started
    /// from policy-store hits. ε=0 (pure exploitation): the rung only fires
    /// when arms exist, and exploration is the store's job, not survival
    /// mode's.
    learned: LearnedResolver,
    /// The health state machine deciding the base chain position.
    governor: DegradationGovernor,
    /// Set when the previous decision's evaluator reported a `Partial`
    /// verdict (prediction deadline fired): the next decision is resolved
    /// one chain position lower than the governor alone would pick.
    deadline_pending: bool,
    /// Decisions resolved on each rung.
    rung_hits: [u64; RUNGS],
    /// Rung used for the most recent decision.
    last_rung: usize,
    /// The prediction backing the most recent decision (rungs 0–2 only).
    last_prediction: Option<Prediction>,
    /// Warm side: the loaded cross-run policy store.
    policy: Option<Arc<PolicyStore>>,
    /// Training side: where rung-0 decisions are recorded.
    recorder: Option<Arc<Mutex<PolicyStore>>>,
    /// Every n-th store hit is re-checked by fresh lookahead while Healthy.
    /// 0 disables refresh.
    policy_refresh_every: u64,
    policy_hits: u64,
    policy_misses: u64,
    policy_stale: u64,
    policy_inserts: u64,
    /// Refresh lookaheads actually performed. Diverges from
    /// `policy_hits / policy_refresh_every` exactly when the governor
    /// suppressed refreshes under degradation.
    policy_refreshes: u64,
    last_policy: PolicyDisposition,
}

impl LadderResolver {
    /// A ladder with default governor thresholds and a cache refresh
    /// interval of 16 uses.
    pub fn new() -> Self {
        LadderResolver::with_config(GovernorConfig::default(), 16)
    }

    /// A ladder with explicit governor thresholds and cache refresh
    /// interval (also used as the policy-store refresh cadence).
    ///
    /// # Panics
    ///
    /// Panics if `refresh_every` is zero (via [`CachedResolver::new`]).
    pub fn with_config(cfg: GovernorConfig, refresh_every: u64) -> Self {
        LadderResolver {
            lookahead: LookaheadResolver::new(),
            cached: CachedResolver::new(LookaheadResolver::new(), refresh_every),
            precomputed: PrecomputedResolver::new(NoFallback),
            learned: LearnedResolver::new(BanditPolicy::EpsilonGreedy { epsilon: 0.0 }, 0),
            governor: DegradationGovernor::new(cfg),
            deadline_pending: false,
            rung_hits: [0; RUNGS],
            last_rung: 0,
            last_prediction: None,
            policy: None,
            recorder: None,
            policy_refresh_every: refresh_every,
            policy_hits: 0,
            policy_misses: 0,
            policy_stale: 0,
            policy_inserts: 0,
            policy_refreshes: 0,
            last_policy: PolicyDisposition::Off,
        }
    }

    /// Loads a cross-run policy store: content-addressed hits are served on
    /// the precomputed rung without evaluating anything.
    pub fn with_policy(mut self, store: Arc<PolicyStore>) -> Self {
        self.policy = Some(store);
        self
    }

    /// Records every rung-0 (fresh lookahead) decision into `recorder` so a
    /// campaign sweep can persist it as a policy store.
    pub fn recording_into(mut self, recorder: Arc<Mutex<PolicyStore>>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The governor's current health level.
    pub fn health(&self) -> Health {
        self.governor.health()
    }

    /// Read access to the governor (transition counters etc.).
    pub fn governor(&self) -> &DegradationGovernor {
        &self.governor
    }

    /// Decisions resolved on each rung, index 0 (lookahead) to 5 (static).
    pub fn rung_hits(&self) -> [u64; RUNGS] {
        self.rung_hits
    }

    /// The rung used for the most recent decision.
    pub fn last_rung(&self) -> usize {
        self.last_rung
    }

    /// How the policy store participated in the most recent decision.
    pub fn last_policy(&self) -> PolicyDisposition {
        self.last_policy
    }

    /// Policy-store counters: (hits, misses, stale, inserts).
    pub fn policy_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.policy_hits,
            self.policy_misses,
            self.policy_stale,
            self.policy_inserts,
        )
    }

    /// Refresh lookaheads actually performed (suppressed while the
    /// governor reports worse than `Healthy`).
    pub fn policy_refreshes(&self) -> u64 {
        self.policy_refreshes
    }

    /// Whether the next decision will be bumped a rung down because the
    /// previous decision's prediction deadline fired.
    pub fn deadline_pending(&self) -> bool {
        self.deadline_pending
    }

    /// Rung 4: prefer the lowest first feature (conventionally the
    /// cheapest/closest option); options without features score as
    /// `+INFINITY` cost and lose to any featured option. Ties break to the
    /// earliest option, keeping the rung deterministic.
    fn heuristic_pick(request: &ChoiceRequest<'_>) -> usize {
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        for (i, opt) in request.options.iter().enumerate() {
            let cost = opt.features.first().copied().unwrap_or(f64::INFINITY);
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }
        best
    }

    /// Records the decision just made (chosen key + backing prediction)
    /// into the training store, if one is attached.
    fn record(&mut self, request: &ChoiceRequest<'_>, idx: usize) {
        if let (Some(rec), Some(p)) = (&self.recorder, self.last_prediction) {
            let entry = PolicyEntry::new(
                request.options[idx].key,
                p.objective,
                p.violations,
                p.states_explored,
            );
            rec.lock()
                .expect("policy recorder poisoned")
                .insert(policy_key(request), entry);
            self.policy_inserts += 1;
        }
    }

    /// Consults the loaded policy store. `Some((idx, rung))` when the store
    /// answered (or a due refresh re-resolved); `None` on miss.
    fn consult_policy(
        &mut self,
        request: &ChoiceRequest<'_>,
        eval: &mut dyn OptionEvaluator,
        base: usize,
    ) -> Option<(usize, usize)> {
        let store = self.policy.clone()?;
        let entry = match store.get(&policy_key(request)) {
            Some(e) => *e,
            None => {
                self.policy_misses += 1;
                return None;
            }
        };
        if !request.options.iter().any(|o| o.key == entry.chosen_key) {
            // The stored option left the set (peer gone, block done): a
            // safe miss, never a wrong answer.
            self.policy_misses += 1;
            return None;
        }
        self.policy_hits += 1;
        // Governor-gated honesty check: only while Healthy is fresh
        // lookahead trustworthy enough to arbitrate staleness — and under
        // Degraded/Survival overload, refresh work is exactly the load we
        // shed first. `base == 0` already implies Healthy with no deadline
        // bump; the health check makes the gate explicit and keeps it if
        // the chain mapping ever changes.
        let refresh_due = base == 0
            && self.governor.health() == Health::Healthy
            && self.policy_refresh_every > 0
            && self.policy_hits.is_multiple_of(self.policy_refresh_every);
        if refresh_due {
            self.policy_refreshes += 1;
            let fresh = self.lookahead.resolve(request, eval);
            self.last_prediction = self.lookahead.last_prediction();
            self.last_policy = if request.options[fresh].key != entry.chosen_key {
                self.policy_stale += 1;
                PolicyDisposition::Stale
            } else {
                PolicyDisposition::Refreshed
            };
            self.record(request, fresh);
            return Some((fresh, 0));
        }
        // Warm the first-class fast rungs with the store's conclusion: the
        // precomputed table serves this decision; the bandit gains a prior
        // arm so rung 3 can generalize when the option set shifts later.
        self.last_policy = PolicyDisposition::Hit;
        self.precomputed
            .insert(request.id, request.context, entry.chosen_key);
        if self
            .learned
            .arm(request.id, request.context, entry.chosen_key)
            .is_none()
        {
            self.learned
                .feedback(request.id, request.context, entry.chosen_key, 1.0);
        }
        let idx = self
            .precomputed
            .try_resolve(request)
            .expect("entry just warmed must resolve");
        self.last_prediction = Some(Prediction {
            objective: entry.objective(),
            violations: entry.violations,
            states_explored: 0,
        });
        Some((idx, 2))
    }
}

impl Default for LadderResolver {
    fn default() -> Self {
        LadderResolver::new()
    }
}

impl Resolver for LadderResolver {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        let mut pos = self.governor.health().rung();
        if self.deadline_pending {
            pos = (pos + 1).min(CHAIN.len() - 1);
        }
        let base = CHAIN[pos];
        self.last_policy = if self.policy.is_some() {
            PolicyDisposition::Miss
        } else {
            PolicyDisposition::Off
        };
        // The store-backed fast path runs at every non-static level: a
        // content-addressed hit is cheaper than anything else the ladder
        // can do, and under degradation it is also *better* (it memoizes a
        // healthy run's lookahead).
        let resolved = if base < 5 {
            self.consult_policy(request, eval, base)
        } else {
            None
        };
        let (idx, rung) = match resolved {
            Some(v) => v,
            None => match base {
                0 => {
                    let i = self.lookahead.resolve(request, eval);
                    self.last_prediction = self.lookahead.last_prediction();
                    self.record(request, i);
                    (i, 0)
                }
                1 => {
                    let i = self.cached.resolve(request, eval);
                    self.last_prediction = self.cached.last_prediction();
                    (i, 1)
                }
                4 => {
                    self.last_prediction = None;
                    if self.learned.has_arms(request.id, request.context) {
                        // Survival with a trained bandit: exploit what past
                        // feedback (or a warm store) taught, model-free.
                        (self.learned.resolve(request, eval), 3)
                    } else {
                        (Self::heuristic_pick(request), 4)
                    }
                }
                _ => {
                    // Static safe default: the service's first-listed option.
                    self.last_prediction = None;
                    (0, 5)
                }
            },
        };
        self.last_rung = rung;
        self.rung_hits[rung] += 1;
        // A Partial verdict means this decision's prediction hit its
        // deadline: bump the next decision down a rung. Non-evaluating
        // rungs leave the verdict Complete and the bump self-clears — the
        // ladder automatically re-probes the governor's level.
        self.deadline_pending = eval.verdict() == EvalVerdict::Partial;
        idx
    }

    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        self.lookahead.feedback(id, context, option_key, reward);
        self.cached.feedback(id, context, option_key, reward);
        self.learned.feedback(id, context, option_key, reward);
    }

    fn observe_health(&mut self, signals: &HealthSignals) {
        // Carry the pending deadline event into the governor's view: the
        // runtime may not know the evaluator's verdict, but the ladder does.
        let mut s = *signals;
        s.deadline_fired = s.deadline_fired || self.deadline_pending;
        self.governor.observe(&s);
    }

    fn name(&self) -> &'static str {
        "ladder"
    }

    fn last_prediction(&self) -> Option<Prediction> {
        self.last_prediction
    }

    fn decision_attrs(&self, out: &mut Vec<(String, String)>) {
        out.push(("ladder.rung".into(), self.last_rung.to_string()));
        // How many higher-fidelity chain rungs were passed over (fast-rung
        // hits skip the whole chain below them).
        out.push(("ladder.rungs_skipped".into(), self.last_rung.to_string()));
        out.push((
            "governor.level".into(),
            self.governor.health().label().into(),
        ));
        out.push((
            "governor.cause".into(),
            self.governor.last_cause().label().into(),
        ));
        out.push((
            "ladder.deadline_pending".into(),
            self.deadline_pending.to_string(),
        ));
        out.push(("policy".into(), self.last_policy.label().into()));
    }

    fn export_metrics(&self, reg: &mut Registry) {
        reg.set_counter(keys::CORE_LADDER_RUNG_LOOKAHEAD, self.rung_hits[0]);
        reg.set_counter(keys::CORE_LADDER_RUNG_CACHED, self.rung_hits[1]);
        reg.set_counter(keys::CORE_LADDER_RUNG_PRECOMPUTED, self.rung_hits[2]);
        reg.set_counter(keys::CORE_LADDER_RUNG_LEARNED, self.rung_hits[3]);
        reg.set_counter(keys::CORE_LADDER_RUNG_HEURISTIC, self.rung_hits[4]);
        reg.set_counter(keys::CORE_LADDER_RUNG_STATIC, self.rung_hits[5]);
        reg.set_counter(keys::CORE_POLICY_HITS, self.policy_hits);
        reg.set_counter(keys::CORE_POLICY_MISSES, self.policy_misses);
        reg.set_counter(keys::CORE_POLICY_STALE, self.policy_stale);
        reg.set_counter(keys::CORE_POLICY_INSERTS, self.policy_inserts);
        reg.set_counter(keys::CORE_POLICY_REFRESH, self.policy_refreshes);
        self.governor.export_metrics(reg);
        // Both rungs 0 and 1 run lookahead evaluations; export the sum
        // rather than delegating (delegation would overwrite the shared
        // key with whichever inner exported last).
        reg.set_counter(
            keys::CORE_LOOKAHEAD_EVALUATIONS,
            self.lookahead.evaluations() + self.cached.inner().evaluations(),
        );
        reg.set_counter(keys::CORE_CACHE_HITS, self.cached.hits());
        reg.set_counter(keys::CORE_CACHE_MISSES, self.cached.misses());
        reg.set_counter(keys::CORE_CACHE_REFRESHES, self.cached.refreshes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::OptionDesc;
    use cb_simnet::time::SimDuration;

    fn opts(n: u64) -> Vec<OptionDesc> {
        (0..n)
            .map(|k| OptionDesc::with_features(k, vec![(n - k) as f64]))
            .collect()
    }

    fn survival_signals() -> HealthSignals {
        HealthSignals {
            snapshot_staleness: Some(SimDuration::from_secs(100)),
            ..HealthSignals::default()
        }
    }

    struct RisingEval;
    impl OptionEvaluator for RisingEval {
        fn evaluate(&mut self, index: usize) -> Prediction {
            Prediction {
                objective: index as f64,
                violations: 0,
                states_explored: 5,
            }
        }
    }

    #[test]
    fn healthy_ladder_matches_pure_lookahead() {
        let o = opts(5);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        let mut reference = LookaheadResolver::new();
        for _ in 0..20 {
            ladder.observe_health(&HealthSignals::default());
            let a = ladder.resolve(&req, &mut RisingEval);
            let b = reference.resolve(&req, &mut RisingEval);
            assert_eq!(a, b);
            assert_eq!(ladder.last_rung(), 0);
            assert_eq!(ladder.last_policy(), PolicyDisposition::Off);
            assert_eq!(ladder.last_prediction(), reference.last_prediction());
        }
        assert_eq!(ladder.rung_hits(), [20, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn degraded_health_steps_down_to_cached_then_heuristic() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        // Two bad observations step Healthy -> Degraded (down_patience 2).
        for _ in 0..2 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Degraded);
        ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 1);
        // Two more: Degraded -> Survival; rung 4 = heuristic (no policy
        // store, no trained bandit, so both fast rungs stay silent).
        for _ in 0..2 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Survival);
        let pick = ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 4);
        // Heuristic prefers the lowest first feature: key 3 (cost 1.0).
        assert_eq!(pick, 3);
        assert!(ladder.last_prediction().is_none());
    }

    #[test]
    fn survival_with_trained_bandit_uses_learned_rung() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        // Live feedback taught the bandit that key 1 pays off.
        for _ in 0..3 {
            ladder.feedback("t", ContextKey::default(), 1, 1.0);
            ladder.feedback("t", ContextKey::default(), 0, 0.1);
            ladder.feedback("t", ContextKey::default(), 2, 0.1);
        }
        for _ in 0..4 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Survival);
        let pick = ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 3, "trained bandit beats heuristic");
        assert_eq!(pick, 1);
        assert!(ladder.last_prediction().is_none());
    }

    #[test]
    fn partial_verdict_bumps_next_decision_one_rung() {
        struct PartialEval;
        impl OptionEvaluator for PartialEval {
            fn evaluate(&mut self, _index: usize) -> Prediction {
                Prediction::unknown()
            }
            fn verdict(&self) -> EvalVerdict {
                EvalVerdict::Partial
            }
        }
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut PartialEval);
        assert_eq!(ladder.last_rung(), 0);
        assert!(ladder.deadline_pending());
        // Next decision runs a chain position lower even though health is
        // Healthy…
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 1);
        // …and the bump clears once an evaluation completes in budget.
        assert!(!ladder.deadline_pending());
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 0);
    }

    #[test]
    fn survival_plus_deadline_caps_at_static_rung() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        for _ in 0..4 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Survival);
        struct PartialEval;
        impl OptionEvaluator for PartialEval {
            fn evaluate(&mut self, _i: usize) -> Prediction {
                Prediction::unknown()
            }
            fn verdict(&self) -> EvalVerdict {
                EvalVerdict::Partial
            }
        }
        // Force deadline_pending while already in Survival: the chain
        // position caps at its last entry, the static rung.
        ladder.deadline_pending = true;
        let pick = ladder.resolve(&req, &mut PartialEval);
        assert_eq!(ladder.last_rung(), 5);
        assert_eq!(pick, 0, "static rung takes the first option");
    }

    #[test]
    fn static_rung_takes_first_option_and_heuristic_handles_no_features() {
        let bare = [OptionDesc::key(7), OptionDesc::key(8)];
        let req = ChoiceRequest::new("t", &bare);
        assert_eq!(LadderResolver::heuristic_pick(&req), 0);
        let mixed = [OptionDesc::key(7), OptionDesc::with_features(8, vec![3.0])];
        let req2 = ChoiceRequest::new("t", &mixed);
        assert_eq!(LadderResolver::heuristic_pick(&req2), 1);
    }

    #[test]
    fn export_metrics_covers_rungs_and_governor() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut RisingEval);
        for _ in 0..2 {
            ladder.observe_health(&survival_signals());
        }
        ladder.resolve(&req, &mut RisingEval);
        let mut reg = Registry::new();
        ladder.export_metrics(&mut reg);
        ladder.export_metrics(&mut reg); // idempotent snapshot
        assert_eq!(reg.counter(keys::CORE_LADDER_RUNG_LOOKAHEAD), 1);
        assert_eq!(reg.counter(keys::CORE_LADDER_RUNG_CACHED), 1);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_STEP_DOWNS), 1);
        // Rung 0 evaluated 3 options; rung 1's miss evaluated 3 more.
        assert_eq!(reg.counter(keys::CORE_LOOKAHEAD_EVALUATIONS), 6);
        assert_eq!(reg.counter(keys::CORE_CACHE_MISSES), 1);
        assert_eq!(reg.counter(keys::CORE_POLICY_HITS), 0);
    }

    /// Trains a store by resolving through a recording ladder, then
    /// replays through a warm ladder.
    fn train_store(req: &ChoiceRequest<'_>, decisions: usize) -> PolicyStore {
        let rec = Arc::new(Mutex::new(PolicyStore::new("test")));
        let mut trainer = LadderResolver::new().recording_into(rec.clone());
        for _ in 0..decisions {
            trainer.observe_health(&HealthSignals::default());
            trainer.resolve(req, &mut RisingEval);
        }
        assert!(trainer.policy_counters().3 >= 1, "inserts recorded");
        let store = rec.lock().unwrap().clone();
        assert!(!store.is_empty());
        store
    }

    #[test]
    fn warm_hit_serves_store_answer_with_zero_states() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let store = Arc::new(train_store(&req, 1));
        let mut warm = LadderResolver::new().with_policy(store);
        let mut cold = LookaheadResolver::new();
        // 15 decisions stay under the refresh cadence (16): all pure hits.
        for _ in 0..15 {
            warm.observe_health(&HealthSignals::default());
            let mut panicking = crate::choice::FnEvaluator(|_| {
                panic!("warm hit must not evaluate");
            });
            let w = warm.resolve(&req, &mut panicking);
            let c = cold.resolve(&req, &mut RisingEval);
            assert_eq!(w, c, "warm ≡ cold resolved index");
            assert_eq!(warm.last_rung(), 2);
            assert_eq!(warm.last_policy(), PolicyDisposition::Hit);
            let p = warm.last_prediction().expect("stored prediction");
            assert_eq!(p.states_explored, 0, "warm decisions cost ~0 states");
        }
        let (hits, misses, stale, _) = warm.policy_counters();
        assert_eq!((hits, misses, stale), (15, 0, 0));
        assert_eq!(warm.rung_hits()[2], 15);
    }

    #[test]
    fn refresh_cadence_reruns_lookahead_and_detects_agreement() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let store = Arc::new(train_store(&req, 1));
        let mut warm = LadderResolver::new().with_policy(store);
        let mut refreshes = 0;
        for _ in 0..32 {
            warm.observe_health(&HealthSignals::default());
            warm.resolve(&req, &mut RisingEval);
            if warm.last_policy() == PolicyDisposition::Refreshed {
                refreshes += 1;
                assert_eq!(warm.last_rung(), 0, "refresh runs real lookahead");
            }
        }
        assert_eq!(refreshes, 2, "every 16th hit re-checks the store");
        let (_, _, stale, _) = warm.policy_counters();
        assert_eq!(stale, 0, "deterministic evaluator never goes stale");
    }

    #[test]
    fn refresh_is_suppressed_during_a_storm_and_resumes_on_recovery() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let store = Arc::new(train_store(&req, 1));
        let mut warm = LadderResolver::new().with_policy(store);
        // Storm: two bad observations step the governor to Degraded.
        for _ in 0..2 {
            warm.observe_health(&survival_signals());
        }
        assert_eq!(warm.health(), Health::Degraded);
        // 20 hits cross the 16-hit cadence, but a panicking evaluator
        // proves no refresh lookahead runs while degraded.
        for _ in 0..20 {
            warm.observe_health(&survival_signals());
            let mut panicking = crate::choice::FnEvaluator(|_| {
                panic!("degraded refresh must be suppressed");
            });
            warm.resolve(&req, &mut panicking);
            assert_eq!(warm.last_policy(), PolicyDisposition::Hit);
        }
        assert_eq!(warm.policy_refreshes(), 0, "core.policy.refresh flat");
        // Recovery: the storm pushed the governor all the way to Survival,
        // so two up_patience streaks (Survival→Degraded→Healthy) are needed
        // before the next cadence multiple refreshes again.
        for _ in 0..16 {
            warm.observe_health(&HealthSignals::default());
        }
        assert_eq!(warm.health(), Health::Healthy);
        for _ in 0..16 {
            warm.observe_health(&HealthSignals::default());
            warm.resolve(&req, &mut RisingEval);
        }
        assert!(warm.policy_refreshes() >= 1, "refresh resumes on recovery");
        let mut reg = Registry::new();
        warm.export_metrics(&mut reg);
        assert_eq!(
            reg.counter(keys::CORE_POLICY_REFRESH),
            warm.policy_refreshes()
        );
    }

    #[test]
    fn stale_entry_is_caught_by_refresh_and_fresh_answer_served() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        // A store whose entry claims key 0 is best; the live evaluator
        // disagrees (RisingEval prefers the last option).
        let mut store = PolicyStore::new("test");
        store.insert(policy_key(&req), PolicyEntry::new(0, 99.0, 0, 5));
        let mut warm = LadderResolver::new().with_policy(Arc::new(store));
        let mut served_stale = None;
        for _ in 0..16 {
            warm.observe_health(&HealthSignals::default());
            let idx = warm.resolve(&req, &mut RisingEval);
            if warm.last_policy() == PolicyDisposition::Stale {
                served_stale = Some(idx);
            }
        }
        assert_eq!(
            served_stale,
            Some(3),
            "refresh must catch the stale entry and serve the fresh answer"
        );
        let (_, _, stale, _) = warm.policy_counters();
        assert_eq!(stale, 1);
    }

    #[test]
    fn missing_option_key_is_a_safe_miss() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut store = PolicyStore::new("test");
        // Entry addresses this exact option set but names a departed key.
        store.insert(policy_key(&req), PolicyEntry::new(77, 1.0, 0, 5));
        let mut warm = LadderResolver::new().with_policy(Arc::new(store));
        warm.observe_health(&HealthSignals::default());
        let idx = warm.resolve(&req, &mut RisingEval);
        assert_eq!(warm.last_policy(), PolicyDisposition::Miss);
        assert_eq!(warm.last_rung(), 0, "miss falls through to lookahead");
        assert_eq!(idx, 2, "lookahead answer, not the departed key");
        let (hits, misses, _, _) = warm.policy_counters();
        assert_eq!((hits, misses), (0, 1));
    }

    #[test]
    fn store_hit_survives_degradation() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let store = Arc::new(train_store(&req, 1));
        let mut warm = LadderResolver::new().with_policy(store);
        for _ in 0..4 {
            warm.observe_health(&survival_signals());
        }
        assert_eq!(warm.health(), Health::Survival);
        let mut panicking = crate::choice::FnEvaluator(|_| {
            panic!("survival store hit must not evaluate");
        });
        let idx = warm.resolve(&req, &mut panicking);
        assert_eq!(warm.last_rung(), 2, "store answers even in survival");
        assert_eq!(warm.last_policy(), PolicyDisposition::Hit);
        assert_eq!(idx, 3, "the memoized healthy-lookahead answer");
    }

    #[test]
    fn warm_resolution_is_rotation_invariant() {
        let o = opts(5);
        let req = ChoiceRequest::new("t", &o);
        let store = Arc::new(train_store(&req, 1));
        let chosen_key = {
            let mut cold = LookaheadResolver::new();
            let i = cold.resolve(&req, &mut RisingEval);
            o[i].key
        };
        for rot in 0..o.len() {
            let mut rotated = o.clone();
            rotated.rotate_left(rot);
            // RisingEval scores by *index*, so re-rank per rotation to keep
            // the cold reference honest: the warm path must return the same
            // *key* regardless of option order.
            let req_rot = ChoiceRequest::new("t", &rotated);
            let mut warm = LadderResolver::new().with_policy(store.clone());
            warm.observe_health(&HealthSignals::default());
            let mut panicking = crate::choice::FnEvaluator(|_| {
                panic!("rotation hit must not evaluate");
            });
            let idx = warm.resolve(&req_rot, &mut panicking);
            assert_eq!(warm.last_policy(), PolicyDisposition::Hit);
            assert_eq!(
                rotated[idx].key, chosen_key,
                "rotation {rot} must resolve the same option key"
            );
        }
    }

    proptest::proptest! {
        /// Differential transparency: for arbitrary option sets, a warm
        /// ladder serving from a store trained by cold lookahead resolves
        /// the same option *key* as cold lookahead itself — across every
        /// rotation of the option order.
        #[test]
        fn prop_warm_equals_cold_across_rotations(
            n in 2usize..8,
            salt in 0u64..1_000,
            rot in 0usize..8,
        ) {
            use proptest::prop_assert_eq;
            // Deterministic per-key objective: evaluator scores an option
            // by a hash of its key, independent of position.
            let objective_of = move |key: u64| {
                (cb_policy::mix64(key ^ salt) % 1_000) as f64
            };
            let options: Vec<OptionDesc> = (0..n as u64)
                .map(|k| OptionDesc::key(k * 3 + 1))
                .collect();
            let req = ChoiceRequest::new("prop", &options).with_state_fp(salt);

            // Cold reference: pure lookahead with the key-keyed evaluator.
            let keys: Vec<u64> = options.iter().map(|o| o.key).collect();
            let keys_for_cold = keys.clone();
            let mut cold_eval = crate::choice::FnEvaluator(move |i: usize| Prediction {
                objective: objective_of(keys_for_cold[i]),
                violations: 0,
                states_explored: 3,
            });
            let mut cold = LookaheadResolver::new();
            let cold_key = options[cold.resolve(&req, &mut cold_eval)].key;

            // Train a store through a recording ladder.
            let rec = Arc::new(Mutex::new(PolicyStore::new("prop")));
            let mut trainer = LadderResolver::new().recording_into(rec.clone());
            trainer.observe_health(&HealthSignals::default());
            let keys_for_train = keys.clone();
            let mut train_eval = crate::choice::FnEvaluator(move |i: usize| Prediction {
                objective: objective_of(keys_for_train[i]),
                violations: 0,
                states_explored: 3,
            });
            trainer.resolve(&req, &mut train_eval);
            let store = Arc::new(rec.lock().unwrap().clone());

            // Warm replay over a rotated option order.
            let mut rotated = options.clone();
            rotated.rotate_left(rot % n);
            let req_rot = ChoiceRequest::new("prop", &rotated).with_state_fp(salt);
            let mut warm = LadderResolver::new().with_policy(store);
            warm.observe_health(&HealthSignals::default());
            let mut panicking = crate::choice::FnEvaluator(|_| {
                panic!("warm hit must not evaluate")
            });
            let idx = warm.resolve(&req_rot, &mut panicking);
            prop_assert_eq!(warm.last_policy(), PolicyDisposition::Hit);
            prop_assert_eq!(rotated[idx].key, cold_key);
        }
    }
}
