//! The resolver fallback ladder: graceful degradation of choice resolution.
//!
//! Prediction quality tracks model health (paper §3.4). Instead of a binary
//! predict-or-don't switch, the ladder composes four rungs of decreasing
//! cost and model dependence and lets the
//! [`DegradationGovernor`](crate::governor::DegradationGovernor) pick the
//! rung per decision:
//!
//! | rung | strategy | needs |
//! |---|---|---|
//! | 0 | full lookahead ([`LookaheadResolver`]) | fresh models, budget |
//! | 1 | cached lookahead ([`CachedResolver`]) | occasionally-fresh models |
//! | 2 | feature heuristic (lowest first feature) | option features only |
//! | 3 | static safe default (first option) | nothing |
//!
//! While the governor reports `Healthy` (and no prediction deadline fired on
//! the previous decision) the ladder is a *pure delegation* to its rung-0
//! `LookaheadResolver` — decision-for-decision identical, which the
//! differential tests assert. A [`Partial`](EvalVerdict::Partial) verdict
//! from the previous decision's evaluator bumps the next decision one rung
//! down on top of the governor's level: a blown deadline is evidence the
//! current rung is too expensive *right now*, before the governor's
//! hysteresis has caught up.

use crate::choice::{
    ChoiceId, ChoiceRequest, ContextKey, EvalVerdict, OptionEvaluator, Prediction, Resolver,
};
use crate::governor::{DegradationGovernor, GovernorConfig, Health, HealthSignals};
use crate::resolve::cached::CachedResolver;
use crate::resolve::lookahead::LookaheadResolver;
use cb_telemetry::{keys, Registry};

/// Number of rungs on the ladder.
pub const RUNGS: usize = 4;

/// A health-governed resolver that steps down a ladder of strategies as the
/// predictive model degrades, and climbs back only after sustained health.
pub struct LadderResolver {
    /// Rung 0: full per-decision lookahead.
    lookahead: LookaheadResolver,
    /// Rung 1: cached lookahead (its own inner `LookaheadResolver` runs
    /// only on misses/refreshes).
    cached: CachedResolver<LookaheadResolver>,
    /// The health state machine deciding the base rung.
    governor: DegradationGovernor,
    /// Set when the previous decision's evaluator reported a `Partial`
    /// verdict (prediction deadline fired): the next decision is resolved
    /// one rung lower than the governor alone would pick.
    deadline_pending: bool,
    /// Decisions resolved on each rung.
    rung_hits: [u64; RUNGS],
    /// Rung used for the most recent decision.
    last_rung: usize,
    /// The prediction backing the most recent decision (rungs 0–1 only).
    last_prediction: Option<Prediction>,
}

impl LadderResolver {
    /// A ladder with default governor thresholds and a cache refresh
    /// interval of 16 uses.
    pub fn new() -> Self {
        LadderResolver::with_config(GovernorConfig::default(), 16)
    }

    /// A ladder with explicit governor thresholds and cache refresh
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if `refresh_every` is zero (via [`CachedResolver::new`]).
    pub fn with_config(cfg: GovernorConfig, refresh_every: u64) -> Self {
        LadderResolver {
            lookahead: LookaheadResolver::new(),
            cached: CachedResolver::new(LookaheadResolver::new(), refresh_every),
            governor: DegradationGovernor::new(cfg),
            deadline_pending: false,
            rung_hits: [0; RUNGS],
            last_rung: 0,
            last_prediction: None,
        }
    }

    /// The governor's current health level.
    pub fn health(&self) -> Health {
        self.governor.health()
    }

    /// Read access to the governor (transition counters etc.).
    pub fn governor(&self) -> &DegradationGovernor {
        &self.governor
    }

    /// Decisions resolved on each rung, index 0 (lookahead) to 3 (static).
    pub fn rung_hits(&self) -> [u64; RUNGS] {
        self.rung_hits
    }

    /// The rung used for the most recent decision.
    pub fn last_rung(&self) -> usize {
        self.last_rung
    }

    /// Whether the next decision will be bumped a rung down because the
    /// previous decision's prediction deadline fired.
    pub fn deadline_pending(&self) -> bool {
        self.deadline_pending
    }

    /// Rung 2: prefer the lowest first feature (conventionally the
    /// cheapest/closest option); options without features score as
    /// `+INFINITY` cost and lose to any featured option. Ties break to the
    /// earliest option, keeping the rung deterministic.
    fn heuristic_pick(request: &ChoiceRequest<'_>) -> usize {
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        for (i, opt) in request.options.iter().enumerate() {
            let cost = opt.features.first().copied().unwrap_or(f64::INFINITY);
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }
        best
    }
}

impl Default for LadderResolver {
    fn default() -> Self {
        LadderResolver::new()
    }
}

impl Resolver for LadderResolver {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        let mut rung = self.governor.health().rung();
        if self.deadline_pending {
            rung = (rung + 1).min(RUNGS - 1);
        }
        self.last_rung = rung;
        self.rung_hits[rung] += 1;
        let idx = match rung {
            0 => {
                let i = self.lookahead.resolve(request, eval);
                self.last_prediction = self.lookahead.last_prediction();
                i
            }
            1 => {
                let i = self.cached.resolve(request, eval);
                self.last_prediction = self.cached.last_prediction();
                i
            }
            2 => {
                self.last_prediction = None;
                Self::heuristic_pick(request)
            }
            _ => {
                // Static safe default: the service's first-listed option.
                self.last_prediction = None;
                0
            }
        };
        // A Partial verdict means this decision's prediction hit its
        // deadline: bump the next decision down a rung. Rungs 2–3 never
        // evaluate, so their verdict is Complete and the bump self-clears —
        // the ladder automatically re-probes the governor's level.
        self.deadline_pending = eval.verdict() == EvalVerdict::Partial;
        idx
    }

    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        self.lookahead.feedback(id, context, option_key, reward);
        self.cached.feedback(id, context, option_key, reward);
    }

    fn observe_health(&mut self, signals: &HealthSignals) {
        // Carry the pending deadline event into the governor's view: the
        // runtime may not know the evaluator's verdict, but the ladder does.
        let mut s = *signals;
        s.deadline_fired = s.deadline_fired || self.deadline_pending;
        self.governor.observe(&s);
    }

    fn name(&self) -> &'static str {
        "ladder"
    }

    fn last_prediction(&self) -> Option<Prediction> {
        self.last_prediction
    }

    fn decision_attrs(&self, out: &mut Vec<(String, String)>) {
        // The rung index doubles as the number of higher-fidelity rungs
        // passed over for this decision (rung 2 = lookahead and cached
        // both skipped).
        out.push(("ladder.rung".into(), self.last_rung.to_string()));
        out.push(("ladder.rungs_skipped".into(), self.last_rung.to_string()));
        out.push((
            "governor.level".into(),
            self.governor.health().label().into(),
        ));
        out.push((
            "governor.cause".into(),
            self.governor.last_cause().label().into(),
        ));
        out.push((
            "ladder.deadline_pending".into(),
            self.deadline_pending.to_string(),
        ));
    }

    fn export_metrics(&self, reg: &mut Registry) {
        reg.set_counter(keys::CORE_LADDER_RUNG_LOOKAHEAD, self.rung_hits[0]);
        reg.set_counter(keys::CORE_LADDER_RUNG_CACHED, self.rung_hits[1]);
        reg.set_counter(keys::CORE_LADDER_RUNG_HEURISTIC, self.rung_hits[2]);
        reg.set_counter(keys::CORE_LADDER_RUNG_STATIC, self.rung_hits[3]);
        self.governor.export_metrics(reg);
        // Both rungs 0 and 1 run lookahead evaluations; export the sum
        // rather than delegating (delegation would overwrite the shared
        // key with whichever inner exported last).
        reg.set_counter(
            keys::CORE_LOOKAHEAD_EVALUATIONS,
            self.lookahead.evaluations() + self.cached.inner().evaluations(),
        );
        reg.set_counter(keys::CORE_CACHE_HITS, self.cached.hits());
        reg.set_counter(keys::CORE_CACHE_MISSES, self.cached.misses());
        reg.set_counter(keys::CORE_CACHE_REFRESHES, self.cached.refreshes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::OptionDesc;
    use cb_simnet::time::SimDuration;

    fn opts(n: u64) -> Vec<OptionDesc> {
        (0..n)
            .map(|k| OptionDesc::with_features(k, vec![(n - k) as f64]))
            .collect()
    }

    fn survival_signals() -> HealthSignals {
        HealthSignals {
            snapshot_staleness: Some(SimDuration::from_secs(100)),
            ..HealthSignals::default()
        }
    }

    struct RisingEval;
    impl OptionEvaluator for RisingEval {
        fn evaluate(&mut self, index: usize) -> Prediction {
            Prediction {
                objective: index as f64,
                violations: 0,
                states_explored: 5,
            }
        }
    }

    #[test]
    fn healthy_ladder_matches_pure_lookahead() {
        let o = opts(5);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        let mut reference = LookaheadResolver::new();
        for _ in 0..20 {
            ladder.observe_health(&HealthSignals::default());
            let a = ladder.resolve(&req, &mut RisingEval);
            let b = reference.resolve(&req, &mut RisingEval);
            assert_eq!(a, b);
            assert_eq!(ladder.last_rung(), 0);
            assert_eq!(ladder.last_prediction(), reference.last_prediction());
        }
        assert_eq!(ladder.rung_hits(), [20, 0, 0, 0]);
    }

    #[test]
    fn degraded_health_steps_down_to_cached_then_static() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        // Two bad observations step Healthy -> Degraded (down_patience 2).
        for _ in 0..2 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Degraded);
        ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 1);
        // Two more: Degraded -> Survival; rung 2 = heuristic.
        for _ in 0..2 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Survival);
        let pick = ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 2);
        // Heuristic prefers the lowest first feature: key 3 (cost 1.0).
        assert_eq!(pick, 3);
        assert!(ladder.last_prediction().is_none());
    }

    #[test]
    fn partial_verdict_bumps_next_decision_one_rung() {
        struct PartialEval;
        impl OptionEvaluator for PartialEval {
            fn evaluate(&mut self, _index: usize) -> Prediction {
                Prediction::unknown()
            }
            fn verdict(&self) -> EvalVerdict {
                EvalVerdict::Partial
            }
        }
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut PartialEval);
        assert_eq!(ladder.last_rung(), 0);
        assert!(ladder.deadline_pending());
        // Next decision runs a rung lower even though health is Healthy…
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 1);
        // …and the bump clears once an evaluation completes in budget.
        assert!(!ladder.deadline_pending());
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut RisingEval);
        assert_eq!(ladder.last_rung(), 0);
    }

    #[test]
    fn survival_plus_deadline_caps_at_static_rung() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        for _ in 0..4 {
            ladder.observe_health(&survival_signals());
        }
        assert_eq!(ladder.health(), Health::Survival);
        struct PartialEval;
        impl OptionEvaluator for PartialEval {
            fn evaluate(&mut self, _i: usize) -> Prediction {
                Prediction::unknown()
            }
            fn verdict(&self) -> EvalVerdict {
                EvalVerdict::Partial
            }
        }
        // Force deadline_pending while already in Survival.
        // Rung 2 never evaluates, so use a direct field path: resolve once
        // with a Partial evaluator is not possible on rung 2 (no evals).
        // Instead check the arithmetic cap via two steps: Survival rung 2,
        // bump -> 3.
        ladder.deadline_pending = true;
        let pick = ladder.resolve(&req, &mut PartialEval);
        assert_eq!(ladder.last_rung(), 3);
        assert_eq!(pick, 0, "static rung takes the first option");
    }

    #[test]
    fn static_rung_takes_first_option_and_heuristic_handles_no_features() {
        let bare = [OptionDesc::key(7), OptionDesc::key(8)];
        let req = ChoiceRequest::new("t", &bare);
        assert_eq!(LadderResolver::heuristic_pick(&req), 0);
        let mixed = [OptionDesc::key(7), OptionDesc::with_features(8, vec![3.0])];
        let req2 = ChoiceRequest::new("t", &mixed);
        assert_eq!(LadderResolver::heuristic_pick(&req2), 1);
    }

    #[test]
    fn export_metrics_covers_rungs_and_governor() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut ladder = LadderResolver::new();
        ladder.observe_health(&HealthSignals::default());
        ladder.resolve(&req, &mut RisingEval);
        for _ in 0..2 {
            ladder.observe_health(&survival_signals());
        }
        ladder.resolve(&req, &mut RisingEval);
        let mut reg = Registry::new();
        ladder.export_metrics(&mut reg);
        ladder.export_metrics(&mut reg); // idempotent snapshot
        assert_eq!(reg.counter(keys::CORE_LADDER_RUNG_LOOKAHEAD), 1);
        assert_eq!(reg.counter(keys::CORE_LADDER_RUNG_CACHED), 1);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_STEP_DOWNS), 1);
        // Rung 0 evaluated 3 options; rung 1's miss evaluated 3 more.
        assert_eq!(reg.counter(keys::CORE_LOOKAHEAD_EVALUATIONS), 6);
        assert_eq!(reg.counter(keys::CORE_CACHE_MISSES), 1);
    }
}
