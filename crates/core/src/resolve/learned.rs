//! The learned resolver: contextual multi-armed bandits.
//!
//! Paper §3.4 calls for "using choices based on previous similar scenarios
//! as a fast alternative" to running full prediction on the critical path.
//! This resolver is that alternative: it treats each (choice point,
//! scenario context) pair as a bandit whose arms are the option keys,
//! learns arm values from realized rewards delivered through
//! [`Resolver::feedback`], and resolves in O(options) with no model at all.
//!
//! Three classic policies are provided — ε-greedy, UCB1, and EXP3 — because
//! which one wins is itself workload-dependent (the E10 experiment compares
//! them).

use crate::choice::{ChoiceId, ChoiceRequest, ContextKey, OptionDesc, OptionEvaluator, Resolver};
use cb_simnet::rng::SimRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The bandit algorithm a [`LearnedResolver`] runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BanditPolicy {
    /// With probability `epsilon` explore uniformly; otherwise exploit the
    /// best empirical mean.
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
    /// Upper confidence bound: pick `argmax mean + c * sqrt(ln N / n)`.
    /// Deterministic given history; unpulled arms are tried first.
    Ucb1 {
        /// Exploration constant (√2 is the textbook value).
        c: f64,
    },
    /// Exponential-weight algorithm for adversarial (non-stationary)
    /// rewards. Expects rewards in `[0, 1]`.
    Exp3 {
        /// Exploration mix-in `γ` in `(0, 1]`.
        gamma: f64,
    },
}

/// Per-arm statistics.
#[derive(Clone, Debug, Default)]
pub struct ArmStats {
    /// Times this arm was chosen.
    pub pulls: u64,
    /// Empirical mean reward.
    pub mean: f64,
    /// EXP3 log-weight (kept in log space for numeric safety).
    log_weight: f64,
    /// Probability with which the arm was last selected (EXP3 importance
    /// weighting).
    last_prob: f64,
}

type ArmKey = (ChoiceId, ContextKey, u64);

/// A shared feature-prior function.
type Prior = Arc<dyn Fn(&OptionDesc) -> f64 + Send + Sync>;

/// A contextual bandit over exposed choices.
///
/// # Examples
///
/// ```
/// use cb_core::choice::{ChoiceRequest, ContextKey, NullEvaluator, OptionDesc, Resolver};
/// use cb_core::resolve::learned::{BanditPolicy, LearnedResolver};
///
/// let mut r = LearnedResolver::new(BanditPolicy::EpsilonGreedy { epsilon: 0.1 }, 7);
/// let opts = [OptionDesc::key(0), OptionDesc::key(1)];
/// let req = ChoiceRequest::new("peer", &opts);
/// // Teach it that option 1 pays off.
/// for _ in 0..50 {
///     let i = r.resolve(&req, &mut NullEvaluator);
///     r.feedback("peer", ContextKey::default(), i as u64, if i == 1 { 1.0 } else { 0.0 });
/// }
/// let exploit: Vec<usize> = (0..20).map(|_| r.resolve(&req, &mut NullEvaluator)).collect();
/// assert!(exploit.iter().filter(|&&i| i == 1).count() >= 15);
/// ```
pub struct LearnedResolver {
    policy: BanditPolicy,
    arms: BTreeMap<ArmKey, ArmStats>,
    /// Total pulls per (choice, context), for UCB1's `ln N`.
    totals: BTreeMap<(ChoiceId, ContextKey), u64>,
    rng: SimRng,
    /// Optional feature prior: a pseudo-reward for unexplored arms,
    /// blended with the empirical mean at `prior_weight` pseudo-pulls.
    prior: Option<Prior>,
    prior_weight: f64,
}

impl LearnedResolver {
    /// Creates a resolver with the given policy and RNG seed.
    pub fn new(policy: BanditPolicy, seed: u64) -> Self {
        LearnedResolver {
            policy,
            arms: BTreeMap::new(),
            totals: BTreeMap::new(),
            rng: SimRng::seed_from(seed),
            prior: None,
            prior_weight: 0.0,
        }
    }

    /// Installs a feature prior: `prior(option)` estimates the reward of an
    /// arm from its features, and counts as `weight` pseudo-pulls when
    /// blending with observed rewards. This warm-starts new arms (e.g. from
    /// the network model's latency estimate) instead of forcing blind
    /// exploration of each one.
    pub fn with_prior(
        mut self,
        prior: impl Fn(&OptionDesc) -> f64 + Send + Sync + 'static,
        weight: f64,
    ) -> Self {
        assert!(weight > 0.0, "prior weight must be positive");
        self.prior = Some(Arc::new(prior));
        self.prior_weight = weight;
        self
    }

    /// The blended value of an arm: feature prior (if any) plus empirical
    /// mean, weighted by pseudo- and real pulls.
    fn arm_value(&self, req: &ChoiceRequest<'_>, opt: &OptionDesc) -> (f64, f64) {
        let (mean, pulls) = self
            .arms
            .get(&(req.id, req.context, opt.key))
            .map_or((0.0, 0.0), |a| (a.mean, a.pulls as f64));
        match &self.prior {
            Some(p) => {
                let w = self.prior_weight;
                (((p)(opt) * w + mean * pulls) / (w + pulls), pulls + w)
            }
            None => {
                if pulls == 0.0 {
                    (f64::INFINITY, 0.0) // optimism for unseen arms
                } else {
                    (mean, pulls)
                }
            }
        }
    }

    /// Statistics for one arm, if it has ever been seen.
    pub fn arm(&self, id: ChoiceId, context: ContextKey, key: u64) -> Option<&ArmStats> {
        self.arms.get(&(id, context, key))
    }

    /// Total decisions made at a choice point in a context.
    pub fn pulls(&self, id: ChoiceId, context: ContextKey) -> u64 {
        self.totals.get(&(id, context)).copied().unwrap_or(0)
    }

    /// True when any arm statistics exist for `(id, context)` — i.e. the
    /// bandit has been trained there, by live feedback or a warm-start
    /// prior, and exploiting it beats a blind heuristic. The ladder uses
    /// this to gate its learned rung.
    pub fn has_arms(&self, id: ChoiceId, context: ContextKey) -> bool {
        self.arms
            .range((id, context, u64::MIN)..=(id, context, u64::MAX))
            .next()
            .is_some()
    }

    fn select_epsilon_greedy(&mut self, req: &ChoiceRequest<'_>, epsilon: f64) -> usize {
        if self.rng.gen_bool(epsilon) {
            return self.rng.gen_index(req.len());
        }
        let mut best = 0;
        let mut best_mean = f64::NEG_INFINITY;
        for (i, opt) in req.options.iter().enumerate() {
            let (mean, _) = self.arm_value(req, opt);
            if mean > best_mean {
                best = i;
                best_mean = mean;
            }
        }
        best
    }

    fn select_ucb1(&mut self, req: &ChoiceRequest<'_>, c: f64) -> usize {
        let total = self.pulls(req.id, req.context).max(1) as f64;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, opt) in req.options.iter().enumerate() {
            let (mean, effective_pulls) = self.arm_value(req, opt);
            let score = if effective_pulls == 0.0 {
                f64::INFINITY // force one pull of every arm
            } else {
                mean + c * (total.ln().max(0.0) / effective_pulls).sqrt()
            };
            if score > best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }

    fn select_exp3(&mut self, req: &ChoiceRequest<'_>, gamma: f64) -> usize {
        let k = req.len() as f64;
        // Normalized weights in log space to avoid overflow.
        let logs: Vec<f64> = req
            .options
            .iter()
            .map(|o| {
                self.arms
                    .get(&(req.id, req.context, o.key))
                    .map_or(0.0, |a| a.log_weight)
            })
            .collect();
        let max_log = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logs.iter().map(|l| (l - max_log).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let probs: Vec<f64> = exps
            .iter()
            .map(|e| (1.0 - gamma) * e / sum + gamma / k)
            .collect();
        let mut x = self.rng.gen_f64();
        let mut pick = req.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            if x < p {
                pick = i;
                break;
            }
            x -= p;
        }
        // Remember the selection probability for importance weighting.
        let key = (req.id, req.context, req.options[pick].key);
        self.arms.entry(key).or_default().last_prob = probs[pick];
        pick
    }
}

impl Resolver for LearnedResolver {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, _eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        let pick = match self.policy {
            BanditPolicy::EpsilonGreedy { epsilon } => self.select_epsilon_greedy(request, epsilon),
            BanditPolicy::Ucb1 { c } => self.select_ucb1(request, c),
            BanditPolicy::Exp3 { gamma } => self.select_exp3(request, gamma),
        };
        *self
            .totals
            .entry((request.id, request.context))
            .or_insert(0) += 1;
        pick
    }

    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        let arm = self.arms.entry((id, context, option_key)).or_default();
        arm.pulls += 1;
        arm.mean += (reward - arm.mean) / arm.pulls as f64;
        if let BanditPolicy::Exp3 { gamma } = self.policy {
            // Importance-weighted reward estimate; clamp keeps a pathological
            // probability from blowing up the weight.
            let p = if arm.last_prob > 0.0 {
                arm.last_prob
            } else {
                1.0
            };
            let xhat = (reward / p).clamp(-50.0, 50.0);
            arm.log_weight += gamma * xhat / 16.0; // /K with K unknowable here; 16 is a safe cap
            arm.log_weight = arm.log_weight.clamp(-200.0, 200.0);
        }
    }

    fn name(&self) -> &'static str {
        match self.policy {
            BanditPolicy::EpsilonGreedy { .. } => "learned-egreedy",
            BanditPolicy::Ucb1 { .. } => "learned-ucb1",
            BanditPolicy::Exp3 { .. } => "learned-exp3",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{NullEvaluator, OptionDesc};

    /// Trains a resolver on a 3-arm bandit where arm 2 pays 1.0 and the
    /// rest pay 0.2; returns the exploitation rate of arm 2 afterwards.
    fn train_and_measure(policy: BanditPolicy, rounds: usize) -> f64 {
        let mut r = LearnedResolver::new(policy, 42);
        let opts: Vec<OptionDesc> = (0..3).map(OptionDesc::key).collect();
        let req = ChoiceRequest::new("bandit", &opts);
        for _ in 0..rounds {
            let i = r.resolve(&req, &mut NullEvaluator);
            let reward = if i == 2 { 1.0 } else { 0.2 };
            r.feedback("bandit", ContextKey::default(), i as u64, reward);
        }
        let hits = (0..200)
            .filter(|_| {
                let i = r.resolve(&req, &mut NullEvaluator);
                r.feedback(
                    "bandit",
                    ContextKey::default(),
                    i as u64,
                    if i == 2 { 1.0 } else { 0.2 },
                );
                i == 2
            })
            .count();
        hits as f64 / 200.0
    }

    #[test]
    fn epsilon_greedy_learns_best_arm() {
        let rate = train_and_measure(BanditPolicy::EpsilonGreedy { epsilon: 0.1 }, 300);
        assert!(rate > 0.8, "exploit rate {rate}");
    }

    #[test]
    fn ucb1_learns_best_arm() {
        let rate = train_and_measure(
            BanditPolicy::Ucb1 {
                c: std::f64::consts::SQRT_2,
            },
            300,
        );
        assert!(rate > 0.7, "exploit rate {rate}");
    }

    #[test]
    fn exp3_learns_best_arm() {
        let rate = train_and_measure(BanditPolicy::Exp3 { gamma: 0.15 }, 600);
        assert!(rate > 0.5, "exploit rate {rate}");
    }

    #[test]
    fn ucb1_tries_every_arm_first() {
        let mut r = LearnedResolver::new(BanditPolicy::Ucb1 { c: 1.0 }, 1);
        let opts: Vec<OptionDesc> = (0..4).map(OptionDesc::key).collect();
        let req = ChoiceRequest::new("b", &opts);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let i = r.resolve(&req, &mut NullEvaluator);
            seen.insert(i);
            r.feedback("b", ContextKey::default(), i as u64, 0.5);
        }
        assert_eq!(seen.len(), 4, "UCB1 must pull each arm once first");
    }

    #[test]
    fn contexts_are_independent() {
        let mut r = LearnedResolver::new(BanditPolicy::EpsilonGreedy { epsilon: 0.0 }, 5);
        let opts: Vec<OptionDesc> = (0..2).map(OptionDesc::key).collect();
        let ctx_a = ContextKey(1);
        let ctx_b = ContextKey(2);
        // In context A arm 0 is good; in context B arm 1 is good.
        for _ in 0..30 {
            let req = ChoiceRequest::new("c", &opts).in_context(ctx_a);
            let i = r.resolve(&req, &mut NullEvaluator);
            r.feedback("c", ctx_a, i as u64, if i == 0 { 1.0 } else { 0.0 });
            let req = ChoiceRequest::new("c", &opts).in_context(ctx_b);
            let i = r.resolve(&req, &mut NullEvaluator);
            r.feedback("c", ctx_b, i as u64, if i == 1 { 1.0 } else { 0.0 });
        }
        let req_a = ChoiceRequest::new("c", &opts).in_context(ctx_a);
        let req_b = ChoiceRequest::new("c", &opts).in_context(ctx_b);
        assert_eq!(r.resolve(&req_a, &mut NullEvaluator), 0);
        assert_eq!(r.resolve(&req_b, &mut NullEvaluator), 1);
    }

    #[test]
    fn arm_stats_track_mean() {
        let mut r = LearnedResolver::new(BanditPolicy::EpsilonGreedy { epsilon: 0.0 }, 5);
        r.feedback("m", ContextKey::default(), 7, 1.0);
        r.feedback("m", ContextKey::default(), 7, 0.0);
        let arm = r.arm("m", ContextKey::default(), 7).expect("arm exists");
        assert_eq!(arm.pulls, 2);
        assert!((arm.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pulls_counted_per_context() {
        let mut r = LearnedResolver::new(BanditPolicy::EpsilonGreedy { epsilon: 0.5 }, 5);
        let opts: Vec<OptionDesc> = (0..2).map(OptionDesc::key).collect();
        let req = ChoiceRequest::new("p", &opts);
        for _ in 0..10 {
            r.resolve(&req, &mut NullEvaluator);
        }
        assert_eq!(r.pulls("p", ContextKey::default()), 10);
        assert_eq!(r.pulls("p", ContextKey(3)), 0);
    }
}
