//! The precomputed resolver: offline analysis, online table lookup.
//!
//! Paper §3.4: "A useful way to speed up all these analyses is to
//! precompute the impact of actions on system behaviors before the system
//! is deployed. Such off-line computations can be performed using any of
//! the currently existing approaches for static analysis." This resolver is
//! the deployment half of that idea: a table built *before* the run — by
//! exhaustive exploration, scenario sweeps, or any offline pipeline — maps
//! (choice point, context) to the preferred option key; resolution is a map
//! lookup, with a configurable fallback for scenarios the table misses.

use crate::choice::{ChoiceId, ChoiceRequest, ContextKey, OptionEvaluator, Resolver};
use std::collections::BTreeMap;

/// A decision table plus a fallback resolver.
///
/// # Examples
///
/// ```
/// use cb_core::choice::{ChoiceRequest, ContextKey, NullEvaluator, OptionDesc, Resolver};
/// use cb_core::resolve::precomputed::PrecomputedResolver;
/// use cb_core::resolve::random::RandomResolver;
///
/// let mut r = PrecomputedResolver::new(RandomResolver::new(1));
/// // Offline analysis concluded: in context 7, option key 42 is best.
/// r.insert("route", ContextKey(7), 42);
///
/// let opts = [OptionDesc::key(10), OptionDesc::key(42)];
/// let req = ChoiceRequest::new("route", &opts).in_context(ContextKey(7));
/// assert_eq!(r.resolve(&req, &mut NullEvaluator), 1);
/// ```
pub struct PrecomputedResolver<R: Resolver> {
    table: BTreeMap<(ChoiceId, ContextKey), u64>,
    fallback: R,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to the fallback (no entry, or the
    /// precomputed key was not among the offered options).
    pub misses: u64,
}

impl<R: Resolver> PrecomputedResolver<R> {
    /// Creates an empty table over the given fallback.
    pub fn new(fallback: R) -> Self {
        PrecomputedResolver {
            table: BTreeMap::new(),
            fallback,
            hits: 0,
            misses: 0,
        }
    }

    /// Records an offline conclusion: at `id` in `context`, prefer the
    /// option with `key`.
    pub fn insert(&mut self, id: ChoiceId, context: ContextKey, key: u64) {
        self.table.insert((id, context), key);
    }

    /// Bulk-loads a table (e.g. deserialized from an offline sweep).
    pub fn load(&mut self, entries: impl IntoIterator<Item = (ChoiceId, ContextKey, u64)>) {
        for (id, ctx, key) in entries {
            self.insert(id, ctx, key);
        }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no entry has been loaded.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Table lookup without fallback: the index of the precomputed option,
    /// or `None` when there is no entry or the precomputed key is not among
    /// the offered options. Counts hits/misses either way — this is the
    /// "answer only if you actually know" entry point ladder rungs use.
    pub fn try_resolve(&mut self, request: &ChoiceRequest<'_>) -> Option<usize> {
        if let Some(&key) = self.table.get(&(request.id, request.context)) {
            if let Some(idx) = request.options.iter().position(|o| o.key == key) {
                self.hits += 1;
                return Some(idx);
            }
        }
        self.misses += 1;
        None
    }

    /// A deterministic snapshot of the table in sorted `(choice, context)`
    /// order — the only iteration order this resolver exposes, so store
    /// persistence and artifact sections can't inherit map-order
    /// nondeterminism.
    pub fn snapshot(&self) -> Vec<(ChoiceId, ContextKey, u64)> {
        self.table
            .iter()
            .map(|(&(id, ctx), &key)| (id, ctx, key))
            .collect()
    }
}

impl<R: Resolver> Resolver for PrecomputedResolver<R> {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        match self.try_resolve(request) {
            Some(idx) => idx,
            None => self.fallback.resolve(request, eval),
        }
    }

    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        self.fallback.feedback(id, context, option_key, reward);
    }

    fn name(&self) -> &'static str {
        "precomputed"
    }
}

/// Builds a decision table offline by exhaustively evaluating every option
/// of every listed scenario with a (typically expensive) evaluator and
/// keeping the best per (choice, context) — the "off-line computation"
/// of §3.4 in its simplest form.
pub fn precompute_table(
    scenarios: &[(ChoiceId, ContextKey, Vec<crate::choice::OptionDesc>)],
    eval: &mut dyn OptionEvaluator,
) -> Vec<(ChoiceId, ContextKey, u64)> {
    let mut out = Vec::with_capacity(scenarios.len());
    for (id, ctx, options) in scenarios {
        if options.is_empty() {
            continue;
        }
        let mut best = 0;
        let mut best_pred = eval.evaluate(0);
        for i in 1..options.len() {
            let p = eval.evaluate(i);
            if p.better_than(&best_pred) {
                best = i;
                best_pred = p;
            }
        }
        out.push((*id, *ctx, options[best].key));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{FnEvaluator, NullEvaluator, OptionDesc, Prediction};
    use crate::resolve::random::RandomResolver;

    fn opts() -> Vec<OptionDesc> {
        vec![
            OptionDesc::key(10),
            OptionDesc::key(20),
            OptionDesc::key(30),
        ]
    }

    #[test]
    fn table_hit_returns_the_precomputed_option() {
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        r.insert("x", ContextKey(1), 20);
        let o = opts();
        let req = ChoiceRequest::new("x", &o).in_context(ContextKey(1));
        for _ in 0..5 {
            assert_eq!(r.resolve(&req, &mut NullEvaluator), 1);
        }
        assert_eq!(r.hits, 5);
        assert_eq!(r.misses, 0);
    }

    #[test]
    fn unknown_context_falls_back() {
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        r.insert("x", ContextKey(1), 20);
        let o = opts();
        let req = ChoiceRequest::new("x", &o).in_context(ContextKey(99));
        let idx = r.resolve(&req, &mut NullEvaluator);
        assert!(idx < 3);
        assert_eq!(r.misses, 1);
    }

    #[test]
    fn stale_table_entry_falls_back() {
        // The precomputed key is no longer among the offered options (the
        // peer left, the block completed, …): fall through gracefully.
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        r.insert("x", ContextKey(1), 999);
        let o = opts();
        let req = ChoiceRequest::new("x", &o).in_context(ContextKey(1));
        let idx = r.resolve(&req, &mut NullEvaluator);
        assert!(idx < 3);
        assert_eq!(r.misses, 1);
    }

    #[test]
    fn offline_precompute_then_cheap_online_lookup() {
        // Offline: an expensive evaluator scores options; key 30 wins in
        // every scenario.
        let scenarios = vec![
            ("x", ContextKey(0), opts()),
            ("x", ContextKey(1), opts()),
            ("y", ContextKey(0), opts()),
        ];
        let mut expensive = FnEvaluator(|i| Prediction {
            objective: [1.0, 2.0, 9.0][i],
            violations: 0,
            states_explored: 1_000_000,
        });
        let table = precompute_table(&scenarios, &mut expensive);
        assert_eq!(table.len(), 3);
        assert!(table.iter().all(|&(_, _, key)| key == 30));
        // Online: no evaluation at all.
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        r.load(table);
        let o = opts();
        let req = ChoiceRequest::new("y", &o).in_context(ContextKey(0));
        let mut panicking = FnEvaluator(|_| panic!("online path must not evaluate"));
        assert_eq!(r.resolve(&req, &mut panicking), 2);
    }

    #[test]
    fn bookkeeping() {
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        assert!(r.is_empty());
        r.insert("a", ContextKey(0), 1);
        r.insert("a", ContextKey(0), 2); // overwrite
        assert_eq!(r.len(), 1);
        assert_eq!(r.name(), "precomputed");
    }

    #[test]
    fn snapshot_is_sorted_regardless_of_insertion_order() {
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        r.insert("z", ContextKey(9), 3);
        r.insert("a", ContextKey(2), 1);
        r.insert("a", ContextKey(1), 2);
        r.insert("m", ContextKey(0), 7);
        let snap = r.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a", ContextKey(1), 2),
                ("a", ContextKey(2), 1),
                ("m", ContextKey(0), 7),
                ("z", ContextKey(9), 3),
            ]
        );
        let mut sorted = snap.clone();
        sorted.sort();
        assert_eq!(snap, sorted, "snapshot iterates in sorted order");
    }

    #[test]
    fn try_resolve_counts_without_falling_back() {
        let mut r = PrecomputedResolver::new(RandomResolver::new(1));
        r.insert("x", ContextKey(1), 20);
        let o = opts();
        let hit = ChoiceRequest::new("x", &o).in_context(ContextKey(1));
        let miss = ChoiceRequest::new("x", &o).in_context(ContextKey(2));
        assert_eq!(r.try_resolve(&hit), Some(1));
        assert_eq!(r.try_resolve(&miss), None);
        assert_eq!((r.hits, r.misses), (1, 1));
    }
}
