//! The random resolver: uniform choice, no model.
//!
//! This is the strategy most deployed systems hard-code (RandTree's random
//! forwarding, BitTorrent's random first blocks). Exposed as a resolver it
//! becomes the paper's "Choice-Random" setup — the control arm every
//! experiment compares against.

use crate::choice::{ChoiceRequest, OptionEvaluator, Resolver};
use cb_simnet::rng::SimRng;

/// Resolves every choice uniformly at random.
pub struct RandomResolver {
    rng: SimRng,
}

impl RandomResolver {
    /// Creates a resolver with its own seeded stream.
    pub fn new(seed: u64) -> Self {
        RandomResolver {
            rng: SimRng::seed_from(seed),
        }
    }

    /// Creates a resolver forked from an existing stream.
    pub fn from_rng(rng: &mut SimRng) -> Self {
        RandomResolver { rng: rng.fork() }
    }
}

impl Resolver for RandomResolver {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, _eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        self.rng.gen_index(request.len())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{NullEvaluator, OptionDesc};

    #[test]
    fn stays_in_range_and_covers_options() {
        let opts: Vec<OptionDesc> = (0..5).map(OptionDesc::key).collect();
        let req = ChoiceRequest::new("t", &opts);
        let mut r = RandomResolver::new(1);
        let mut hit = [false; 5];
        for _ in 0..200 {
            let i = r.resolve(&req, &mut NullEvaluator);
            assert!(i < 5);
            hit[i] = true;
        }
        assert!(hit.iter().all(|&h| h), "not all options chosen: {hit:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let opts: Vec<OptionDesc> = (0..8).map(OptionDesc::key).collect();
        let req = ChoiceRequest::new("t", &opts);
        let picks = |seed| {
            let mut r = RandomResolver::new(seed);
            (0..20)
                .map(|_| r.resolve(&req, &mut NullEvaluator))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    #[should_panic(expected = "empty choice")]
    fn empty_request_panics() {
        let req = ChoiceRequest::new("t", &[]);
        RandomResolver::new(0).resolve(&req, &mut NullEvaluator);
    }
}
