//! The predictive ("Choice-CrystalBall") resolver.
//!
//! For every option it asks the evaluator — which runs consequence
//! prediction / weighted walks over the predictive system model — what the
//! future looks like if that option is chosen, then picks by the paper's
//! rule: first minimize predicted safety violations, then maximize the
//! predicted objective (§3.4). This is the resolver the case study's
//! Choice-CrystalBall setup uses.

use crate::choice::{ChoiceRequest, OptionEvaluator, Prediction, Resolver};

/// Resolves choices by evaluating every option's predicted future.
///
/// Ties (identical predictions) break toward the earliest option, so
/// resolution is deterministic given a deterministic evaluator.
pub struct LookaheadResolver {
    /// Evaluations performed, for cost accounting.
    evaluations: u64,
    /// The prediction backing the most recent decision.
    last_prediction: Option<Prediction>,
}

impl LookaheadResolver {
    /// Creates the resolver.
    pub fn new() -> Self {
        LookaheadResolver {
            evaluations: 0,
            last_prediction: None,
        }
    }

    /// Total option evaluations requested so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The prediction that backed the most recent decision.
    pub fn last_prediction(&self) -> Option<Prediction> {
        self.last_prediction
    }
}

impl Default for LookaheadResolver {
    fn default() -> Self {
        LookaheadResolver::new()
    }
}

impl Resolver for LookaheadResolver {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        if request.len() == 1 {
            // Nothing to decide; skip the (possibly expensive) evaluation.
            self.last_prediction = None;
            return 0;
        }
        let mut best = 0;
        let mut best_pred = eval.evaluate(0);
        self.evaluations += 1;
        for i in 1..request.len() {
            let pred = eval.evaluate(i);
            self.evaluations += 1;
            if pred.better_than(&best_pred) {
                best = i;
                best_pred = pred;
            }
        }
        self.last_prediction = Some(best_pred);
        best
    }

    fn name(&self) -> &'static str {
        "crystalball"
    }

    fn last_prediction(&self) -> Option<Prediction> {
        self.last_prediction
    }

    fn export_metrics(&self, reg: &mut cb_telemetry::Registry) {
        reg.set_counter(
            cb_telemetry::keys::CORE_LOOKAHEAD_EVALUATIONS,
            self.evaluations,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{FnEvaluator, OptionDesc};

    fn opts(n: u64) -> Vec<OptionDesc> {
        (0..n).map(OptionDesc::key).collect()
    }

    #[test]
    fn picks_highest_objective_when_all_safe() {
        let o = opts(4);
        let req = ChoiceRequest::new("t", &o);
        let mut r = LookaheadResolver::new();
        let mut eval = FnEvaluator(|i| Prediction {
            objective: [1.0, 9.0, 4.0, 9.0][i],
            violations: 0,
            states_explored: 10,
        });
        // Index 1 and 3 tie at 9.0; the earliest wins.
        assert_eq!(r.resolve(&req, &mut eval), 1);
        assert_eq!(r.evaluations(), 4);
        assert_eq!(r.last_prediction().unwrap().objective, 9.0);
    }

    #[test]
    fn safety_dominates_objective() {
        let o = opts(3);
        let req = ChoiceRequest::new("t", &o);
        let mut r = LookaheadResolver::new();
        let mut eval = FnEvaluator(|i| match i {
            0 => Prediction {
                objective: 100.0,
                violations: 2,
                states_explored: 1,
            },
            1 => Prediction {
                objective: -5.0,
                violations: 0,
                states_explored: 1,
            },
            _ => Prediction {
                objective: 50.0,
                violations: 1,
                states_explored: 1,
            },
        });
        assert_eq!(r.resolve(&req, &mut eval), 1);
    }

    #[test]
    fn single_option_skips_evaluation() {
        let o = opts(1);
        let req = ChoiceRequest::new("t", &o);
        let mut r = LookaheadResolver::new();
        let mut eval = FnEvaluator(|_| panic!("must not evaluate a 1-option choice"));
        assert_eq!(r.resolve(&req, &mut eval), 0);
        assert_eq!(r.evaluations(), 0);
        assert!(r.last_prediction().is_none());
    }

    #[test]
    fn fewer_violations_beat_more_even_with_worse_objective() {
        let o = opts(2);
        let req = ChoiceRequest::new("t", &o);
        let mut r = LookaheadResolver::new();
        let mut eval = FnEvaluator(|i| {
            if i == 0 {
                Prediction {
                    objective: 10.0,
                    violations: 3,
                    states_explored: 1,
                }
            } else {
                Prediction {
                    objective: 0.0,
                    violations: 2,
                    states_explored: 1,
                }
            }
        });
        assert_eq!(r.resolve(&req, &mut eval), 1);
    }
}
