//! The damped resolver: hysteresis against emergent flapping.
//!
//! Paper §3.4 closes with "another challenge is the design of the execution
//! steering module that avoids unwanted interaction and coupling among the
//! system participants (e.g., emergent behavior)". The classic failure mode
//! is synchronized flapping: every node's resolver simultaneously discovers
//! the same "best" target, herds onto it, degrades it, and simultaneously
//! herds away again. This wrapper adds hysteresis: once a choice point has
//! settled on an option, it switches only when the inner resolver has
//! preferred a *different* option for `patience` consecutive resolutions —
//! breaking the synchronized-response feedback loop at the cost of slower
//! adaptation.

use crate::choice::{ChoiceId, ChoiceRequest, ContextKey, OptionEvaluator, Resolver};
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
struct Held {
    /// The currently held option key.
    key: u64,
    /// Consecutive inner preferences for some other option.
    dissent: u32,
    /// The dissenting option key (dissent resets if it changes).
    dissent_key: u64,
}

/// Wraps a resolver with switch hysteresis.
///
/// # Examples
///
/// ```
/// use cb_core::choice::{ChoiceRequest, NullEvaluator, OptionDesc, Resolver};
/// use cb_core::resolve::damped::DampedResolver;
/// use cb_core::resolve::heuristic::HeuristicResolver;
///
/// // The inner resolver flips preference with the first feature.
/// let inner = HeuristicResolver::new("f0", |o| o.features[0]);
/// let mut r = DampedResolver::new(inner, 3);
/// let hot = [OptionDesc::with_features(1, vec![1.0]), OptionDesc::with_features(2, vec![0.0])];
/// let req = ChoiceRequest::new("t", &hot);
/// assert_eq!(r.resolve(&req, &mut NullEvaluator), 0); // settles on key 1
/// // A transient flip of the features does NOT move the held choice…
/// let flipped = [OptionDesc::with_features(1, vec![0.0]), OptionDesc::with_features(2, vec![1.0])];
/// let req2 = ChoiceRequest::new("t", &flipped);
/// assert_eq!(r.resolve(&req2, &mut NullEvaluator), 0);
/// assert_eq!(r.resolve(&req2, &mut NullEvaluator), 0);
/// // …until the inner preference persists for `patience` rounds.
/// assert_eq!(r.resolve(&req2, &mut NullEvaluator), 1);
/// ```
pub struct DampedResolver<R: Resolver> {
    inner: R,
    patience: u32,
    held: BTreeMap<(ChoiceId, ContextKey), Held>,
    /// Switches actually performed.
    pub switches: u64,
    /// Inner preferences suppressed by hysteresis.
    pub suppressed: u64,
}

impl<R: Resolver> DampedResolver<R> {
    /// Wraps `inner`; a switch needs `patience` consecutive dissenting
    /// resolutions.
    ///
    /// # Panics
    ///
    /// Panics if `patience` is zero (that would be no damping at all).
    pub fn new(inner: R, patience: u32) -> Self {
        assert!(patience > 0, "patience must be positive");
        DampedResolver {
            inner,
            patience,
            held: BTreeMap::new(),
            switches: 0,
            suppressed: 0,
        }
    }

    /// Access to the wrapped resolver.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Forgets all held choices (e.g. after a topology change).
    pub fn reset(&mut self) {
        self.held.clear();
    }
}

impl<R: Resolver> Resolver for DampedResolver<R> {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        let inner_idx = self.inner.resolve(request, eval);
        assert!(
            inner_idx < request.len(),
            "inner resolver returned out-of-range index"
        );
        let inner_key = request.options[inner_idx].key;
        let slot = (request.id, request.context);
        let Some(held) = self.held.get_mut(&slot) else {
            self.held.insert(
                slot,
                Held {
                    key: inner_key,
                    dissent: 0,
                    dissent_key: inner_key,
                },
            );
            return inner_idx;
        };
        // The held option may have disappeared from the option set.
        let Some(held_idx) = request.options.iter().position(|o| o.key == held.key) else {
            *held = Held {
                key: inner_key,
                dissent: 0,
                dissent_key: inner_key,
            };
            self.switches += 1;
            return inner_idx;
        };
        if inner_key == held.key {
            held.dissent = 0;
            return held_idx;
        }
        if inner_key == held.dissent_key {
            held.dissent += 1;
        } else {
            held.dissent_key = inner_key;
            held.dissent = 1;
        }
        if held.dissent >= self.patience {
            *held = Held {
                key: inner_key,
                dissent: 0,
                dissent_key: inner_key,
            };
            self.switches += 1;
            inner_idx
        } else {
            self.suppressed += 1;
            held_idx
        }
    }

    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        self.inner.feedback(id, context, option_key, reward);
    }

    fn name(&self) -> &'static str {
        "damped"
    }

    fn last_prediction(&self) -> Option<crate::choice::Prediction> {
        self.inner.last_prediction()
    }

    fn export_metrics(&self, reg: &mut cb_telemetry::Registry) {
        self.inner.export_metrics(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{NullEvaluator, OptionDesc};
    use crate::resolve::heuristic::HeuristicResolver;

    fn prefer_first() -> HeuristicResolver<impl FnMut(&OptionDesc) -> f64> {
        HeuristicResolver::new("f0", |o: &OptionDesc| {
            o.features.first().copied().unwrap_or(0.0)
        })
    }

    fn options(scores: [f64; 3]) -> Vec<OptionDesc> {
        (0..3)
            .map(|i| OptionDesc::with_features(i as u64, vec![scores[i]]))
            .collect()
    }

    #[test]
    fn settles_then_suppresses_transient_flips() {
        let mut r = DampedResolver::new(prefer_first(), 3);
        let stable = options([1.0, 0.0, 0.0]);
        let req = ChoiceRequest::new("t", &stable);
        assert_eq!(r.resolve(&req, &mut NullEvaluator), 0);
        // One transient round preferring option 2: suppressed.
        let transient = options([0.0, 0.0, 1.0]);
        let req2 = ChoiceRequest::new("t", &transient);
        assert_eq!(r.resolve(&req2, &mut NullEvaluator), 0);
        assert_eq!(r.suppressed, 1);
        // Back to stable: dissent resets.
        assert_eq!(r.resolve(&req, &mut NullEvaluator), 0);
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn persistent_dissent_eventually_switches() {
        let mut r = DampedResolver::new(prefer_first(), 3);
        let a = options([1.0, 0.0, 0.0]);
        let b = options([0.0, 1.0, 0.0]);
        let req_a = ChoiceRequest::new("t", &a);
        let req_b = ChoiceRequest::new("t", &b);
        assert_eq!(r.resolve(&req_a, &mut NullEvaluator), 0);
        assert_eq!(r.resolve(&req_b, &mut NullEvaluator), 0);
        assert_eq!(r.resolve(&req_b, &mut NullEvaluator), 0);
        assert_eq!(
            r.resolve(&req_b, &mut NullEvaluator),
            1,
            "third dissent switches"
        );
        assert_eq!(r.switches, 1);
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn dissent_must_be_consistent() {
        let mut r = DampedResolver::new(prefer_first(), 2);
        let a = options([1.0, 0.0, 0.0]);
        let b = options([0.0, 1.0, 0.0]);
        let c = options([0.0, 0.0, 1.0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &a), &mut NullEvaluator),
            0
        );
        // Alternating dissent between two different options never reaches
        // patience.
        for _ in 0..4 {
            assert_eq!(
                r.resolve(&ChoiceRequest::new("t", &b), &mut NullEvaluator),
                0
            );
            assert_eq!(
                r.resolve(&ChoiceRequest::new("t", &c), &mut NullEvaluator),
                0
            );
        }
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn vanished_held_option_switches_immediately() {
        let mut r = DampedResolver::new(prefer_first(), 5);
        let full = options([1.0, 0.0, 0.0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &full), &mut NullEvaluator),
            0
        );
        // Option key 0 disappears (peer left).
        let shrunk = vec![
            OptionDesc::with_features(1, vec![0.2]),
            OptionDesc::with_features(2, vec![0.9]),
        ];
        let idx = r.resolve(&ChoiceRequest::new("t", &shrunk), &mut NullEvaluator);
        assert_eq!(shrunk[idx].key, 2);
        assert_eq!(r.switches, 1);
    }

    #[test]
    fn contexts_are_held_independently() {
        let mut r = DampedResolver::new(prefer_first(), 2);
        let a = options([1.0, 0.0, 0.0]);
        let b = options([0.0, 1.0, 0.0]);
        let ra = ChoiceRequest::new("t", &a).in_context(ContextKey(1));
        let rb = ChoiceRequest::new("t", &b).in_context(ContextKey(2));
        assert_eq!(r.resolve(&ra, &mut NullEvaluator), 0);
        assert_eq!(r.resolve(&rb, &mut NullEvaluator), 1);
        // Each context holds its own choice.
        assert_eq!(r.resolve(&ra, &mut NullEvaluator), 0);
        assert_eq!(r.resolve(&rb, &mut NullEvaluator), 1);
    }

    #[test]
    fn reset_forgets_held_choices() {
        let mut r = DampedResolver::new(prefer_first(), 3);
        let a = options([1.0, 0.0, 0.0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &a), &mut NullEvaluator),
            0
        );
        r.reset();
        let b = options([0.0, 1.0, 0.0]);
        // After reset, the new preference lands immediately.
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &b), &mut NullEvaluator),
            1
        );
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_rejected() {
        let _ = DampedResolver::new(prefer_first(), 0);
    }
}
