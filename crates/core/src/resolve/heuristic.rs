//! The heuristic resolver: score options by their features.
//!
//! Stands in for the hand-tuned adaptive mechanisms the paper criticizes in
//! §3.1 (BulletPrime's rarest-random, BitTorrent's strategy switch): a fixed
//! function of the option features, with no model of the future. It is both
//! a baseline and a useful production fallback when prediction is
//! unavailable.

use crate::choice::{ChoiceRequest, OptionDesc, OptionEvaluator, Resolver};

/// Resolves choices by maximizing a scoring function over option features.
///
/// Ties break toward the earliest option, keeping resolution deterministic.
///
/// # Examples
///
/// ```
/// use cb_core::choice::{ChoiceRequest, NullEvaluator, OptionDesc, Resolver};
/// use cb_core::resolve::heuristic::HeuristicResolver;
///
/// // Prefer the lowest first feature (say, estimated latency).
/// let mut r = HeuristicResolver::new("lowest-latency", |o| {
///     -o.features.first().copied().unwrap_or(f64::INFINITY)
/// });
/// let opts = [
///     OptionDesc::with_features(10, vec![80.0]),
///     OptionDesc::with_features(11, vec![20.0]),
/// ];
/// let idx = r.resolve(&ChoiceRequest::new("peer", &opts), &mut NullEvaluator);
/// assert_eq!(idx, 1);
/// ```
pub struct HeuristicResolver<F: FnMut(&OptionDesc) -> f64> {
    label: &'static str,
    score: F,
}

impl<F: FnMut(&OptionDesc) -> f64> HeuristicResolver<F> {
    /// Creates a resolver that picks the option maximizing `score`.
    pub fn new(label: &'static str, score: F) -> Self {
        HeuristicResolver { label, score }
    }
}

impl<F: FnMut(&OptionDesc) -> f64> Resolver for HeuristicResolver<F> {
    fn resolve(&mut self, request: &ChoiceRequest<'_>, _eval: &mut dyn OptionEvaluator) -> usize {
        assert!(!request.is_empty(), "cannot resolve an empty choice");
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, opt) in request.options.iter().enumerate() {
            let s = (self.score)(opt);
            if s > best_score {
                best = i;
                best_score = s;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// A heuristic over a linear combination of features: picks the option
/// maximizing `weights · features` (missing features count as 0).
pub fn linear(label: &'static str, weights: Vec<f64>) -> impl Resolver {
    HeuristicResolver::new(label, move |opt: &OptionDesc| {
        weights
            .iter()
            .zip(opt.features.iter())
            .map(|(w, f)| w * f)
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::NullEvaluator;

    #[test]
    fn picks_argmax() {
        let opts = [
            OptionDesc::with_features(0, vec![1.0]),
            OptionDesc::with_features(1, vec![5.0]),
            OptionDesc::with_features(2, vec![3.0]),
        ];
        let mut r = HeuristicResolver::new("max-f0", |o| o.features[0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &opts), &mut NullEvaluator),
            1
        );
    }

    #[test]
    fn ties_break_to_first() {
        let opts = [OptionDesc::key(0), OptionDesc::key(1), OptionDesc::key(2)];
        let mut r = HeuristicResolver::new("flat", |_| 1.0);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &opts), &mut NullEvaluator),
            0
        );
    }

    #[test]
    fn linear_combination() {
        let opts = [
            OptionDesc::with_features(0, vec![1.0, 10.0]),
            OptionDesc::with_features(1, vec![4.0, 1.0]),
        ];
        // Weight the first feature heavily negative: prefer option 0.
        let mut r = linear("lin", vec![-10.0, 1.0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &opts), &mut NullEvaluator),
            0
        );
    }

    #[test]
    fn missing_features_score_zero_in_linear() {
        let opts = [OptionDesc::key(0), OptionDesc::with_features(1, vec![2.0])];
        let mut r = linear("lin", vec![1.0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &opts), &mut NullEvaluator),
            1
        );
    }

    #[test]
    fn nan_scores_never_win() {
        let opts = [
            OptionDesc::with_features(0, vec![f64::NAN]),
            OptionDesc::with_features(1, vec![0.5]),
        ];
        let mut r = HeuristicResolver::new("nan", |o| o.features[0]);
        assert_eq!(
            r.resolve(&ChoiceRequest::new("t", &opts), &mut NullEvaluator),
            1
        );
    }
}
