//! Exposed objectives (paper §3.2).
//!
//! The developer states *what* the system should achieve — safety and
//! liveness properties on the correctness side, quantitative metrics on the
//! performance side — and the runtime maximizes it when resolving choices.
//! An [`ObjectiveSet`] bundles all of them over the model state type `S`;
//! weighted performance terms compose into a single scalar, and safety
//! dominates lexicographically at resolution time (see
//! [`crate::choice::Prediction::better_than`]).

use cb_mck::props::Property;
use std::fmt;
use std::sync::Arc;

/// A named, weighted quantitative objective over model states.
pub struct PerfObjective<S> {
    name: String,
    weight: f64,
    metric: Arc<dyn Fn(&S) -> f64 + Send + Sync>,
}

impl<S> Clone for PerfObjective<S> {
    fn clone(&self) -> Self {
        PerfObjective {
            name: self.name.clone(),
            weight: self.weight,
            metric: Arc::clone(&self.metric),
        }
    }
}

impl<S> fmt::Debug for PerfObjective<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerfObjective")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .finish()
    }
}

impl<S> PerfObjective<S> {
    /// An objective to **maximize**: higher `metric` is better.
    pub fn maximize(
        name: impl Into<String>,
        weight: f64,
        metric: impl Fn(&S) -> f64 + Send + Sync + 'static,
    ) -> Self {
        PerfObjective {
            name: name.into(),
            weight,
            metric: Arc::new(metric),
        }
    }

    /// An objective to **minimize**: implemented as maximizing the negated
    /// metric, so everything downstream deals with one direction only.
    pub fn minimize(
        name: impl Into<String>,
        weight: f64,
        metric: impl Fn(&S) -> f64 + Send + Sync + 'static,
    ) -> Self {
        PerfObjective {
            name: name.into(),
            weight,
            metric: Arc::new(move |s| -metric(s)),
        }
    }

    /// The objective's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weighted value of this objective on a state.
    pub fn value(&self, state: &S) -> f64 {
        self.weight * (self.metric)(state)
    }
}

/// Everything the developer wants the runtime to uphold and maximize.
///
/// # Examples
///
/// ```
/// use cb_core::objective::ObjectiveSet;
/// use cb_mck::props::Property;
///
/// // Model state: (tree depth, node count).
/// let objectives: ObjectiveSet<(u32, u32)> = ObjectiveSet::new()
///     .maximize("nodes joined", 1.0, |s: &(u32, u32)| s.1 as f64)
///     .minimize("tree depth", 5.0, |s: &(u32, u32)| s.0 as f64)
///     .safety(Property::safety("no empty tree", |s: &(u32, u32)| s.1 > 0));
///
/// // Shallower trees with the same membership score higher.
/// assert!(objectives.score(&(3, 10)) > objectives.score(&(6, 10)));
/// ```
pub struct ObjectiveSet<S> {
    performance: Vec<PerfObjective<S>>,
    safety: Vec<Property<S>>,
    liveness: Vec<Property<S>>,
}

impl<S> Clone for ObjectiveSet<S> {
    fn clone(&self) -> Self {
        ObjectiveSet {
            performance: self.performance.clone(),
            safety: self.safety.clone(),
            liveness: self.liveness.clone(),
        }
    }
}

impl<S> fmt::Debug for ObjectiveSet<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectiveSet")
            .field("performance", &self.performance)
            .field("safety", &self.safety.len())
            .field("liveness", &self.liveness.len())
            .finish()
    }
}

impl<S> Default for ObjectiveSet<S> {
    fn default() -> Self {
        ObjectiveSet::new()
    }
}

impl<S> ObjectiveSet<S> {
    /// An empty objective set (score 0 everywhere, always safe).
    pub fn new() -> Self {
        ObjectiveSet {
            performance: Vec::new(),
            safety: Vec::new(),
            liveness: Vec::new(),
        }
    }

    /// Adds a metric to maximize with the given weight.
    pub fn maximize(
        mut self,
        name: impl Into<String>,
        weight: f64,
        metric: impl Fn(&S) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.performance
            .push(PerfObjective::maximize(name, weight, metric));
        self
    }

    /// Adds a metric to minimize with the given weight.
    pub fn minimize(
        mut self,
        name: impl Into<String>,
        weight: f64,
        metric: impl Fn(&S) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.performance
            .push(PerfObjective::minimize(name, weight, metric));
        self
    }

    /// Adds a safety property.
    ///
    /// # Panics
    ///
    /// Panics if the property is not a safety property.
    pub fn safety(mut self, prop: Property<S>) -> Self {
        assert_eq!(
            prop.kind(),
            cb_mck::props::PropertyKind::Safety,
            "expected a safety property"
        );
        self.safety.push(prop);
        self
    }

    /// Adds a bounded-liveness property.
    ///
    /// # Panics
    ///
    /// Panics if the property is not an `eventually` property.
    pub fn liveness(mut self, prop: Property<S>) -> Self {
        assert_eq!(
            prop.kind(),
            cb_mck::props::PropertyKind::EventuallyWithinHorizon,
            "expected an eventually-property"
        );
        self.liveness.push(prop);
        self
    }

    /// The combined weighted performance score of a state.
    pub fn score(&self, state: &S) -> f64 {
        self.performance.iter().map(|o| o.value(state)).sum()
    }

    /// All correctness properties (safety then liveness), as the checker
    /// expects them.
    pub fn properties(&self) -> Vec<Property<S>> {
        self.safety
            .iter()
            .chain(self.liveness.iter())
            .cloned()
            .collect()
    }

    /// The safety properties only.
    pub fn safety_properties(&self) -> &[Property<S>] {
        &self.safety
    }

    /// The liveness properties only.
    pub fn liveness_properties(&self) -> &[Property<S>] {
        &self.liveness
    }

    /// Number of performance terms.
    pub fn performance_len(&self) -> usize {
        self.performance.len()
    }

    /// Counts how many safety properties `state` violates right now (the
    /// "generically useful objective" of §3.2: the number of properties
    /// expected to hold).
    pub fn immediate_violations(&self, state: &S) -> u64 {
        self.safety.iter().filter(|p| !p.holds(state)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_mck::props::PropertyKind;

    #[test]
    fn maximize_and_minimize_directions() {
        let obj: ObjectiveSet<f64> = ObjectiveSet::new()
            .maximize("up", 2.0, |s: &f64| *s)
            .minimize("down", 1.0, |s: &f64| *s);
        // score = 2s - s = s
        assert_eq!(obj.score(&3.0), 3.0);
        assert_eq!(obj.score(&-2.0), -2.0);
    }

    #[test]
    fn empty_set_scores_zero() {
        let obj: ObjectiveSet<u8> = ObjectiveSet::new();
        assert_eq!(obj.score(&9), 0.0);
        assert_eq!(obj.immediate_violations(&9), 0);
        assert!(obj.properties().is_empty());
    }

    #[test]
    fn weights_scale_contributions() {
        let obj: ObjectiveSet<f64> = ObjectiveSet::new().maximize("x", 10.0, |s: &f64| *s);
        assert_eq!(obj.score(&2.0), 20.0);
    }

    #[test]
    fn violations_counted() {
        let obj: ObjectiveSet<i32> = ObjectiveSet::new()
            .safety(Property::safety("positive", |s: &i32| *s > 0))
            .safety(Property::safety("below ten", |s: &i32| *s < 10));
        assert_eq!(obj.immediate_violations(&5), 0);
        assert_eq!(obj.immediate_violations(&-3), 1);
        assert_eq!(obj.immediate_violations(&12), 1);
        assert_eq!(obj.safety_properties().len(), 2);
    }

    #[test]
    fn properties_preserve_kinds() {
        let obj: ObjectiveSet<i32> = ObjectiveSet::new()
            .safety(Property::safety("s", |_: &i32| true))
            .liveness(Property::eventually("l", |_: &i32| true));
        let props = obj.properties();
        assert_eq!(props[0].kind(), PropertyKind::Safety);
        assert_eq!(props[1].kind(), PropertyKind::EventuallyWithinHorizon);
        assert_eq!(obj.liveness_properties().len(), 1);
    }

    #[test]
    #[should_panic(expected = "expected a safety property")]
    fn wrong_kind_rejected() {
        let _ = ObjectiveSet::<i32>::new().safety(Property::eventually("l", |_: &i32| true));
    }

    #[test]
    fn clone_shares_metrics() {
        let obj: ObjectiveSet<f64> = ObjectiveSet::new().maximize("x", 1.0, |s: &f64| *s * 2.0);
        let cloned = obj.clone();
        assert_eq!(cloned.score(&4.0), 8.0);
        assert_eq!(cloned.performance_len(), 1);
    }
}
