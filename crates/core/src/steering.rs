//! Execution steering: event filters that avert predicted inconsistencies.
//!
//! When prediction finds that an incoming message would drive the system
//! into a safety violation (paper §2), the runtime installs an **event
//! filter**. CrystalBall's corrective action — the one that is universally
//! possible in any TCP-based system — is to *drop the offending message and
//! break the connection with its sender*; the sender observes an ordinary
//! connection failure and takes its normal recovery path. Steering is only
//! engaged when it is itself predicted safe (no new violations on the
//! steered path); the runtime performs that check before installation.

use cb_simnet::time::SimTime;
use cb_simnet::topology::NodeId;
use cb_trace::SpanId;
use std::fmt;
use std::sync::Arc;

/// What a triggered filter does to the event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterAction {
    /// Silently drop the message.
    Drop,
    /// Drop the message and break the TCP connection with the sender, so
    /// the sender's failure handling kicks in (CrystalBall's default).
    DropAndBreak,
}

/// A shared message predicate.
type MsgPredicate<M> = Arc<dyn Fn(&M) -> bool + Send + Sync>;

/// A predicate over incoming messages plus the action to take on match.
pub struct EventFilter<M> {
    /// Human-readable reason (usually the predicted violation's property).
    pub reason: String,
    /// Sender the filter applies to, or `None` for any sender.
    pub from: Option<NodeId>,
    /// Message predicate; `None` matches every message from `from`.
    matches: Option<MsgPredicate<M>>,
    /// Action on match.
    pub action: FilterAction,
    /// Filter expires after this many matches (None = until removed).
    pub budget: Option<u32>,
    /// When the filter was installed.
    pub installed_at: SimTime,
    /// Provenance span recorded at install time, if any. When the filter
    /// fires, the fire span is parented to this — the install→fire causal
    /// edge the blame walk follows back to the predicting decision.
    pub span: Option<SpanId>,
}

impl<M> Clone for EventFilter<M> {
    fn clone(&self) -> Self {
        EventFilter {
            reason: self.reason.clone(),
            from: self.from,
            matches: self.matches.clone(),
            action: self.action,
            budget: self.budget,
            installed_at: self.installed_at,
            span: self.span,
        }
    }
}

impl<M> fmt::Debug for EventFilter<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventFilter")
            .field("reason", &self.reason)
            .field("from", &self.from)
            .field("action", &self.action)
            .field("budget", &self.budget)
            .finish()
    }
}

impl<M> EventFilter<M> {
    /// A filter on every message from one sender.
    pub fn from_sender(
        reason: impl Into<String>,
        from: NodeId,
        action: FilterAction,
        installed_at: SimTime,
    ) -> Self {
        EventFilter {
            reason: reason.into(),
            from: Some(from),
            matches: None,
            action,
            budget: Some(1),
            installed_at,
            span: None,
        }
    }

    /// A filter with a message predicate.
    pub fn matching(
        reason: impl Into<String>,
        from: Option<NodeId>,
        pred: impl Fn(&M) -> bool + Send + Sync + 'static,
        action: FilterAction,
        installed_at: SimTime,
    ) -> Self {
        EventFilter {
            reason: reason.into(),
            from,
            matches: Some(Arc::new(pred)),
            action,
            budget: Some(1),
            installed_at,
            span: None,
        }
    }

    /// Attaches the provenance span recorded when the filter was installed.
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = Some(span);
        self
    }

    /// Makes the filter permanent (no match budget).
    pub fn permanent(mut self) -> Self {
        self.budget = None;
        self
    }

    /// Sets how many matches the filter absorbs before expiring.
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = Some(budget);
        self
    }

    fn matches(&self, from: NodeId, msg: &M) -> bool {
        if let Some(f) = self.from {
            if f != from {
                return false;
            }
        }
        match &self.matches {
            Some(pred) => pred(msg),
            None => true,
        }
    }
}

/// The per-node steering module: installed filters plus accounting.
///
/// The lifecycle counters (`installed`, `fired`, `expired`, `removed`)
/// export as `core.steering.*` telemetry: they let campaign artifacts show
/// not just how many messages steering dropped, but how much *filter churn*
/// the controller generated — a direct input to the degradation governor's
/// steering-pressure signal.
#[derive(Debug)]
pub struct Steering<M> {
    filters: Vec<EventFilter<M>>,
    /// Messages dropped by filters.
    pub dropped: u64,
    /// Connections broken by filters.
    pub breaks: u64,
    /// Filters ever installed.
    pub installed: u64,
    /// Filter matches (a filter actually vetoed a message). `fired ==
    /// dropped` today, but `fired` counts per-filter lifecycle semantics
    /// and stays correct if a non-dropping action is ever added.
    pub fired: u64,
    /// Filters that aged out by exhausting their match budget.
    pub expired: u64,
    /// Filters removed explicitly via [`Steering::remove_by_reason`].
    pub removed: u64,
}

impl<M> Default for Steering<M> {
    fn default() -> Self {
        Steering {
            filters: Vec::new(),
            dropped: 0,
            breaks: 0,
            installed: 0,
            fired: 0,
            expired: 0,
            removed: 0,
        }
    }
}

impl<M> Steering<M> {
    /// Creates an empty module.
    pub fn new() -> Self {
        Steering::default()
    }

    /// Installs a filter.
    pub fn install(&mut self, filter: EventFilter<M>) {
        self.installed += 1;
        self.filters.push(filter);
    }

    /// Number of live filters.
    pub fn active(&self) -> usize {
        self.filters.len()
    }

    /// Removes every filter naming `reason`.
    pub fn remove_by_reason(&mut self, reason: &str) {
        let before = self.filters.len();
        self.filters.retain(|f| f.reason != reason);
        self.removed += (before - self.filters.len()) as u64;
    }

    /// Checks an incoming message against the filters. On a match the
    /// filter's budget is consumed (expired filters are removed) and the
    /// action is returned; the runtime then drops the message and possibly
    /// breaks the connection.
    pub fn check(&mut self, from: NodeId, msg: &M) -> Option<FilterAction> {
        self.check_traced(from, msg).map(|(action, _)| action)
    }

    /// Like [`check`](Steering::check), but also returns the fired filter's
    /// reason and install-time provenance span, so the runtime can parent
    /// the SteeringFire span to the SteeringInstall span.
    pub fn check_traced(
        &mut self,
        from: NodeId,
        msg: &M,
    ) -> Option<(FilterAction, (String, Option<SpanId>))> {
        // A zero-budget filter is already spent; purge (as an expiry)
        // rather than letting the decrement below underflow.
        let before = self.filters.len();
        self.filters.retain(|f| f.budget != Some(0));
        self.expired += (before - self.filters.len()) as u64;
        let mut hit: Option<(usize, FilterAction)> = None;
        for (i, f) in self.filters.iter().enumerate() {
            if f.matches(from, msg) {
                hit = Some((i, f.action));
                break;
            }
        }
        let (i, action) = hit?;
        self.fired += 1;
        self.dropped += 1;
        if action == FilterAction::DropAndBreak {
            self.breaks += 1;
        }
        let provenance = (self.filters[i].reason.clone(), self.filters[i].span);
        if let Some(b) = &mut self.filters[i].budget {
            *b = b.saturating_sub(1);
            if *b == 0 {
                self.filters.remove(i);
                self.expired += 1;
            }
        }
        Some((action, provenance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn sender_filter_matches_only_that_sender() {
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("pred", NodeId(3), FilterAction::DropAndBreak, t0())
                .with_budget(10),
        );
        assert_eq!(s.check(NodeId(2), &1), None);
        assert_eq!(s.check(NodeId(3), &1), Some(FilterAction::DropAndBreak));
        assert_eq!(s.dropped, 1);
        assert_eq!(s.breaks, 1);
    }

    #[test]
    fn predicate_filter_matches_content() {
        let mut s: Steering<u32> = Steering::new();
        s.install(EventFilter::matching(
            "bad payload",
            None,
            |m: &u32| *m == 99,
            FilterAction::Drop,
            t0(),
        ));
        assert_eq!(s.check(NodeId(1), &5), None);
        assert_eq!(s.check(NodeId(1), &99), Some(FilterAction::Drop));
        assert_eq!(s.breaks, 0);
    }

    #[test]
    fn budget_expires_filter() {
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("x", NodeId(1), FilterAction::Drop, t0()).with_budget(2),
        );
        assert!(s.check(NodeId(1), &0).is_some());
        assert!(s.check(NodeId(1), &0).is_some());
        assert_eq!(s.active(), 0);
        assert!(s.check(NodeId(1), &0).is_none());
    }

    #[test]
    fn default_sender_filter_is_one_shot() {
        let mut s: Steering<u32> = Steering::new();
        s.install(EventFilter::from_sender(
            "x",
            NodeId(1),
            FilterAction::Drop,
            t0(),
        ));
        assert!(s.check(NodeId(1), &0).is_some());
        assert!(s.check(NodeId(1), &0).is_none());
    }

    #[test]
    fn permanent_filter_never_expires() {
        let mut s: Steering<u32> = Steering::new();
        s.install(EventFilter::from_sender("x", NodeId(1), FilterAction::Drop, t0()).permanent());
        for _ in 0..10 {
            assert!(s.check(NodeId(1), &0).is_some());
        }
        assert_eq!(s.dropped, 10);
        assert_eq!(s.active(), 1);
    }

    #[test]
    fn remove_by_reason() {
        let mut s: Steering<u32> = Steering::new();
        s.install(EventFilter::from_sender(
            "a",
            NodeId(1),
            FilterAction::Drop,
            t0(),
        ));
        s.install(EventFilter::from_sender(
            "b",
            NodeId(2),
            FilterAction::Drop,
            t0(),
        ));
        s.remove_by_reason("a");
        assert_eq!(s.active(), 1);
        assert!(s.check(NodeId(1), &0).is_none());
        assert!(s.check(NodeId(2), &0).is_some());
    }

    #[test]
    fn zero_budget_filter_never_fires() {
        // A spent filter must not match — and must not underflow the
        // budget decrement in check().
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("spent", NodeId(1), FilterAction::Drop, t0()).with_budget(0),
        );
        assert_eq!(s.check(NodeId(1), &0), None);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.active(), 0, "spent filter is purged");
    }

    #[test]
    fn zero_budget_filter_does_not_shadow_live_ones() {
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("spent", NodeId(1), FilterAction::Drop, t0()).with_budget(0),
        );
        s.install(
            EventFilter::from_sender("live", NodeId(1), FilterAction::DropAndBreak, t0())
                .permanent(),
        );
        assert_eq!(s.check(NodeId(1), &0), Some(FilterAction::DropAndBreak));
        assert_eq!(s.active(), 1);
    }

    #[test]
    fn permanent_survives_unrelated_removals() {
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("keep", NodeId(1), FilterAction::Drop, t0()).permanent(),
        );
        s.install(EventFilter::from_sender(
            "other",
            NodeId(2),
            FilterAction::Drop,
            t0(),
        ));
        s.remove_by_reason("other");
        s.remove_by_reason("no-such-reason");
        assert_eq!(s.active(), 1);
        for _ in 0..3 {
            assert_eq!(s.check(NodeId(1), &7), Some(FilterAction::Drop));
        }
        assert_eq!(s.active(), 1);
    }

    #[test]
    fn lifecycle_counters_track_install_fire_expire_remove() {
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("a", NodeId(1), FilterAction::Drop, t0()).with_budget(2),
        );
        s.install(EventFilter::from_sender(
            "b",
            NodeId(2),
            FilterAction::Drop,
            t0(),
        ));
        s.install(EventFilter::from_sender(
            "c",
            NodeId(3),
            FilterAction::Drop,
            t0(),
        ));
        assert_eq!(s.installed, 3);
        // Fire "a" twice: second match exhausts its budget -> expired.
        assert!(s.check(NodeId(1), &0).is_some());
        assert!(s.check(NodeId(1), &0).is_some());
        assert_eq!(s.fired, 2);
        assert_eq!(s.expired, 1);
        // Explicit retraction of "b".
        s.remove_by_reason("b");
        assert_eq!(s.removed, 1);
        // "c" remains live; nothing else expired or was removed.
        assert_eq!(s.active(), 1);
        assert_eq!(s.fired, s.dropped);
        // A pre-spent filter purged on the next check counts as expired.
        s.install(
            EventFilter::from_sender("spent", NodeId(9), FilterAction::Drop, t0()).with_budget(0),
        );
        assert!(s.check(NodeId(9), &0).is_none());
        assert_eq!(s.expired, 2);
    }

    #[test]
    fn check_traced_returns_install_span_and_reason() {
        let mut s: Steering<u32> = Steering::new();
        let span = SpanId {
            at_ns: 10,
            node: 2,
            seq: 5,
        };
        s.install(
            EventFilter::from_sender("storm", NodeId(1), FilterAction::Drop, t0())
                .with_span(span)
                .with_budget(2),
        );
        let (action, (reason, got)) = s.check_traced(NodeId(1), &0).unwrap();
        assert_eq!(action, FilterAction::Drop);
        assert_eq!(reason, "storm");
        assert_eq!(got, Some(span));
        // `check` stays a transparent wrapper.
        assert_eq!(s.check(NodeId(1), &0), Some(FilterAction::Drop));
        assert_eq!(s.fired, 2);
    }

    #[test]
    fn first_matching_filter_wins() {
        let mut s: Steering<u32> = Steering::new();
        s.install(
            EventFilter::from_sender("first", NodeId(1), FilterAction::Drop, t0()).permanent(),
        );
        s.install(
            EventFilter::from_sender("second", NodeId(1), FilterAction::DropAndBreak, t0())
                .permanent(),
        );
        assert_eq!(s.check(NodeId(1), &0), Some(FilterAction::Drop));
    }
}
