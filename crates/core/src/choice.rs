//! Exposed choices: the heart of the programming model.
//!
//! Instead of burying "which peer do I pick?" inside a message handler, the
//! service *exposes* the decision: it names the choice point, lists the
//! options (with optional feature vectors and a scenario context), and asks
//! the runtime to resolve it (paper §3.1). Everything a resolver — random,
//! heuristic, predictive, or learned — needs to know about a decision is in
//! the [`ChoiceRequest`]; what the runtime decided and why is recorded as a
//! [`DecisionRecord`] for later inspection and learning feedback.

use cb_simnet::time::SimTime;
use std::fmt;

/// Identifies a choice point in the service's code, e.g.
/// `"randtree.forward-join"`. Static strings keep request construction
/// allocation-free on the hot path.
pub type ChoiceId = &'static str;

/// A discretized scenario context, used by learned resolvers to generalize
/// across "similar scenarios" (paper §3.4). Services derive it from whatever
/// coarse state matters: load level, churn regime, round phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ContextKey(pub u64);

/// One selectable alternative at a choice point.
#[derive(Clone, Debug, PartialEq)]
pub struct OptionDesc {
    /// Application-level identity of the option (e.g. a peer's `NodeId.0`,
    /// a block index, a handler index).
    pub key: u64,
    /// Optional features for heuristic/learned resolvers, e.g.
    /// `[estimated latency ms, tree depth, load]`. May be empty.
    pub features: Vec<f64>,
}

impl OptionDesc {
    /// An option with no features.
    pub fn key(key: u64) -> Self {
        OptionDesc {
            key,
            features: Vec::new(),
        }
    }

    /// An option with features.
    pub fn with_features(key: u64, features: Vec<f64>) -> Self {
        OptionDesc { key, features }
    }
}

/// A choice the service asks the runtime to resolve.
#[derive(Clone, Debug)]
pub struct ChoiceRequest<'a> {
    /// Which choice point this is.
    pub id: ChoiceId,
    /// The alternatives, in the service's preference-neutral order.
    pub options: &'a [OptionDesc],
    /// Scenario context for learned resolution.
    pub context: ContextKey,
    /// Optional fingerprint of the decision-relevant state beyond the
    /// option set itself (e.g. a hash of the workload position). Folded
    /// into the cross-run policy store's content address; `0` means "the
    /// option set is the state", which is the right default for runtime
    /// decisions whose options already name the live alternatives.
    pub state_fp: u64,
}

impl<'a> ChoiceRequest<'a> {
    /// Builds a request with the default (empty) context.
    pub fn new(id: ChoiceId, options: &'a [OptionDesc]) -> Self {
        ChoiceRequest {
            id,
            options,
            context: ContextKey::default(),
            state_fp: 0,
        }
    }

    /// Sets the scenario context.
    pub fn in_context(mut self, context: ContextKey) -> Self {
        self.context = context;
        self
    }

    /// Sets an explicit state fingerprint for cross-run memoization.
    pub fn with_state_fp(mut self, state_fp: u64) -> Self {
        self.state_fp = state_fp;
        self
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.options.len()
    }

    /// True when there is nothing to choose from.
    pub fn is_empty(&self) -> bool {
        self.options.is_empty()
    }
}

/// What a predictive evaluation of one option concluded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted objective value if this option is chosen (higher is
    /// better).
    pub objective: f64,
    /// Number of safety violations predicted in the explored future.
    pub violations: u64,
    /// How much future was examined (states or walks), for cost accounting.
    pub states_explored: u64,
}

impl Prediction {
    /// A neutral prediction (no information).
    pub fn unknown() -> Self {
        Prediction {
            objective: 0.0,
            violations: 0,
            states_explored: 0,
        }
    }

    /// Orders predictions: fewer predicted violations first (safety
    /// dominates), then higher objective.
    pub fn better_than(&self, other: &Prediction) -> bool {
        match self.violations.cmp(&other.violations) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.objective > other.objective,
        }
    }
}

/// Whether a predictive evaluation ran to completion or was cut short.
///
/// A [`Partial`](EvalVerdict::Partial) verdict is an *explicit* signal that
/// the evaluator hit its per-decision prediction deadline (sim-cost budget)
/// and stopped early instead of silently truncating the search: downstream
/// consumers (the degradation governor, the resolver ladder) treat it as a
/// deadline firing and step down to cheaper resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalVerdict {
    /// Every evaluation this decision ran within budget.
    Complete,
    /// At least one evaluation was cut short by the prediction deadline;
    /// predictions from this decision may be under-informed.
    Partial,
}

/// Evaluates the future of individual options at a choice point.
///
/// Predictive resolvers call [`OptionEvaluator::evaluate`]; cheap resolvers
/// never do, so the (possibly expensive) prediction machinery only runs when
/// the strategy wants it.
pub trait OptionEvaluator {
    /// Predicts the outcome of picking option `index`.
    fn evaluate(&mut self, index: usize) -> Prediction;

    /// Whether the evaluations so far this decision all completed, or a
    /// prediction deadline fired ([`EvalVerdict::Partial`]). Default:
    /// [`EvalVerdict::Complete`] (evaluators without a deadline never run
    /// out of budget).
    fn verdict(&self) -> EvalVerdict {
        EvalVerdict::Complete
    }

    /// Total predicted states this evaluator has explored this decision,
    /// across every option — the number the prediction deadline is charged
    /// against. The runtime uses it to *report* overruns for evaluators
    /// whose deadline is not enforced (the control arm of the degradation
    /// experiments). Default: 0 (evaluators with no exploration cost).
    fn states_spent(&self) -> u64 {
        0
    }

    /// Accumulates evaluator-internal telemetry (evaluation-cache hit/miss
    /// counts, fused-pass savings, …) into `reg` under the standard
    /// `core.*` keys. Unlike [`Resolver::export_metrics`] this has *delta*
    /// semantics: the runtime calls it exactly once per decision, after
    /// resolution, and implementations `add` what this evaluator observed.
    /// Default: exports nothing.
    fn export_metrics(&self, reg: &mut cb_telemetry::Registry) {
        let _ = reg;
    }
}

/// An evaluator with no predictive model: every option looks the same.
pub struct NullEvaluator;

impl OptionEvaluator for NullEvaluator {
    fn evaluate(&mut self, _index: usize) -> Prediction {
        Prediction::unknown()
    }
}

/// An evaluator backed by a closure (used by services that evaluate options
/// with app-specific logic, and pervasively by tests).
pub struct FnEvaluator<F: FnMut(usize) -> Prediction>(pub F);

impl<F: FnMut(usize) -> Prediction> OptionEvaluator for FnEvaluator<F> {
    fn evaluate(&mut self, index: usize) -> Prediction {
        (self.0)(index)
    }
}

/// A resolver turns a [`ChoiceRequest`] into the index of the chosen option.
///
/// Implementations must return an index `< request.len()`; the runtime
/// asserts this. The [`feedback`](Resolver::feedback) channel closes the
/// loop for learned resolvers: the service (or the runtime's objective
/// machinery) reports the realized reward of a past decision.
pub trait Resolver {
    /// Resolves the request. `eval` predicts option futures on demand.
    fn resolve(&mut self, request: &ChoiceRequest<'_>, eval: &mut dyn OptionEvaluator) -> usize;

    /// Reports the realized reward of having picked `option_key` at this
    /// choice point in this context. Default: ignored.
    fn feedback(&mut self, id: ChoiceId, context: ContextKey, option_key: u64, reward: f64) {
        let _ = (id, context, option_key, reward);
    }

    /// Feeds the resolver the runtime's model-health signals for the
    /// decision about to be resolved (snapshot staleness, network-model
    /// confidence, steering pressure). Health-aware resolvers — the
    /// [`LadderResolver`](crate::resolve::ladder::LadderResolver) — route
    /// these into their degradation governor; everything else ignores
    /// them. Called by the runtime immediately before
    /// [`resolve`](Resolver::resolve). Default: no-op.
    fn observe_health(&mut self, signals: &crate::governor::HealthSignals) {
        let _ = signals;
    }

    /// A short name for reports and experiment tables.
    fn name(&self) -> &'static str;

    /// The prediction backing the most recent decision, when the resolver
    /// produced one (predictive resolvers override this; others return
    /// `None`). The runtime copies it into the decision log.
    fn last_prediction(&self) -> Option<Prediction> {
        None
    }

    /// Exports resolver-internal telemetry (cache hit/miss/refresh rates,
    /// lookahead evaluation counts, …) into `reg` under the standard
    /// `core.*` keys. Snapshot semantics: called at export time, must be
    /// idempotent (use absolute sets, not increments). Wrapping resolvers
    /// delegate to their inner resolver. Default: exports nothing.
    fn export_metrics(&self, reg: &mut cb_telemetry::Registry) {
        let _ = reg;
    }

    /// Appends resolver-specific attributes describing the decision *just
    /// resolved* to a DecisionSpan's attr list (ladder rung taken / rungs
    /// skipped, governor level and dominant pressure cause, cache
    /// disposition, …). Called by the runtime immediately after
    /// [`resolve`](Resolver::resolve) while recording the decision's
    /// provenance span. Default: appends nothing.
    fn decision_attrs(&self, out: &mut Vec<(String, String)>) {
        let _ = out;
    }
}

/// One resolved decision, kept in the runtime's decision log.
#[derive(Clone, Debug)]
pub struct DecisionRecord {
    /// When the decision was made.
    pub at: SimTime,
    /// Which choice point.
    pub id: ChoiceId,
    /// Scenario context at decision time.
    pub context: ContextKey,
    /// Keys of the options that were available.
    pub option_keys: Vec<u64>,
    /// Index of the chosen option.
    pub chosen: usize,
    /// Prediction for the chosen option, when the resolver produced one.
    pub prediction: Option<Prediction>,
}

impl DecisionRecord {
    /// Key of the chosen option.
    ///
    /// # Panics
    ///
    /// Panics if the record is malformed (chosen out of range), which the
    /// runtime prevents.
    pub fn chosen_key(&self) -> u64 {
        self.option_keys[self.chosen]
    }
}

impl fmt::Display for DecisionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: chose {} of {:?}",
            self.at,
            self.id,
            self.chosen_key(),
            self.option_keys
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_desc_builders() {
        let a = OptionDesc::key(7);
        assert!(a.features.is_empty());
        let b = OptionDesc::with_features(8, vec![1.0, 2.0]);
        assert_eq!(b.features, vec![1.0, 2.0]);
    }

    #[test]
    fn request_context_builder() {
        let opts = [OptionDesc::key(1), OptionDesc::key(2)];
        let req = ChoiceRequest::new("x", &opts).in_context(ContextKey(9));
        assert_eq!(req.len(), 2);
        assert!(!req.is_empty());
        assert_eq!(req.context, ContextKey(9));
    }

    #[test]
    fn prediction_ordering_safety_dominates() {
        let safe_bad = Prediction {
            objective: -5.0,
            violations: 0,
            states_explored: 1,
        };
        let unsafe_good = Prediction {
            objective: 100.0,
            violations: 1,
            states_explored: 1,
        };
        assert!(safe_bad.better_than(&unsafe_good));
        assert!(!unsafe_good.better_than(&safe_bad));
        let better_obj = Prediction {
            objective: 1.0,
            violations: 0,
            states_explored: 1,
        };
        assert!(better_obj.better_than(&safe_bad));
    }

    #[test]
    fn fn_evaluator_delegates() {
        let mut eval = FnEvaluator(|i| Prediction {
            objective: i as f64,
            violations: 0,
            states_explored: 1,
        });
        assert_eq!(eval.evaluate(3).objective, 3.0);
        assert_eq!(NullEvaluator.evaluate(3), Prediction::unknown());
    }

    #[test]
    fn decision_record_chosen_key_and_display() {
        let rec = DecisionRecord {
            at: SimTime::from_millis(5),
            id: "pick",
            context: ContextKey(0),
            option_keys: vec![10, 20, 30],
            chosen: 2,
            prediction: None,
        };
        assert_eq!(rec.chosen_key(), 30);
        let text = format!("{rec}");
        assert!(text.contains("pick"), "{text}");
        assert!(text.contains("30"), "{text}");
    }
}
