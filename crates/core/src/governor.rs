//! The degradation governor: a per-node health state machine with
//! hysteresis.
//!
//! The predictive runtime is only as good as its models (paper §3.4: "the
//! model can become out-of-date"). When the `StateModel` snapshots it
//! predicts over grow stale, the `NetworkModel` loses confidence in the
//! peers the options refer to, steering filters fire in bursts, or the
//! per-decision prediction deadline is blown, *continuing to trust full
//! lookahead is worse than not predicting at all* — the predictions would
//! be confidently wrong. The governor classifies those signals into a
//! coarse [`Health`] level and drives the
//! [`LadderResolver`](crate::resolve::ladder::LadderResolver) down to
//! cheaper, safer resolution rungs, with hysteresis so the node does not
//! flap between strategies on a noisy boundary signal.
//!
//! ## Hysteresis
//!
//! Transitions move **one level at a time** and only after the raw
//! classification has pointed the same direction for a configurable number
//! of consecutive observations (`down_patience` to worsen, the larger
//! `up_patience` to recover). An oscillating signal therefore never builds
//! a streak long enough to move the state at all, and recovery is
//! deliberately slower than degradation: stepping down late costs wasted
//! prediction, stepping up early costs wrong predictions.

use cb_simnet::time::{SimDuration, SimTime};
use cb_telemetry::{keys, Histogram, Registry};

/// Coarse model-health level. Ordered: `Healthy < Degraded < Survival`
/// (greater = worse), so `max` composes "worst of several signals".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Health {
    /// Models fresh and confident: full predictive resolution is trusted.
    Healthy,
    /// Models aging or under pressure: prefer cached/cheap resolution.
    Degraded,
    /// Models effectively blind: take only the static safe default.
    Survival,
}

impl Health {
    /// The ladder rung this health level maps to (0 = full lookahead,
    /// 2 = heuristic; the ladder may bump further for deadline events).
    pub fn rung(self) -> usize {
        match self {
            Health::Healthy => 0,
            Health::Degraded => 1,
            Health::Survival => 2,
        }
    }

    /// One level worse, saturating at [`Health::Survival`].
    pub fn worse(self) -> Health {
        match self {
            Health::Healthy => Health::Degraded,
            Health::Degraded | Health::Survival => Health::Survival,
        }
    }

    /// One level better, saturating at [`Health::Healthy`].
    pub fn better(self) -> Health {
        match self {
            Health::Survival => Health::Degraded,
            Health::Degraded | Health::Healthy => Health::Healthy,
        }
    }

    /// Short label for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Survival => "survival",
        }
    }
}

/// Which pressure input dominated a governor classification — i.e. the
/// signal that demanded the worst health level. Recorded on every
/// observation and, crucially, on every step-down, so `core.governor.*`
/// telemetry and DecisionSpans can say *why* the node degraded, not just
/// that it did.
///
/// When several signals demand the same (worst) level the tie is broken by
/// a fixed priority — staleness, then confidence, then load, then
/// steering, then deadline — matching the order
/// [`DegradationGovernor::classify`] folds them in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PressureCause {
    /// No signal demanded worse than `Healthy`.
    None,
    /// Snapshot staleness crossed a threshold.
    Staleness,
    /// Network-model peer confidence collapsed.
    Confidence,
    /// Service-load backlog crossed a threshold.
    Load,
    /// Steering-filter pressure crossed the threshold.
    Steering,
    /// The previous decision's prediction deadline fired.
    Deadline,
}

impl PressureCause {
    /// Short label for telemetry attrs and reports.
    pub fn label(self) -> &'static str {
        match self {
            PressureCause::None => "none",
            PressureCause::Staleness => "staleness",
            PressureCause::Confidence => "confidence",
            PressureCause::Load => "load",
            PressureCause::Steering => "steering",
            PressureCause::Deadline => "deadline",
        }
    }
}

/// The model-health signals the runtime gathers immediately before each
/// decision and feeds to [`Resolver::observe_health`]
/// (crate::choice::Resolver::observe_health).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthSignals {
    /// Age of the *oldest* neighbor snapshot the state model holds, or
    /// `None` when no neighbor snapshots are expected (single node) —
    /// treated as fresh.
    pub snapshot_staleness: Option<SimDuration>,
    /// Minimum network-model confidence across the peers involved in the
    /// decision (1.0 when no peers are involved).
    pub min_peer_confidence: f64,
    /// Steering filters currently installed on this node (a burst of
    /// filters means the controller is predicting trouble).
    pub steering_pressure: u64,
    /// Whether the previous decision's prediction hit its deadline
    /// ([`EvalVerdict::Partial`](crate::choice::EvalVerdict::Partial)).
    pub deadline_fired: bool,
    /// Normalized service-load backlog the node reported before this
    /// decision (units of one drain interval's capacity: 1 means "one
    /// interval behind"). 0 when the service reports no load.
    pub load: u64,
    /// Sim time of the observation; drives the time-in-state accounting.
    /// `SimTime::ZERO` (the default) contributes no dwell time.
    pub now: SimTime,
}

impl Default for HealthSignals {
    fn default() -> Self {
        HealthSignals {
            snapshot_staleness: None,
            min_peer_confidence: 1.0,
            steering_pressure: 0,
            deadline_fired: false,
            load: 0,
            now: SimTime::ZERO,
        }
    }
}

/// Thresholds and hysteresis patience for the governor.
#[derive(Clone, Copy, Debug)]
pub struct GovernorConfig {
    /// Snapshot age at which the node counts as `Degraded`.
    pub stale_degraded: SimDuration,
    /// Snapshot age at which the node counts as `Survival`.
    pub stale_survival: SimDuration,
    /// Peer confidence below which the node counts as `Degraded`.
    pub conf_degraded: f64,
    /// Peer confidence below which the node counts as `Survival`.
    pub conf_survival: f64,
    /// Installed steering filters at/above which the node counts as
    /// `Degraded` (steering pressure alone never forces `Survival`).
    pub pressure_degraded: u64,
    /// Normalized backlog at/above which the node counts as `Degraded`.
    pub load_degraded: u64,
    /// Normalized backlog at/above which the node counts as `Survival`.
    pub load_survival: u64,
    /// Consecutive worse-pointing observations before stepping down one
    /// level.
    pub down_patience: u32,
    /// Consecutive better-pointing observations before stepping up one
    /// level. Should exceed `down_patience`: recovery must be earned.
    pub up_patience: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            stale_degraded: SimDuration::from_secs(10),
            stale_survival: SimDuration::from_secs(30),
            conf_degraded: 0.5,
            conf_survival: 0.1,
            pressure_degraded: 4,
            load_degraded: 4,
            load_survival: 16,
            down_patience: 2,
            up_patience: 8,
        }
    }
}

/// The per-node health state machine. Feed it one [`HealthSignals`] per
/// decision via [`observe`](DegradationGovernor::observe); read the current
/// level with [`health`](DegradationGovernor::health).
#[derive(Clone, Debug)]
pub struct DegradationGovernor {
    cfg: GovernorConfig,
    state: Health,
    /// Consecutive observations whose raw classification was worse than
    /// the current state.
    down_streak: u32,
    /// Consecutive observations whose raw classification was better than
    /// the current state.
    up_streak: u32,
    // ---- counters for telemetry (absolute; exported as snapshots) ----
    transitions: u64,
    step_downs: u64,
    recoveries: u64,
    decisions_healthy: u64,
    decisions_degraded: u64,
    decisions_survival: u64,
    /// Dominant cause of the most recent observation.
    last_cause: PressureCause,
    /// Dominant cause that tripped the most recent step-down.
    last_step_down_cause: PressureCause,
    step_downs_staleness: u64,
    step_downs_confidence: u64,
    step_downs_load: u64,
    step_downs_steering: u64,
    step_downs_deadline: u64,
    /// Sim time of the most recent observation (time-in-state clock).
    last_observed: SimTime,
    /// Sim-ns spent in each state, indexed by `Health::rung()`. The span
    /// between two observations is charged to the state in force when it
    /// started, so a node that never observes accrues nothing.
    ns_in_state: [u64; 3],
}

impl DegradationGovernor {
    /// A governor starting `Healthy` with the given thresholds.
    pub fn new(cfg: GovernorConfig) -> Self {
        DegradationGovernor {
            cfg,
            state: Health::Healthy,
            down_streak: 0,
            up_streak: 0,
            transitions: 0,
            step_downs: 0,
            recoveries: 0,
            decisions_healthy: 0,
            decisions_degraded: 0,
            decisions_survival: 0,
            last_cause: PressureCause::None,
            last_step_down_cause: PressureCause::None,
            step_downs_staleness: 0,
            step_downs_confidence: 0,
            step_downs_load: 0,
            step_downs_steering: 0,
            step_downs_deadline: 0,
            last_observed: SimTime::ZERO,
            ns_in_state: [0; 3],
        }
    }

    /// The current health level.
    pub fn health(&self) -> Health {
        self.state
    }

    /// The raw, hysteresis-free classification of one signal set: the
    /// worst level any individual signal demands.
    pub fn classify(&self, s: &HealthSignals) -> Health {
        self.classify_with_cause(s).0
    }

    /// Like [`classify`](DegradationGovernor::classify), but also reports
    /// the dominant [`PressureCause`]: the first signal (in staleness →
    /// confidence → steering → deadline priority order) that demanded the
    /// returned level.
    pub fn classify_with_cause(&self, s: &HealthSignals) -> (Health, PressureCause) {
        let mut h = Health::Healthy;
        let mut cause = PressureCause::None;
        let fold = |level: Health, c: PressureCause, h: &mut Health, cause: &mut PressureCause| {
            if level > *h {
                *h = level;
                *cause = c;
            }
        };
        if let Some(age) = s.snapshot_staleness {
            if age >= self.cfg.stale_survival {
                fold(
                    Health::Survival,
                    PressureCause::Staleness,
                    &mut h,
                    &mut cause,
                );
            } else if age >= self.cfg.stale_degraded {
                fold(
                    Health::Degraded,
                    PressureCause::Staleness,
                    &mut h,
                    &mut cause,
                );
            }
        }
        if s.min_peer_confidence < self.cfg.conf_survival {
            fold(
                Health::Survival,
                PressureCause::Confidence,
                &mut h,
                &mut cause,
            );
        } else if s.min_peer_confidence < self.cfg.conf_degraded {
            fold(
                Health::Degraded,
                PressureCause::Confidence,
                &mut h,
                &mut cause,
            );
        }
        if s.load >= self.cfg.load_survival {
            fold(Health::Survival, PressureCause::Load, &mut h, &mut cause);
        } else if s.load >= self.cfg.load_degraded {
            fold(Health::Degraded, PressureCause::Load, &mut h, &mut cause);
        }
        if s.steering_pressure >= self.cfg.pressure_degraded {
            fold(
                Health::Degraded,
                PressureCause::Steering,
                &mut h,
                &mut cause,
            );
        }
        if s.deadline_fired {
            fold(
                Health::Degraded,
                PressureCause::Deadline,
                &mut h,
                &mut cause,
            );
        }
        (h, cause)
    }

    /// Folds in one observation (one per decision) and returns the health
    /// level in force *for that decision*. Transitions happen one level at
    /// a time, only after the classification has pointed the same way for
    /// `down_patience` / `up_patience` consecutive observations.
    pub fn observe(&mut self, signals: &HealthSignals) -> Health {
        // Charge the span since the previous observation to the state that
        // was in force across it, *before* any transition below.
        let dwell = signals.now.saturating_since(self.last_observed);
        self.ns_in_state[self.state.rung()] += dwell.as_nanos();
        self.last_observed = self.last_observed.max(signals.now);
        let (target, cause) = self.classify_with_cause(signals);
        self.last_cause = cause;
        match target.cmp(&self.state) {
            std::cmp::Ordering::Greater => {
                self.down_streak += 1;
                self.up_streak = 0;
                if self.down_streak >= self.cfg.down_patience {
                    self.state = self.state.worse();
                    self.down_streak = 0;
                    self.transitions += 1;
                    self.step_downs += 1;
                    self.last_step_down_cause = cause;
                    match cause {
                        PressureCause::Staleness => self.step_downs_staleness += 1,
                        PressureCause::Confidence => self.step_downs_confidence += 1,
                        PressureCause::Load => self.step_downs_load += 1,
                        PressureCause::Steering => self.step_downs_steering += 1,
                        PressureCause::Deadline => self.step_downs_deadline += 1,
                        PressureCause::None => {}
                    }
                }
            }
            std::cmp::Ordering::Less => {
                self.up_streak += 1;
                self.down_streak = 0;
                if self.up_streak >= self.cfg.up_patience {
                    self.state = self.state.better();
                    self.up_streak = 0;
                    self.transitions += 1;
                    self.recoveries += 1;
                }
            }
            std::cmp::Ordering::Equal => {
                self.down_streak = 0;
                self.up_streak = 0;
            }
        }
        match self.state {
            Health::Healthy => self.decisions_healthy += 1,
            Health::Degraded => self.decisions_degraded += 1,
            Health::Survival => self.decisions_survival += 1,
        }
        self.state
    }

    /// Total state transitions (either direction).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Transitions toward worse health.
    pub fn step_downs(&self) -> u64 {
        self.step_downs
    }

    /// Transitions toward better health.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Dominant pressure cause of the most recent observation
    /// ([`PressureCause::None`] when the signals were healthy).
    pub fn last_cause(&self) -> PressureCause {
        self.last_cause
    }

    /// Dominant pressure cause that tripped the most recent step-down
    /// ([`PressureCause::None`] if none fired yet).
    pub fn last_step_down_cause(&self) -> PressureCause {
        self.last_step_down_cause
    }

    /// Sim-ns this node has spent in each health state, indexed by
    /// [`Health::rung`]: `[healthy, degraded, survival]`. Only spans
    /// between observations are charged; the tail after the last
    /// observation is not.
    pub fn sim_ns_in_state(&self) -> [u64; 3] {
        self.ns_in_state
    }

    /// Exports the governor counters under the `core.governor.*` keys
    /// (snapshot semantics: absolute sets, idempotent).
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.set_counter(keys::CORE_GOVERNOR_TRANSITIONS, self.transitions);
        reg.set_counter(keys::CORE_GOVERNOR_STEP_DOWNS, self.step_downs);
        reg.set_counter(keys::CORE_GOVERNOR_RECOVERIES, self.recoveries);
        reg.set_counter(
            keys::CORE_GOVERNOR_DECISIONS_HEALTHY,
            self.decisions_healthy,
        );
        reg.set_counter(
            keys::CORE_GOVERNOR_DECISIONS_DEGRADED,
            self.decisions_degraded,
        );
        reg.set_counter(
            keys::CORE_GOVERNOR_DECISIONS_SURVIVAL,
            self.decisions_survival,
        );
        reg.set_counter(
            keys::CORE_GOVERNOR_CAUSE_STALENESS,
            self.step_downs_staleness,
        );
        reg.set_counter(
            keys::CORE_GOVERNOR_CAUSE_CONFIDENCE,
            self.step_downs_confidence,
        );
        reg.set_counter(keys::CORE_GOVERNOR_CAUSE_LOAD, self.step_downs_load);
        reg.set_counter(keys::CORE_GOVERNOR_CAUSE_STEERING, self.step_downs_steering);
        reg.set_counter(keys::CORE_GOVERNOR_CAUSE_DEADLINE, self.step_downs_deadline);
        // Current rung as a gauge: fleet merges keep the max, so a merged
        // registry reports the worst node's health — what the
        // metastability oracle reads.
        reg.gauge_set(keys::CORE_GOVERNOR_RUNG, self.state.rung() as i64);
        // Time-in-state: one single-sample histogram per state, replaced
        // (not merged) on every export so repeated exports stay idempotent;
        // fleet merges across nodes then yield the per-node distribution.
        for (key, ns) in [
            (keys::CORE_GOVERNOR_HEALTHY_NS, self.ns_in_state[0]),
            (keys::CORE_GOVERNOR_DEGRADED_NS, self.ns_in_state[1]),
            (keys::CORE_GOVERNOR_SURVIVAL_NS, self.ns_in_state[2]),
        ] {
            let mut h = Histogram::new();
            h.record(ns);
            reg.set_hist(key, &h);
        }
    }
}

impl Default for DegradationGovernor {
    fn default() -> Self {
        DegradationGovernor::new(GovernorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stale(secs: u64) -> HealthSignals {
        HealthSignals {
            snapshot_staleness: Some(SimDuration::from_secs(secs)),
            ..HealthSignals::default()
        }
    }

    #[test]
    fn starts_healthy_and_stays_on_good_signals() {
        let mut g = DegradationGovernor::default();
        for _ in 0..100 {
            assert_eq!(g.observe(&HealthSignals::default()), Health::Healthy);
        }
        assert_eq!(g.transitions(), 0);
    }

    #[test]
    fn steps_down_after_patience_and_one_level_at_a_time() {
        let mut g = DegradationGovernor::default();
        // Survival-grade staleness, but the first step is only to Degraded.
        assert_eq!(g.observe(&stale(100)), Health::Healthy); // streak 1
        assert_eq!(g.observe(&stale(100)), Health::Degraded); // streak 2 -> step
        assert_eq!(g.observe(&stale(100)), Health::Degraded); // streak 1
        assert_eq!(g.observe(&stale(100)), Health::Survival); // streak 2 -> step
        assert_eq!(g.step_downs(), 2);
        assert_eq!(g.recoveries(), 0);
    }

    #[test]
    fn recovery_needs_longer_streak() {
        let cfg = GovernorConfig::default();
        let mut g = DegradationGovernor::new(cfg);
        for _ in 0..4 {
            g.observe(&stale(100));
        }
        assert_eq!(g.health(), Health::Survival);
        // up_patience - 1 good observations: no recovery yet.
        for _ in 0..(cfg.up_patience - 1) {
            g.observe(&HealthSignals::default());
        }
        assert_eq!(g.health(), Health::Survival);
        g.observe(&HealthSignals::default());
        assert_eq!(g.health(), Health::Degraded);
        assert_eq!(g.recoveries(), 1);
    }

    #[test]
    fn oscillating_signal_never_moves_the_state() {
        let mut g = DegradationGovernor::default();
        for i in 0..1000 {
            let s = if i % 2 == 0 {
                stale(15) // Degraded-grade
            } else {
                HealthSignals::default() // Healthy-grade
            };
            g.observe(&s);
        }
        assert_eq!(g.health(), Health::Healthy);
        assert_eq!(g.transitions(), 0, "hysteresis failed to damp flapping");
    }

    #[test]
    fn classification_takes_worst_signal() {
        let g = DegradationGovernor::default();
        assert_eq!(g.classify(&HealthSignals::default()), Health::Healthy);
        assert_eq!(g.classify(&stale(15)), Health::Degraded);
        assert_eq!(g.classify(&stale(45)), Health::Survival);
        let low_conf = HealthSignals {
            min_peer_confidence: 0.05,
            ..HealthSignals::default()
        };
        assert_eq!(g.classify(&low_conf), Health::Survival);
        let pressure = HealthSignals {
            steering_pressure: 10,
            ..HealthSignals::default()
        };
        assert_eq!(g.classify(&pressure), Health::Degraded);
        let deadline = HealthSignals {
            deadline_fired: true,
            ..HealthSignals::default()
        };
        assert_eq!(g.classify(&deadline), Health::Degraded);
        // Worst-of composition: Survival staleness + Degraded pressure.
        let both = HealthSignals {
            snapshot_staleness: Some(SimDuration::from_secs(45)),
            steering_pressure: 10,
            ..HealthSignals::default()
        };
        assert_eq!(g.classify(&both), Health::Survival);
    }

    #[test]
    fn health_order_and_rungs() {
        assert!(Health::Healthy < Health::Degraded);
        assert!(Health::Degraded < Health::Survival);
        assert_eq!(Health::Healthy.rung(), 0);
        assert_eq!(Health::Degraded.rung(), 1);
        assert_eq!(Health::Survival.rung(), 2);
        assert_eq!(Health::Survival.worse(), Health::Survival);
        assert_eq!(Health::Healthy.better(), Health::Healthy);
        assert_eq!(Health::Degraded.label(), "degraded");
    }

    #[test]
    fn dominant_cause_is_tracked_and_exported() {
        let mut g = DegradationGovernor::default();
        assert_eq!(g.last_cause(), PressureCause::None);
        assert_eq!(g.last_step_down_cause(), PressureCause::None);
        // Staleness-driven step-down.
        g.observe(&stale(15));
        g.observe(&stale(15));
        assert_eq!(g.health(), Health::Degraded);
        assert_eq!(g.last_cause(), PressureCause::Staleness);
        assert_eq!(g.last_step_down_cause(), PressureCause::Staleness);
        // Confidence-driven step-down to Survival.
        let low_conf = HealthSignals {
            min_peer_confidence: 0.05,
            ..HealthSignals::default()
        };
        g.observe(&low_conf);
        g.observe(&low_conf);
        assert_eq!(g.health(), Health::Survival);
        assert_eq!(g.last_step_down_cause(), PressureCause::Confidence);
        let mut reg = Registry::new();
        g.export_metrics(&mut reg);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_CAUSE_STALENESS), 1);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_CAUSE_CONFIDENCE), 1);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_CAUSE_STEERING), 0);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_CAUSE_DEADLINE), 0);
    }

    #[test]
    fn cause_tie_break_follows_priority_order() {
        let g = DegradationGovernor::default();
        // Both staleness and confidence demand Survival: staleness wins.
        let both = HealthSignals {
            snapshot_staleness: Some(SimDuration::from_secs(45)),
            min_peer_confidence: 0.05,
            ..HealthSignals::default()
        };
        assert_eq!(
            g.classify_with_cause(&both),
            (Health::Survival, PressureCause::Staleness)
        );
        // Confidence demands Survival, staleness only Degraded: the worse
        // signal dominates regardless of priority order.
        let conf_worse = HealthSignals {
            snapshot_staleness: Some(SimDuration::from_secs(15)),
            min_peer_confidence: 0.05,
            ..HealthSignals::default()
        };
        assert_eq!(
            g.classify_with_cause(&conf_worse),
            (Health::Survival, PressureCause::Confidence)
        );
        // Steering and deadline both demand Degraded: steering wins.
        let sd = HealthSignals {
            steering_pressure: 10,
            deadline_fired: true,
            ..HealthSignals::default()
        };
        assert_eq!(
            g.classify_with_cause(&sd),
            (Health::Degraded, PressureCause::Steering)
        );
        assert_eq!(PressureCause::Deadline.label(), "deadline");
    }

    #[test]
    fn load_signal_classifies_and_trips_step_downs() {
        let mut g = DegradationGovernor::default();
        let backlog = |load: u64| HealthSignals {
            load,
            ..HealthSignals::default()
        };
        assert_eq!(g.classify(&backlog(3)), Health::Healthy);
        assert_eq!(g.classify(&backlog(4)), Health::Degraded);
        assert_eq!(g.classify(&backlog(16)), Health::Survival);
        assert_eq!(
            g.classify_with_cause(&backlog(20)),
            (Health::Survival, PressureCause::Load)
        );
        // Confidence outranks load in the tie-break at equal severity.
        let both = HealthSignals {
            min_peer_confidence: 0.05,
            load: 20,
            ..HealthSignals::default()
        };
        assert_eq!(
            g.classify_with_cause(&both),
            (Health::Survival, PressureCause::Confidence)
        );
        g.observe(&backlog(8));
        g.observe(&backlog(8));
        assert_eq!(g.health(), Health::Degraded);
        assert_eq!(g.last_step_down_cause(), PressureCause::Load);
        let mut reg = Registry::new();
        g.export_metrics(&mut reg);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_CAUSE_LOAD), 1);
        assert_eq!(PressureCause::Load.label(), "load");
    }

    #[test]
    fn time_in_state_charges_dwell_to_the_state_in_force() {
        let mut g = DegradationGovernor::default();
        let at = |secs: u64, load: u64| HealthSignals {
            load,
            now: SimTime::from_secs(secs),
            ..HealthSignals::default()
        };
        g.observe(&at(10, 0)); // 0..10 healthy
        g.observe(&at(20, 99)); // 10..20 healthy; down streak 1
        g.observe(&at(30, 99)); // 20..30 healthy; step to Degraded
        g.observe(&at(45, 99)); // 30..45 degraded; down streak 1
        g.observe(&at(50, 99)); // 45..50 degraded; step to Survival
        g.observe(&at(60, 99)); // 50..60 survival
        let ns = g.sim_ns_in_state();
        assert_eq!(ns[0], SimDuration::from_secs(30).as_nanos());
        assert_eq!(ns[1], SimDuration::from_secs(20).as_nanos());
        assert_eq!(ns[2], SimDuration::from_secs(10).as_nanos());
        let mut reg = Registry::new();
        g.export_metrics(&mut reg);
        g.export_metrics(&mut reg); // set_hist keeps this idempotent
        let h = reg.hist(keys::CORE_GOVERNOR_DEGRADED_NS).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(reg.gauge(keys::CORE_GOVERNOR_RUNG), 2);
    }

    #[test]
    fn metrics_export_is_idempotent_snapshot() {
        let mut g = DegradationGovernor::default();
        for _ in 0..4 {
            g.observe(&stale(100));
        }
        let mut reg = Registry::new();
        g.export_metrics(&mut reg);
        g.export_metrics(&mut reg);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_STEP_DOWNS), 2);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_TRANSITIONS), 2);
        assert_eq!(reg.counter(keys::CORE_GOVERNOR_DECISIONS_SURVIVAL), 1);
    }
}
