//! The per-node flight recorder: a bounded ring of spans.

use crate::span::{Span, SpanId, SpanKind};
use std::collections::VecDeque;

/// Default ring capacity, in spans. Bounded so long runs cannot grow memory
/// without limit; eviction is **counted** (never silent) so consumers can
/// tell when a blame chain may have lost its tail.
pub const DEFAULT_CAPACITY: usize = 4096;

/// How many [`SpanKind::Decision`] spans survive main-ring eviction. When a
/// decision would fall off the ring it is *rescued* into a pinned side-ring
/// of this capacity instead of being dropped — protocols that decide early
/// and then settle into periodic timer churn would otherwise evict every
/// decision long before an oracle fires, leaving `blame` nothing to reach.
pub const DECISION_PIN_CAPACITY: usize = 64;

/// A bounded per-node span ring with a pinned decision side-ring.
///
/// Sequence numbers are monotonic for the life of the recorder (they survive
/// crash/restart of the node they describe, because the recorder lives in the
/// simulated world, not in the node), which makes `(node, seq)` a unique key
/// per run.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    node: u32,
    capacity: usize,
    ring: VecDeque<Span>,
    /// Decision spans rescued from main-ring eviction, oldest first. Every
    /// span here is older (in push order) than everything in `ring`.
    pinned: VecDeque<Span>,
    seq: u32,
    pushed: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// New recorder for `node` with [`DEFAULT_CAPACITY`].
    pub fn new(node: u32) -> Self {
        Self::with_capacity(node, DEFAULT_CAPACITY)
    }

    /// New recorder with an explicit ring capacity (min 1).
    pub fn with_capacity(node: u32, capacity: usize) -> Self {
        FlightRecorder {
            node,
            capacity: capacity.max(1),
            ring: VecDeque::with_capacity(capacity.clamp(1, 1024)),
            pinned: VecDeque::new(),
            seq: 0,
            pushed: 0,
            evicted: 0,
        }
    }

    /// The node this recorder belongs to.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Allocate the next deterministic span id at simulated time `at_ns`.
    pub fn next_id(&mut self, at_ns: u64) -> SpanId {
        self.seq += 1;
        SpanId {
            at_ns,
            node: self.node,
            seq: self.seq,
        }
    }

    /// Push a fully-built span, evicting (and counting) the oldest if full.
    /// An evicted [`SpanKind::Decision`] span is rescued into the pinned
    /// side-ring (bounded by [`DECISION_PIN_CAPACITY`]); `evicted()` only
    /// counts spans that actually left the recorder.
    pub fn push(&mut self, span: Span) {
        if self.ring.len() == self.capacity {
            let old = self.ring.pop_front().expect("ring is full");
            if old.kind == SpanKind::Decision {
                if self.pinned.len() == DECISION_PIN_CAPACITY {
                    self.pinned.pop_front();
                    self.evicted += 1;
                }
                self.pinned.push_back(old);
            } else {
                self.evicted += 1;
            }
        }
        self.ring.push_back(span);
        self.pushed += 1;
    }

    /// Convenience: allocate an id and record a costless span in one step.
    /// Returns the new span's id for use as a causal parent downstream.
    pub fn record(
        &mut self,
        at_ns: u64,
        kind: SpanKind,
        name: impl Into<String>,
        parents: Vec<SpanId>,
    ) -> SpanId {
        let id = self.next_id(at_ns);
        self.push(Span::new(id, kind, name, parents));
        id
    }

    /// The retained window — pinned decisions first (they are older in push
    /// order than everything in the main ring), then the ring, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.pinned.iter().chain(self.ring.iter())
    }

    /// The last `k` retained spans, oldest first.
    pub fn tail(&self, k: usize) -> impl Iterator<Item = &Span> {
        let skip = self.len().saturating_sub(k);
        self.spans().skip(skip)
    }

    /// Number of spans currently retained (main ring + pinned decisions).
    pub fn len(&self) -> usize {
        self.pinned.len() + self.ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty() && self.ring.is_empty()
    }

    /// Total spans ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Spans evicted from the ring to respect the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_counted_and_bounded() {
        let mut rec = FlightRecorder::with_capacity(3, 4);
        for i in 0..10u64 {
            rec.record(i, SpanKind::Send, format!("m{i}"), vec![]);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.pushed(), 10);
        assert_eq!(rec.evicted(), 6);
        // Oldest retained is the 7th push (seq 7).
        assert_eq!(rec.spans().next().unwrap().id.seq, 7);
    }

    #[test]
    fn seq_is_monotonic_and_one_based() {
        let mut rec = FlightRecorder::new(1);
        let a = rec.next_id(10);
        let b = rec.next_id(10);
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
        assert_ne!(a.compact(), 0);
    }

    #[test]
    fn evicted_decisions_are_pinned_not_dropped() {
        let mut rec = FlightRecorder::with_capacity(5, 4);
        rec.record(0, SpanKind::Decision, "d1", vec![]);
        for i in 1..10u64 {
            rec.record(i, SpanKind::Timer, "t", vec![]);
        }
        // The decision fell off the 4-slot ring but survives, pinned.
        assert_eq!(rec.len(), 5);
        let kinds: Vec<SpanKind> = rec.spans().map(|s| s.kind).collect();
        assert_eq!(kinds[0], SpanKind::Decision);
        assert!(kinds[1..].iter().all(|k| *k == SpanKind::Timer));
        // Only the 5 dropped timers count as evicted.
        assert_eq!(rec.evicted(), 5);
        assert_eq!(rec.pushed(), 10);

        // The pinned ring itself is bounded: overflow there counts.
        let mut rec = FlightRecorder::with_capacity(6, 1);
        for i in 0..(DECISION_PIN_CAPACITY as u64 + 3) {
            rec.record(i, SpanKind::Decision, "d", vec![]);
        }
        assert_eq!(rec.len(), DECISION_PIN_CAPACITY + 1);
        assert_eq!(rec.evicted(), 2);
    }

    #[test]
    fn tail_returns_last_k_oldest_first() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record(i, SpanKind::Timer, "t", vec![]);
        }
        let tail: Vec<u32> = rec.tail(2).map(|s| s.id.seq).collect();
        assert_eq!(tail, vec![4, 5]);
        let all: Vec<u32> = rec.tail(99).map(|s| s.id.seq).collect();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }
}
