//! Span identity and payload types.

use std::fmt;
use std::str::FromStr;

/// Deterministic identity of a span.
///
/// `at_ns` is *simulated* time (nanoseconds since sim start), `node` the
/// recording node's id (`u32::MAX` is reserved for harness-synthesised spans
/// such as oracle violations), and `seq` a per-node monotonic counter
/// starting at 1. Because the simulator's event order is a pure function of
/// `(scenario, seed, plan)`, so is every `SpanId` — two replays of the same
/// seed assign identical ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId {
    /// Simulated time the span was opened, in nanoseconds.
    pub at_ns: u64,
    /// Recording node id. `u32::MAX` = synthesised by the harness.
    pub node: u32,
    /// Per-node monotonic sequence number (1-based; 0 never occurs).
    pub seq: u32,
}

impl SpanId {
    /// Pack `(node, seq)` into a single `u64` for embedding in foreign event
    /// types (the simnet flat trace carries this). `0` means "no cause":
    /// `seq` is 1-based so a real id never packs to zero.
    pub fn compact(&self) -> u64 {
        ((self.node as u64) << 32) | self.seq as u64
    }

    /// Whether `compact` refers to this id (time is not part of the packed
    /// form; `(node, seq)` is unique per run).
    pub fn matches_compact(&self, compact: u64) -> bool {
        self.compact() == compact
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.n{}.s{}", self.at_ns, self.node, self.seq)
    }
}

impl FromStr for SpanId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("invalid span id `{s}` (expected tNNN.nNNN.sNNN)");
        let rest = s.strip_prefix('t').ok_or_else(err)?;
        let (at, rest) = rest.split_once(".n").ok_or_else(err)?;
        let (node, seq) = rest.split_once(".s").ok_or_else(err)?;
        Ok(SpanId {
            at_ns: at.parse().map_err(|_| err())?,
            node: node.parse().map_err(|_| err())?,
            seq: seq.parse().map_err(|_| err())?,
        })
    }
}

/// What kind of event a span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A runtime choice resolution (the paper's exposed-choice mechanism).
    Decision,
    /// A message handed to the transport.
    Send,
    /// A message delivered to its destination actor.
    Deliver,
    /// A message dropped (partition, loss, dead destination, broken conn).
    Drop,
    /// A timer firing.
    Timer,
    /// Node start.
    Start,
    /// Node crash.
    Crash,
    /// Node restart.
    Restart,
    /// A connection break observed by an endpoint.
    ConnBreak,
    /// An execution-steering filter being installed.
    SteeringInstall,
    /// An execution-steering filter matching and acting on a message.
    SteeringFire,
    /// An oracle violation (synthesised by the harness at end of run).
    Violation,
}

impl SpanKind {
    /// Stable lowercase label used in exports and the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Decision => "decision",
            SpanKind::Send => "send",
            SpanKind::Deliver => "deliver",
            SpanKind::Drop => "drop",
            SpanKind::Timer => "timer",
            SpanKind::Start => "start",
            SpanKind::Crash => "crash",
            SpanKind::Restart => "restart",
            SpanKind::ConnBreak => "conn_break",
            SpanKind::SteeringInstall => "steering_install",
            SpanKind::SteeringFire => "steering_fire",
            SpanKind::Violation => "violation",
        }
    }

    /// Inverse of [`SpanKind::label`].
    pub fn parse(label: &str) -> Option<SpanKind> {
        Some(match label {
            "decision" => SpanKind::Decision,
            "send" => SpanKind::Send,
            "deliver" => SpanKind::Deliver,
            "drop" => SpanKind::Drop,
            "timer" => SpanKind::Timer,
            "start" => SpanKind::Start,
            "crash" => SpanKind::Crash,
            "restart" => SpanKind::Restart,
            "conn_break" => SpanKind::ConnBreak,
            "steering_install" => SpanKind::SteeringInstall,
            "steering_fire" => SpanKind::SteeringFire,
            "violation" => SpanKind::Violation,
            _ => return None,
        })
    }
}

/// One causally-linked provenance record.
///
/// Every field except `wall_ns` is deterministic for a given
/// `(scenario, seed, plan)`. `wall_ns` follows the dual-clock discipline:
/// it is fingerprint-exempt and zeroed by [`Span::masked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Deterministic identity.
    pub id: SpanId,
    /// Event kind.
    pub kind: SpanKind,
    /// Short human-readable name (choice id, truncated message debug, ...).
    pub name: String,
    /// Causal parents. Empty = causal root (external stimulus).
    pub parents: Vec<SpanId>,
    /// Deterministic cost in simulated microseconds (states explored for
    /// decisions, 0 for plain events).
    pub sim_cost_us: u64,
    /// Wall-clock cost in nanoseconds. **Nondeterministic**; masked exports
    /// zero this field.
    pub wall_ns: u64,
    /// Open key/value detail (option tables, governor level, cache stats...).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Build a span with no cost and no attrs.
    pub fn new(id: SpanId, kind: SpanKind, name: impl Into<String>, parents: Vec<SpanId>) -> Self {
        Span {
            id,
            kind,
            name: name.into(),
            parents,
            sim_cost_us: 0,
            wall_ns: 0,
            attrs: Vec::new(),
        }
    }

    /// Append an attribute (builder-style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A copy with the nondeterministic wall-clock field blanked. Masked
    /// copies of the same seed's spans are byte-identical across reruns.
    pub fn masked(&self) -> Span {
        let mut s = self.clone();
        s.wall_ns = 0;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_display_parse_round_trip() {
        let id = SpanId {
            at_ns: 123_456_789,
            node: 7,
            seq: 42,
        };
        let text = id.to_string();
        assert_eq!(text, "t123456789.n7.s42");
        let back: SpanId = text.parse().unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn span_id_parse_rejects_garbage() {
        assert!("".parse::<SpanId>().is_err());
        assert!("t1.n2".parse::<SpanId>().is_err());
        assert!("x1.n2.s3".parse::<SpanId>().is_err());
        assert!("t1.nx.s3".parse::<SpanId>().is_err());
    }

    #[test]
    fn compact_never_zero_for_real_ids() {
        let id = SpanId {
            at_ns: 0,
            node: 0,
            seq: 1,
        };
        assert_ne!(id.compact(), 0);
        assert!(id.matches_compact(id.compact()));
    }

    #[test]
    fn kind_label_round_trip() {
        let kinds = [
            SpanKind::Decision,
            SpanKind::Send,
            SpanKind::Deliver,
            SpanKind::Drop,
            SpanKind::Timer,
            SpanKind::Start,
            SpanKind::Crash,
            SpanKind::Restart,
            SpanKind::ConnBreak,
            SpanKind::SteeringInstall,
            SpanKind::SteeringFire,
            SpanKind::Violation,
        ];
        for k in kinds {
            assert_eq!(SpanKind::parse(k.label()), Some(k));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn masked_blanks_only_wall() {
        let mut s = Span::new(
            SpanId {
                at_ns: 5,
                node: 1,
                seq: 1,
            },
            SpanKind::Decision,
            "pick",
            vec![],
        );
        s.sim_cost_us = 17;
        s.wall_ns = 999;
        let m = s.masked();
        assert_eq!(m.wall_ns, 0);
        assert_eq!(m.sim_cost_us, 17);
        assert_eq!(m.id, s.id);
    }
}
