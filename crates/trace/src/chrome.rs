//! Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//!
//! Each span becomes a complete ("X") event: `ts` is simulated time in
//! microseconds, `dur` the span's sim-cost (min 1 µs so zero-cost events stay
//! visible), `pid` 0 and `tid` the node id — so Perfetto renders one track
//! per node. Each parent edge becomes a flow `s`/`f` pair so causal arrows
//! survive across node tracks. Emission order is deterministic (input order,
//! then per-span parent order), and `wall_ns` is emitted as an `args` field
//! named `wall_ns` only when unmasked.

use crate::span::{Span, SpanId};

/// Minimal JSON string escaper (dependency-free, mirrors the harness JSON
/// writer's escaping rules).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable id for a flow arrow between two spans (FNV-1a over both compact
/// ids — deterministic and collision-unlikely within one trace).
fn flow_id(parent: SpanId, child: SpanId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [parent.compact(), child.compact(), parent.at_ns, child.at_ns] {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Render spans as a Chrome trace-event JSON document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
///
/// With `masked = true` the nondeterministic `wall_ns` arg is omitted, so the
/// output is byte-identical across reruns of the same seed.
pub fn chrome_trace_json(spans: &[Span], masked: bool) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2);
    for span in spans {
        let ts = span.id.at_ns / 1000; // sim ns -> us
        let dur = span.sim_cost_us.max(1);
        let mut args = String::new();
        args.push_str(&format!("\"id\":\"{}\"", span.id));
        if !masked && span.wall_ns != 0 {
            args.push_str(&format!(",\"wall_ns\":\"{}\"", span.wall_ns));
        }
        for (k, v) in &span.attrs {
            args.push_str(&format!(",\"{}\":\"{}\"", escape(k), escape(v)));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
            escape(&span.name),
            span.kind.label(),
            ts,
            dur,
            span.id.node,
            args
        ));
        for parent in &span.parents {
            let fid = flow_id(*parent, span.id);
            let pts = parent.at_ns / 1000;
            events.push(format!(
                "{{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":{},\"pid\":0,\"tid\":{},\"id\":{}}}",
                pts, parent.node, fid
            ));
            events.push(format!(
                "{{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":{},\"pid\":0,\"tid\":{},\"id\":{}}}",
                ts, span.id.node, fid
            ));
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanKind};

    fn sample() -> Vec<Span> {
        let a = SpanId {
            at_ns: 1_000,
            node: 0,
            seq: 1,
        };
        let b = SpanId {
            at_ns: 2_000,
            node: 1,
            seq: 1,
        };
        let mut s1 = Span::new(a, SpanKind::Send, "msg \"x\"\n", vec![]);
        s1.wall_ns = 555;
        let mut s2 = Span::new(b, SpanKind::Deliver, "msg", vec![a]);
        s2.sim_cost_us = 7;
        vec![s1, s2]
    }

    #[test]
    fn emits_complete_events_and_flow_pairs() {
        let out = chrome_trace_json(&sample(), true);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"s\""));
        assert!(out.contains("\"ph\":\"f\""));
        assert!(out.contains("\"tid\":1"));
        // name with quote and newline is escaped
        assert!(out.contains("msg \\\"x\\\"\\n"));
        // masked: no wall_ns anywhere
        assert!(!out.contains("wall_ns"));
    }

    #[test]
    fn unmasked_includes_wall_and_masked_is_deterministic() {
        let spans = sample();
        let unmasked = chrome_trace_json(&spans, false);
        assert!(unmasked.contains("\"wall_ns\":\"555\""));
        let m1 = chrome_trace_json(&spans, true);
        let m2 = chrome_trace_json(&spans, true);
        assert_eq!(m1, m2);
    }

    #[test]
    fn flow_ids_are_stable() {
        let a = SpanId {
            at_ns: 1,
            node: 0,
            seq: 1,
        };
        let b = SpanId {
            at_ns: 2,
            node: 1,
            seq: 1,
        };
        assert_eq!(flow_id(a, b), flow_id(a, b));
        assert_ne!(flow_id(a, b), flow_id(b, a));
    }
}
