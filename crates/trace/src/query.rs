//! Queries over a set of spans: `explain`, `blame`, `slowest`, acyclicity.
//!
//! All queries operate on a flat slice of spans (typically the merged
//! flight-recorder tails embedded in a harness artifact) and are pure
//! functions — same spans in, same answer out.

use crate::span::{Span, SpanId, SpanKind};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// An index from span id to span, for parent resolution.
pub struct SpanIndex<'a> {
    by_id: HashMap<SpanId, &'a Span>,
}

impl<'a> SpanIndex<'a> {
    /// Build an index over `spans`.
    pub fn new(spans: &'a [Span]) -> Self {
        let mut by_id = HashMap::with_capacity(spans.len());
        for s in spans {
            by_id.insert(s.id, s);
        }
        SpanIndex { by_id }
    }

    /// Resolve an id to its span, if retained.
    pub fn get(&self, id: SpanId) -> Option<&'a Span> {
        self.by_id.get(&id).copied()
    }

    /// Find the first span (in slice order) of a given kind.
    pub fn first_of_kind(spans: &'a [Span], kind: SpanKind) -> Option<&'a Span> {
        spans.iter().find(|s| s.kind == kind)
    }

    /// Find the last span (in slice order) of a given kind.
    pub fn last_of_kind(spans: &'a [Span], kind: SpanKind) -> Option<&'a Span> {
        spans.iter().rev().find(|s| s.kind == kind)
    }
}

/// Result of a [`blame`] walk: the causal chain leading to a target span.
#[derive(Debug, Clone)]
pub struct BlameChain {
    /// Spans on the chain, deterministic visit order (breadth-first from the
    /// target, ties broken by span id). Includes the target itself.
    pub chain: Vec<Span>,
    /// Parent ids referenced by the chain that were not resolvable (evicted
    /// from the ring or outside the collected tail).
    pub unresolved: Vec<SpanId>,
    /// Ids of `Decision` spans reached by the walk, in visit order.
    pub decisions: Vec<SpanId>,
    /// Distinct node ids the chain crosses (excluding the harness-synthetic
    /// node `u32::MAX`).
    pub nodes: Vec<u32>,
}

/// Walk parent edges backwards from `from`, collecting the full causal
/// closure. Cycle-safe (visited set); missing parents are reported in
/// `unresolved` rather than aborting the walk.
pub fn blame(spans: &[Span], from: SpanId) -> Option<BlameChain> {
    let index = SpanIndex::new(spans);
    let start = index.get(from)?;
    let mut visited: BTreeSet<SpanId> = BTreeSet::new();
    let mut unresolved: BTreeSet<SpanId> = BTreeSet::new();
    let mut chain: Vec<Span> = Vec::new();
    let mut decisions: Vec<SpanId> = Vec::new();
    let mut nodes: BTreeSet<u32> = BTreeSet::new();
    let mut queue: VecDeque<&Span> = VecDeque::new();

    visited.insert(start.id);
    queue.push_back(start);
    while let Some(span) = queue.pop_front() {
        chain.push(span.clone());
        if span.kind == SpanKind::Decision {
            decisions.push(span.id);
        }
        if span.id.node != u32::MAX {
            nodes.insert(span.id.node);
        }
        // Deterministic expansion order: parents sorted by id.
        let mut parents = span.parents.clone();
        parents.sort();
        for p in parents {
            if visited.contains(&p) {
                continue;
            }
            visited.insert(p);
            match index.get(p) {
                Some(ps) => queue.push_back(ps),
                None => {
                    unresolved.insert(p);
                }
            }
        }
    }

    Some(BlameChain {
        chain,
        unresolved: unresolved.into_iter().collect(),
        decisions,
        nodes: nodes.into_iter().collect(),
    })
}

/// Render a human-readable explanation of a `Decision` span: the option
/// table (key, objective, violations, states), the winner, and the
/// resolver/governor context that shaped the pick. Returns `None` if `id`
/// is not a retained `Decision` span.
pub fn explain(spans: &[Span], id: SpanId) -> Option<String> {
    let index = SpanIndex::new(spans);
    let span = index.get(id)?;
    if span.kind != SpanKind::Decision {
        return None;
    }
    let mut out = String::new();
    out.push_str(&format!("decision {} `{}`\n", span.id, span.name));
    for key in [
        "choice",
        "context",
        "workload",
        "resolver",
        "governor.level",
        "governor.cause",
        "ladder.rung",
        "ladder.rungs_skipped",
        "policy",
        "verdict",
        "evalcache.hits",
        "evalcache.misses",
    ] {
        if let Some(v) = span.attr(key) {
            out.push_str(&format!("  {key:<22} {v}\n"));
        }
    }
    out.push_str(&format!("  {:<22} {} sim-us\n", "cost", span.sim_cost_us));

    // Option table: attrs opt{i}.key / opt{i}.objective / opt{i}.violations /
    // opt{i}.states, chosen index in attr "chosen".
    let chosen: Option<usize> = span.attr("chosen").and_then(|v| v.parse().ok());
    let n: usize = span
        .attr("options")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if n > 0 {
        out.push_str("  options:\n");
        out.push_str(&format!(
            "    {:>3} {:<24} {:>12} {:>10} {:>8}\n",
            "#", "key", "objective", "violations", "states"
        ));
        for i in 0..n {
            let key = span.attr(&format!("opt{i}.key")).unwrap_or("?");
            let obj = span.attr(&format!("opt{i}.objective")).unwrap_or("-");
            let vio = span.attr(&format!("opt{i}.violations")).unwrap_or("-");
            let st = span.attr(&format!("opt{i}.states")).unwrap_or("-");
            let marker = if chosen == Some(i) { "*" } else { " " };
            out.push_str(&format!(
                "   {marker}{i:>3} {key:<24} {obj:>12} {vio:>10} {st:>8}\n"
            ));
        }
        if let Some(c) = chosen {
            let why = match span.attr("why") {
                Some(w) => w.to_string(),
                None => "lowest violations, then best objective".to_string(),
            };
            out.push_str(&format!("  winner: option {c} ({why})\n"));
        }
    }
    if !span.parents.is_empty() {
        let parents: Vec<String> = span.parents.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!("  caused by: {}\n", parents.join(", ")));
    }
    Some(out)
}

/// Top-`k` `Decision` spans by `sim_cost_us`, descending (ties broken by
/// span id for determinism).
pub fn slowest(spans: &[Span], k: usize) -> Vec<&Span> {
    let mut decisions: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Decision)
        .collect();
    decisions.sort_by(|a, b| b.sim_cost_us.cmp(&a.sim_cost_us).then(a.id.cmp(&b.id)));
    decisions.truncate(k);
    decisions
}

/// Check that parent edges form a DAG. Parents missing from `spans` are
/// treated as external roots (not an error — rings evict). Returns the first
/// cycle found as a vector of ids, or `None` if acyclic.
pub fn find_cycle(spans: &[Span]) -> Option<Vec<SpanId>> {
    let index = SpanIndex::new(spans);
    // Colors: 0 = unvisited, 1 = on stack, 2 = done.
    let mut color: HashMap<SpanId, u8> = HashMap::with_capacity(spans.len());
    for s in spans {
        if color.get(&s.id).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Iterative DFS with explicit stack to avoid recursion depth limits.
        let mut stack: Vec<(SpanId, usize)> = vec![(s.id, 0)];
        let mut path: Vec<SpanId> = vec![s.id];
        color.insert(s.id, 1);
        while let Some((id, pi)) = stack.last().copied() {
            let span = index.get(id).expect("stacked ids are resolvable");
            if pi < span.parents.len() {
                stack.last_mut().unwrap().1 += 1;
                let p = span.parents[pi];
                match index.get(p) {
                    None => continue, // evicted/external parent: fine
                    Some(_) => match color.get(&p).copied().unwrap_or(0) {
                        0 => {
                            color.insert(p, 1);
                            stack.push((p, 0));
                            path.push(p);
                        }
                        1 => {
                            // Cycle: slice of path from p to the end.
                            let start = path.iter().position(|&x| x == p).unwrap_or(0);
                            return Some(path[start..].to_vec());
                        }
                        _ => continue,
                    },
                }
            } else {
                color.insert(id, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// True when parent edges form a DAG (see [`find_cycle`]).
pub fn is_acyclic(spans: &[Span]) -> bool {
    find_cycle(spans).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn id(node: u32, seq: u32) -> SpanId {
        SpanId {
            at_ns: (node as u64) * 100 + seq as u64,
            node,
            seq,
        }
    }

    fn span(node: u32, seq: u32, kind: SpanKind, parents: Vec<SpanId>) -> Span {
        Span::new(id(node, seq), kind, format!("n{node}s{seq}"), parents)
    }

    #[test]
    fn blame_walks_cross_node_chain() {
        // node0: decision(1) -> send(2); node1: deliver(1, parent send) ->
        // violation-ish fire(2, parent deliver).
        let spans = vec![
            span(0, 1, SpanKind::Decision, vec![]),
            span(0, 2, SpanKind::Send, vec![id(0, 1)]),
            span(1, 1, SpanKind::Deliver, vec![id(0, 2)]),
            span(1, 2, SpanKind::SteeringFire, vec![id(1, 1)]),
        ];
        let chain = blame(&spans, id(1, 2)).unwrap();
        assert_eq!(chain.chain.len(), 4);
        assert_eq!(chain.decisions, vec![id(0, 1)]);
        assert_eq!(chain.nodes, vec![0, 1]);
        assert!(chain.unresolved.is_empty());
    }

    #[test]
    fn blame_reports_unresolved_parents_and_survives_cycles() {
        // b's parent a was "evicted" (absent); c and d form a cycle.
        let spans = vec![
            span(0, 2, SpanKind::Deliver, vec![id(0, 1)]), // parent missing
            Span::new(id(0, 3), SpanKind::Timer, "c", vec![id(0, 4)]),
            Span::new(id(0, 4), SpanKind::Timer, "d", vec![id(0, 3), id(0, 2)]),
        ];
        let chain = blame(&spans, id(0, 4)).unwrap();
        assert_eq!(chain.unresolved, vec![id(0, 1)]);
        assert_eq!(chain.chain.len(), 3); // visits each once despite cycle
    }

    #[test]
    fn blame_of_unknown_target_is_none() {
        assert!(blame(&[], id(0, 1)).is_none());
    }

    #[test]
    fn explain_renders_option_table_with_winner() {
        let mut d = span(3, 1, SpanKind::Decision, vec![]);
        d.sim_cost_us = 40;
        d.attrs = vec![
            ("choice".into(), "parent-pick".into()),
            ("resolver".into(), "lookahead".into()),
            ("options".into(), "2".into()),
            ("chosen".into(), "1".into()),
            ("opt0.key".into(), "5".into()),
            ("opt0.objective".into(), "3.0".into()),
            ("opt0.violations".into(), "1".into()),
            ("opt0.states".into(), "20".into()),
            ("opt1.key".into(), "9".into()),
            ("opt1.objective".into(), "1.0".into()),
            ("opt1.violations".into(), "0".into()),
            ("opt1.states".into(), "20".into()),
        ];
        let spans = vec![d];
        let text = explain(&spans, id(3, 1)).unwrap();
        assert!(text.contains("parent-pick"));
        assert!(text.contains("lookahead"));
        assert!(text.contains("*  1"));
        assert!(text.contains("winner: option 1"));
        // Non-decision or unknown ids render nothing.
        assert!(explain(&spans, id(3, 2)).is_none());
    }

    #[test]
    fn slowest_orders_by_cost_then_id() {
        let mut a = span(0, 1, SpanKind::Decision, vec![]);
        a.sim_cost_us = 10;
        let mut b = span(0, 2, SpanKind::Decision, vec![]);
        b.sim_cost_us = 30;
        let mut c = span(1, 1, SpanKind::Decision, vec![]);
        c.sim_cost_us = 30;
        let other = span(1, 2, SpanKind::Send, vec![]);
        let spans = vec![a, b, c, other];
        let top: Vec<SpanId> = slowest(&spans, 2).iter().map(|s| s.id).collect();
        assert_eq!(top, vec![id(0, 2), id(1, 1)]);
    }

    #[test]
    fn acyclicity_detects_cycles_and_accepts_dags() {
        let dag = vec![
            span(0, 1, SpanKind::Send, vec![]),
            span(0, 2, SpanKind::Deliver, vec![id(0, 1)]),
            span(0, 3, SpanKind::Timer, vec![id(0, 1), id(0, 2)]),
        ];
        assert!(is_acyclic(&dag));
        let cyc = vec![
            Span::new(id(0, 1), SpanKind::Timer, "a", vec![id(0, 2)]),
            Span::new(id(0, 2), SpanKind::Timer, "b", vec![id(0, 1)]),
        ];
        assert!(!is_acyclic(&cyc));
        assert!(find_cycle(&cyc).unwrap().len() >= 2);
        // Missing parents are treated as external roots, not cycles.
        let dangling = vec![span(0, 2, SpanKind::Deliver, vec![id(0, 1)])];
        assert!(is_acyclic(&dangling));
    }
}
