//! # cb-trace — decision-provenance tracing
//!
//! A dependency-free tracing layer for the CrystalBall runtime. The unit of
//! record is a [`Span`]: a causally-linked event with a deterministic identity
//! derived from *simulated* time, the node that recorded it, and a per-node
//! monotonic sequence number. Parent edges capture the causal structure the
//! paper's predictive runtime needs to be auditable after the fact:
//!
//! * message `Send` → `Deliver` (cross-node),
//! * `Timer` set → `Timer` fire,
//! * `Decision` → emitted effects (sends, timers, conn breaks),
//! * `SteeringInstall` → `SteeringFire`.
//!
//! Spans are recorded into a bounded per-node [`FlightRecorder`] ring; a
//! pinned side-ring rescues the last [`DECISION_PIN_CAPACITY`] `Decision`
//! spans from eviction so blame chains keep reaching decisions even after
//! long stretches of timer churn. The ring follows the PR-2 masked/dual-clock
//! discipline: every field of a span
//! is a deterministic function of `(scenario, seed, plan)` **except**
//! `wall_ns`, which carries fingerprint-exempt wall-clock latency and is
//! blanked by [`Span::masked`] so masked exports stay byte-identical across
//! reruns of the same seed.
//!
//! The [`query`] module answers the three questions the `trace` CLI exposes:
//! `explain` (why did this decision pick what it picked), `blame` (walk the
//! causal chain backwards from a violation or steering fire to the
//! originating decisions, across nodes) and `slowest` (top-k decisions by
//! sim-cost). The [`chrome`] module exports Chrome trace-event JSON loadable
//! in Perfetto.

pub mod chrome;
pub mod query;
pub mod recorder;
pub mod span;

pub use chrome::chrome_trace_json;
pub use query::{blame, explain, is_acyclic, slowest, BlameChain, SpanIndex};
pub use recorder::{FlightRecorder, DECISION_PIN_CAPACITY, DEFAULT_CAPACITY};
pub use span::{Span, SpanId, SpanKind};
