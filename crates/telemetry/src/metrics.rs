//! Counters, gauges, and log-bucketed latency histograms.
//!
//! Protocols update these from the hot path, so everything here is
//! allocation-free after construction. The histogram uses logarithmically
//! spaced buckets (HdrHistogram-style, base-2 with 8 sub-buckets) which
//! keeps quantile error under ~12% across nine orders of magnitude —
//! plenty for comparing strategies.
//!
//! (These types started life in `cb-simnet::metrics` and moved here when
//! the whole workspace grew a shared telemetry registry; `cb-simnet`
//! re-exports them for compatibility.)

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A gauge: a value that can move both ways (used for peaks and levels).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge(i64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&mut self, v: i64) {
        self.0 = v;
    }

    /// Raises the gauge to `v` if it is larger (peak tracking).
    pub fn raise_to(&mut self, v: i64) {
        self.0 = self.0.max(v);
    }

    /// Current value.
    pub fn get(self) -> i64 {
        self.0
    }
}

/// A histogram of `u64` samples with log-spaced buckets.
///
/// # Examples
///
/// ```
/// use cb_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// bucket index -> count; BTreeMap keeps iteration ordered by magnitude.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Number of linear sub-buckets per power of two.
const SUB_BUCKETS: u64 = 8;

fn bucket_of(v: u64) -> u32 {
    if v < SUB_BUCKETS {
        return v as u32;
    }
    let exp = 63 - v.leading_zeros(); // floor(log2 v), >= 3 here
    let sub = (v >> (exp - 3)) as u32 & 0x7; // the 3 bits after the leading 1
    8 + (exp - 3) * SUB_BUCKETS as u32 + sub
}

fn bucket_low(b: u32) -> u64 {
    if (b as u64) < SUB_BUCKETS {
        return b as u64;
    }
    let exp = (b - 8) / SUB_BUCKETS as u32 + 3;
    let sub = ((b - 8) % SUB_BUCKETS as u32) as u64;
    (1u64 << exp) | (sub << (exp - 3))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    ///
    /// Returns the lower bound of the bucket containing the `q`-th sample,
    /// clamped to the exact observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0;
        for (&b, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_low(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the populated log buckets as `(bucket index, count)` pairs,
    /// in ascending bucket order. [`Histogram::bucket_lower_bound`] maps an
    /// index back to the smallest value it covers — together they expose
    /// the raw distribution for exports and cross-run divergence checks.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// The smallest value that lands in bucket `b` (inverse of the
    /// internal value→bucket mapping, exposed for rendering bucket edges).
    pub fn bucket_lower_bound(b: u32) -> u64 {
        bucket_low(b)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sets_and_peaks() {
        let mut g = Gauge::default();
        g.set(5);
        g.raise_to(3);
        assert_eq!(g.get(), 5);
        g.raise_to(9);
        assert_eq!(g.get(), 9);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_tight() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            last = b;
            assert!(
                bucket_low(b) <= v,
                "bucket_low({b})={} > {v}",
                bucket_low(b)
            );
        }
        // Relative error of the bucket lower bound is bounded.
        for v in [100u64, 1_000, 50_000, 1_000_000, u32::MAX as u64] {
            let lo = bucket_low(bucket_of(v));
            assert!(
                (v - lo) as f64 / v as f64 <= 0.13,
                "error too big at {v}: lo={lo}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((450..=550).contains(&p50), "p50={p50}");
        assert!((850..=960).contains(&p90), "p90={p90}");
        assert!(h.quantile(0.0) == 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn bucket_iteration_matches_recorded_samples() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 700, 90_000] {
            h.record(v);
        }
        let buckets: Vec<(u32, u64)> = h.buckets().collect();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 4);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "{buckets:?}");
        for (b, _) in &buckets {
            assert_eq!(Histogram::bucket_lower_bound(*b), bucket_low(*b));
        }
        // The two equal samples share a bucket.
        assert_eq!(buckets[0], (bucket_of(3), 2));
    }

    #[test]
    fn display_is_stable() {
        let mut h = Histogram::new();
        h.record(7);
        let text = format!("{h}");
        assert!(text.contains("n=1"), "display: {text}");
    }
}
