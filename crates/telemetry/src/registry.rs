//! The metrics registry: named counters, gauges, and histograms with
//! labeled scopes and dual-clock latency accounting.
//!
//! A [`Registry`] is a plain value — no globals, no locks. Every component
//! that wants to be observable owns (or borrows) one, and aggregation is
//! explicit via [`Registry::merge`]: per-node runtime registries merge into
//! a per-run registry, per-run registries merge into a per-campaign one.
//!
//! **Allocation discipline.** Metric names are `&str` keys into sorted
//! maps. The first touch of a name allocates its key; every later update
//! is an allocation-free `O(log n)` lookup. Hot paths should
//! [`Registry::register_counter`] / [`Registry::register_hist`] their
//! names up front (the standard schema in [`crate::keys`] does this for
//! the whole workspace) so steady-state updates never allocate.
//!
//! **Dual clocks.** Latency is accounted on two clocks at once:
//!
//! * a **deterministic** clock in *sim-cost microseconds* — a modeled cost
//!   that is a pure function of the work done (e.g. 1 µs per state a
//!   predictive resolver explored), so it is byte-identical across
//!   same-seed runs;
//! * the **wall clock** in nanoseconds, measured with a [`Stopwatch`] —
//!   real hardware cost, inherently nondeterministic.
//!
//! Wall-clock metrics are *fingerprint-exempt*: any metric whose name
//! contains the [`WALL_MARKER`] substring (`"wall"`) is cleared by
//! [`Registry::masked`], which determinism checks apply before comparing
//! two same-seed runs' exported telemetry.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;

/// Substring marking a metric as wall-clock (nondeterministic, exempt from
/// determinism fingerprinting). Convention: suffix names with `_wall_ns`
/// (histograms) or `_wall` (counters/gauges).
pub const WALL_MARKER: &str = "wall";

/// True when `name` denotes a wall-clock (fingerprint-exempt) metric.
pub fn is_wall_key(name: &str) -> bool {
    name.contains(WALL_MARKER)
}

/// A registry of named counters, gauges, and histograms.
///
/// # Examples
///
/// ```
/// use cb_telemetry::{Registry, Stopwatch};
///
/// let mut reg = Registry::new();
/// reg.register_hist("core.decision_latency_sim_us");
/// reg.register_hist("core.decision_latency_wall_ns");
///
/// let sw = Stopwatch::start();
/// let states_explored = 12u64; // ... do the expensive decision ...
/// reg.record("core.decision_latency_sim_us", states_explored);
/// reg.record("core.decision_latency_wall_ns", sw.elapsed_ns());
/// reg.inc("core.decisions_total");
///
/// assert_eq!(reg.counter("core.decisions_total"), 1);
/// assert_eq!(reg.hist("core.decision_latency_sim_us").unwrap().max(), 12);
/// // Masking clears only the wall-clock side.
/// let masked = reg.masked();
/// assert_eq!(masked.hist("core.decision_latency_wall_ns").unwrap().count(), 0);
/// assert_eq!(masked.hist("core.decision_latency_sim_us").unwrap().count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// True when nothing has been registered or recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Pre-creates a counter at 0 (idempotent). Registration up front keeps
    /// later updates allocation-free and makes the exported key set stable
    /// even for components that never fire.
    pub fn register_counter(&mut self, name: &str) {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), Counter::default());
        }
    }

    /// Pre-creates a gauge at 0 (idempotent).
    pub fn register_gauge(&mut self, name: &str) {
        if !self.gauges.contains_key(name) {
            self.gauges.insert(name.to_string(), Gauge::default());
        }
    }

    /// Pre-creates an empty histogram (idempotent).
    pub fn register_hist(&mut self, name: &str) {
        if !self.hists.contains_key(name) {
            self.hists.insert(name.to_string(), Histogram::new());
        }
    }

    /// Increments a counter by one (creating it on first touch).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter (creating it on first touch).
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            c.add(n);
        } else {
            let mut c = Counter::default();
            c.add(n);
            self.counters.insert(name.to_string(), c);
        }
    }

    /// Sets a counter to an absolute value (used by snapshot exporters that
    /// may run more than once and must stay idempotent).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        let mut c = Counter::default();
        c.add(v);
        self.counters.insert(name.to_string(), c);
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            g.set(v);
        } else {
            let mut g = Gauge::default();
            g.set(v);
            self.gauges.insert(name.to_string(), g);
        }
    }

    /// Raises a gauge to `v` if larger (peak tracking).
    pub fn gauge_raise(&mut self, name: &str, v: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            g.raise_to(v);
        } else {
            let mut g = Gauge::default();
            g.raise_to(v);
            self.gauges.insert(name.to_string(), g);
        }
    }

    /// Current gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).map_or(0, |g| g.get())
    }

    /// Records a histogram sample (creating the histogram on first touch).
    pub fn record(&mut self, name: &str, v: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Dual-clock latency sample: records `sim_us` into `{base}_sim_us`
    /// (deterministic modeled cost) and `wall_ns` into `{base}_wall_ns`
    /// (real, fingerprint-exempt).
    pub fn record_dual(&mut self, base: &str, sim_us: u64, wall_ns: u64) {
        // Two formats per call: acceptable off the hottest paths; hot paths
        // pre-register both full names and call `record` directly.
        self.record(&format!("{base}_sim_us"), sim_us);
        self.record(&format!("{base}_wall_ns"), wall_ns);
    }

    /// Merges a whole histogram into the named slot.
    pub fn merge_hist(&mut self, name: &str, h: &Histogram) {
        if let Some(mine) = self.hists.get_mut(name) {
            mine.merge(h);
        } else {
            self.hists.insert(name.to_string(), h.clone());
        }
    }

    /// Replaces the named histogram with a copy of `h` (idempotent
    /// counterpart of [`Registry::merge_hist`], for snapshot exporters).
    pub fn set_hist(&mut self, name: &str, h: &Histogram) {
        self.hists.insert(name.to_string(), h.clone());
    }

    /// The named histogram, when present.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Sorted iteration over counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Sorted iteration over gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, g)| (k.as_str(), g.get()))
    }

    /// Sorted iteration over histograms.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Merges `other` into `self`: counters add, gauges keep the maximum
    /// (the convention is that gauges hold peaks), histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (k, c) in &other.counters {
            self.add(k, c.get());
        }
        for (k, g) in &other.gauges {
            self.gauge_raise(k, g.get());
        }
        for (k, h) in &other.hists {
            self.merge_hist(k, h);
        }
    }

    /// A copy with every wall-clock metric (name contains [`WALL_MARKER`])
    /// reset to its zero value — keys are kept so the exported schema is
    /// identical, only the nondeterministic payloads are blanked. Apply
    /// before byte-comparing two same-seed runs' telemetry.
    pub fn masked(&self) -> Registry {
        let mut out = self.clone();
        for (k, c) in out.counters.iter_mut() {
            if is_wall_key(k) {
                *c = Counter::default();
            }
        }
        for (k, g) in out.gauges.iter_mut() {
            if is_wall_key(k) {
                *g = Gauge::default();
            }
        }
        for (k, h) in out.hists.iter_mut() {
            if is_wall_key(k) {
                *h = Histogram::new();
            }
        }
        out
    }

    /// A scoped view that prefixes every metric name with `{scope}.`.
    /// Convenient for wiring (non-hot-path) exporters; hot paths use the
    /// full pre-registered names directly.
    pub fn scoped<'a>(&'a mut self, scope: &'a str) -> Scoped<'a> {
        Scoped { reg: self, scope }
    }
}

/// A labeled scope over a registry: every operation is applied under
/// `{scope}.{name}`.
pub struct Scoped<'a> {
    reg: &'a mut Registry,
    scope: &'a str,
}

impl Scoped<'_> {
    fn key(&self, name: &str) -> String {
        format!("{}.{}", self.scope, name)
    }

    /// Adds `n` to the scoped counter.
    pub fn add(&mut self, name: &str, n: u64) {
        let k = self.key(name);
        self.reg.add(&k, n);
    }

    /// Sets the scoped counter to an absolute value.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        let k = self.key(name);
        self.reg.set_counter(&k, v);
    }

    /// Raises the scoped gauge to `v` if larger.
    pub fn gauge_raise(&mut self, name: &str, v: i64) {
        let k = self.key(name);
        self.reg.gauge_raise(&k, v);
    }

    /// Records a sample into the scoped histogram.
    pub fn record(&mut self, name: &str, v: u64) {
        let k = self.key(name);
        self.reg.record(&k, v);
    }

    /// Merges a whole histogram into the scoped slot.
    pub fn merge_hist(&mut self, name: &str, h: &Histogram) {
        let k = self.key(name);
        self.reg.merge_hist(&k, h);
    }
}

/// A wall-clock stopwatch for the nondeterministic half of dual-clock
/// accounting.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_round_trip() {
        let mut r = Registry::new();
        r.inc("a.count");
        r.add("a.count", 4);
        r.gauge_set("a.level", 3);
        r.gauge_raise("a.level", 7);
        r.gauge_raise("a.level", 2);
        r.record("a.lat_us", 10);
        r.record("a.lat_us", 30);
        assert_eq!(r.counter("a.count"), 5);
        assert_eq!(r.gauge("a.level"), 7);
        assert_eq!(r.hist("a.lat_us").unwrap().count(), 2);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("missing"), 0);
        assert!(r.hist("missing").is_none());
    }

    #[test]
    fn registration_is_idempotent_and_stabilizes_keys() {
        let mut r = Registry::new();
        r.register_counter("x");
        r.inc("x");
        r.register_counter("x"); // must not reset
        assert_eq!(r.counter("x"), 1);
        r.register_hist("h");
        assert_eq!(r.hist("h").unwrap().count(), 0);
        let keys: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["x"]);
    }

    #[test]
    fn set_counter_is_idempotent() {
        let mut r = Registry::new();
        r.set_counter("snap", 9);
        r.set_counter("snap", 9);
        assert_eq!(r.counter("snap"), 9);
    }

    #[test]
    fn merge_adds_counters_peaks_gauges_merges_hists() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add("c", 2);
        b.add("c", 3);
        a.gauge_raise("g", 5);
        b.gauge_raise("g", 4);
        a.record("h", 1);
        b.record("h", 100);
        b.add("only_b", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), 5);
        assert_eq!(a.hist("h").unwrap().count(), 2);
        assert_eq!(a.counter("only_b"), 7);
    }

    #[test]
    fn masked_blanks_only_wall_metrics() {
        let mut r = Registry::new();
        r.record_dual("scope.lat", 5, 123_456);
        r.add("scope.contention_wall", 9);
        r.add("scope.events", 2);
        let m = r.masked();
        assert_eq!(m.hist("scope.lat_sim_us").unwrap().count(), 1);
        assert_eq!(m.hist("scope.lat_wall_ns").unwrap().count(), 0);
        assert_eq!(m.counter("scope.contention_wall"), 0);
        assert_eq!(m.counter("scope.events"), 2);
        // The key set survives masking (schema stability).
        let before: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        let after: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn masked_registries_of_equal_deterministic_halves_are_equal() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.record_dual("d.lat", 7, 111);
        b.record_dual("d.lat", 7, 999_999);
        assert_ne!(a, b);
        assert_eq!(a.masked(), b.masked());
    }

    #[test]
    fn scoped_prefixes_names() {
        let mut r = Registry::new();
        {
            let mut s = r.scoped("mck");
            s.add("states_visited", 10);
            s.gauge_raise("frontier_peak", 4);
            s.record("lat", 3);
        }
        assert_eq!(r.counter("mck.states_visited"), 10);
        assert_eq!(r.gauge("mck.frontier_peak"), 4);
        assert_eq!(r.hist("mck.lat").unwrap().count(), 1);
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn wall_key_detection() {
        assert!(is_wall_key("core.decision_latency_wall_ns"));
        assert!(is_wall_key("mck.shard_contention_wall"));
        assert!(!is_wall_key("core.decision_latency_sim_us"));
    }
}
