//! `cb-telemetry`: workspace-wide observability.
//!
//! The paper's central engineering claim (§3.4) is that complex choice
//! resolution must stay **off the critical path**. This crate is the
//! measurement substrate that makes the claim checkable: an
//! allocation-free-after-construction [`Registry`] of named counters,
//! gauges, and log-bucketed [`Histogram`]s, with **dual-clock** latency
//! accounting (deterministic sim-cost and real wall-clock) and labeled
//! scopes.
//!
//! Layering: this crate is dependency-free and sits at the bottom of the
//! workspace. `cb-simnet` re-exports the metric primitives (they started
//! life there), `cb-core`/`cb-mck` record into registries, `cb-harness`
//! embeds them in campaign artifacts, and `cb-bench` renders tables.
//!
//! The standard metric-name schema for the workspace lives in [`keys`];
//! derived summary statistics (cache hit rate, states/decision, latency
//! quantiles) live in [`summary`].

pub mod keys;
pub mod metrics;
pub mod registry;
pub mod summary;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{is_wall_key, Registry, Scoped, Stopwatch, WALL_MARKER};
pub use summary::TelemetrySummary;
