//! Derived summary statistics over a [`Registry`] using the standard
//! schema in [`crate::keys`] — the numbers `cb-bench` prints and humans
//! compare: decision-latency quantiles, cache hit rate, and exploration
//! cost per decision.

use crate::keys;
use crate::registry::Registry;

/// A per-run (or per-scenario, after merging) telemetry digest.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Choice-point resolutions.
    pub decisions: u64,
    /// Sim-cost decision latency p50, µs.
    pub decision_p50_sim_us: u64,
    /// Sim-cost decision latency p99, µs.
    pub decision_p99_sim_us: u64,
    /// Cache hit rate in `[0, 1]`, or `None` when no cache ever resolved.
    pub cache_hit_rate: Option<f64>,
    /// Mean states explored per decision (0 when no decisions).
    pub states_per_decision: f64,
    /// Total model-checker states visited (runtime predictions + offline).
    pub states_visited: u64,
    /// Transition dedup ratio in `[0, 1]`, or `None` without transitions.
    pub dedup_ratio: Option<f64>,
}

/// Cache hit rate: `hits / (hits + misses + refreshes)`. `None` when the
/// denominator is zero (no cached resolver in the loop).
pub fn cache_hit_rate(reg: &Registry) -> Option<f64> {
    let hits = reg.counter(keys::CORE_CACHE_HITS);
    let total =
        hits + reg.counter(keys::CORE_CACHE_MISSES) + reg.counter(keys::CORE_CACHE_REFRESHES);
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

/// Transition dedup ratio: `dedup_hits / transitions`. `None` when the
/// checker never ran.
pub fn dedup_ratio(reg: &Registry) -> Option<f64> {
    let t = reg.counter(keys::MCK_TRANSITIONS);
    if t == 0 {
        None
    } else {
        Some(reg.counter(keys::MCK_DEDUP_HITS) as f64 / t as f64)
    }
}

/// Mean states explored per decision (0 when no decisions happened).
pub fn states_per_decision(reg: &Registry) -> f64 {
    let d = reg.counter(keys::CORE_DECISIONS_TOTAL);
    if d == 0 {
        0.0
    } else {
        reg.counter(keys::CORE_STATES_EXPLORED) as f64 / d as f64
    }
}

/// Builds the digest from a registry following the standard schema.
pub fn summarize(reg: &Registry) -> TelemetrySummary {
    let lat = reg.hist(keys::CORE_DECISION_LATENCY_SIM_US);
    TelemetrySummary {
        decisions: reg.counter(keys::CORE_DECISIONS_TOTAL),
        decision_p50_sim_us: lat.map_or(0, |h| h.quantile(0.5)),
        decision_p99_sim_us: lat.map_or(0, |h| h.quantile(0.99)),
        cache_hit_rate: cache_hit_rate(reg),
        states_per_decision: states_per_decision(reg),
        states_visited: reg.counter(keys::MCK_STATES_VISITED),
        dedup_ratio: dedup_ratio(reg),
    }
}

/// Formats an optional rate as a percentage, `-` when absent.
pub fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_summarizes_to_zeroes() {
        let s = summarize(&Registry::new());
        assert_eq!(s.decisions, 0);
        assert_eq!(s.cache_hit_rate, None);
        assert_eq!(s.dedup_ratio, None);
        assert_eq!(s.states_per_decision, 0.0);
    }

    #[test]
    fn digest_reflects_recorded_metrics() {
        let mut r = Registry::new();
        r.add(keys::CORE_DECISIONS_TOTAL, 4);
        r.add(keys::CORE_STATES_EXPLORED, 40);
        r.add(keys::CORE_CACHE_HITS, 3);
        r.add(keys::CORE_CACHE_MISSES, 1);
        r.add(keys::CORE_CACHE_REFRESHES, 1);
        r.add(keys::MCK_TRANSITIONS, 10);
        r.add(keys::MCK_DEDUP_HITS, 4);
        for v in [1u64, 2, 3, 100] {
            r.record(keys::CORE_DECISION_LATENCY_SIM_US, v);
        }
        let s = summarize(&r);
        assert_eq!(s.decisions, 4);
        assert_eq!(s.states_per_decision, 10.0);
        assert_eq!(s.cache_hit_rate, Some(0.6));
        assert_eq!(s.dedup_ratio, Some(0.4));
        assert!(s.decision_p50_sim_us >= 2);
        assert!(s.decision_p99_sim_us >= s.decision_p50_sim_us);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(None), "-");
        assert_eq!(fmt_rate(Some(0.5)), "50.0%");
    }
}
