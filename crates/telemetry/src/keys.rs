//! The standard metric-name schema for the workspace.
//!
//! Components record under fixed dotted names so artifacts from different
//! scenarios, runs, and campaigns line up key-for-key. Names containing
//! the [`crate::WALL_MARKER`] substring (`"wall"`) are wall-clock metrics:
//! real hardware cost, nondeterministic, and therefore blanked by
//! [`crate::Registry::masked`] before determinism comparisons. Everything
//! else must be a pure function of `(scenario, seed, plan)`.
//!
//! [`preregister_standard`] pre-creates the whole schema at zero so hot
//! paths never allocate map keys and the exported key set is stable even
//! for components that never fire (e.g. the cache counters of a scenario
//! that runs a plain `RandomResolver`).

use crate::registry::Registry;

// ---- cb-core runtime: per-choice-point decision accounting ----

/// Total choice-point resolutions the runtime performed.
pub const CORE_DECISIONS_TOTAL: &str = "core.decisions_total";
/// Deterministic modeled decision cost, in sim-cost µs (1 µs per state the
/// resolver's prediction explored; 0 for non-predictive resolvers).
pub const CORE_DECISION_LATENCY_SIM_US: &str = "core.decision_latency_sim_us";
/// Real wall-clock decision latency, ns. Fingerprint-exempt.
pub const CORE_DECISION_LATENCY_WALL_NS: &str = "core.decision_latency_wall_ns";
/// Shared base for the dual-clock decision-latency pair.
pub const CORE_DECISION_LATENCY_BASE: &str = "core.decision_latency";
/// Sum of `Prediction.states_explored` over all decisions.
pub const CORE_STATES_EXPLORED: &str = "core.states_explored";
/// Cache lookups served from a live entry.
pub const CORE_CACHE_HITS: &str = "core.cache.hits";
/// Cache lookups that found no usable entry (cold key, collision, or
/// post-invalidation) and resolved inner.
pub const CORE_CACHE_MISSES: &str = "core.cache.misses";
/// Cache lookups that found a stale entry and re-resolved inner.
pub const CORE_CACHE_REFRESHES: &str = "core.cache.refreshes";
/// Full lookahead evaluations performed by a `LookaheadResolver`.
pub const CORE_LOOKAHEAD_EVALUATIONS: &str = "core.lookahead.evaluations";
/// Per-decision evaluation-cache lookups (property verdicts and objective
/// scores) answered from a memoized entry.
pub const CORE_EVALCACHE_HITS: &str = "core.evalcache.hits";
/// Per-decision evaluation-cache lookups that had to compute fresh.
pub const CORE_EVALCACHE_MISSES: &str = "core.evalcache.misses";
/// Dedicated liveness searches the fused single-pass evaluation avoided
/// (one whole exploration saved per option evaluation with liveness
/// objectives).
pub const CORE_EVALCACHE_FUSED_SEARCHES_SAVED: &str = "core.evalcache.fused_searches_saved";
/// Options dropped by the safety steering filter.
pub const CORE_STEERING_DROPPED: &str = "core.steering.dropped";
/// Times steering filtered every option (fell back to unsteered choice).
pub const CORE_STEERING_BREAKS: &str = "core.steering.breaks";
/// Event filters installed on this node (by local prediction or a
/// controller broadcast).
pub const CORE_STEERING_INSTALLED: &str = "core.steering.installed";
/// Event-filter matches: a filter actually vetoed/redirected an option.
pub const CORE_STEERING_FIRED: &str = "core.steering.fired";
/// Event filters that aged out at their expiry time without being removed.
pub const CORE_STEERING_EXPIRED: &str = "core.steering.expired";
/// Event filters removed explicitly (e.g. a controller retraction).
pub const CORE_STEERING_REMOVED: &str = "core.steering.removed";
/// Option evaluations cut short by the per-decision prediction deadline
/// (`PredictConfig::deadline_states`); each one yields a `Partial` verdict.
pub const CORE_PREDICT_PARTIAL_EVALS: &str = "core.predict.partial_evals";
/// Decisions whose *unenforced* prediction spend exceeded the reporting
/// deadline (`RuntimeConfig::report_deadline_states`). This is the control
/// arm's overrun counter: the ladder arm enforces the deadline inside the
/// evaluator and therefore never overruns by construction.
pub const CORE_PREDICT_DEADLINE_OVERRUNS: &str = "core.predict.deadline_overruns";

// ---- cb-core degradation governor + resolver ladder ----

/// Governor state transitions of any direction.
pub const CORE_GOVERNOR_TRANSITIONS: &str = "core.governor.transitions";
/// Transitions toward worse health (Healthy→Degraded, Degraded→Survival).
pub const CORE_GOVERNOR_STEP_DOWNS: &str = "core.governor.step_downs";
/// Transitions toward better health (Survival→Degraded, Degraded→Healthy).
pub const CORE_GOVERNOR_RECOVERIES: &str = "core.governor.recoveries";
/// Decisions resolved while the governor reported `Healthy`.
pub const CORE_GOVERNOR_DECISIONS_HEALTHY: &str = "core.governor.decisions_healthy";
/// Decisions resolved while the governor reported `Degraded`.
pub const CORE_GOVERNOR_DECISIONS_DEGRADED: &str = "core.governor.decisions_degraded";
/// Decisions resolved while the governor reported `Survival`.
pub const CORE_GOVERNOR_DECISIONS_SURVIVAL: &str = "core.governor.decisions_survival";
/// Step-downs whose dominant pressure input was snapshot staleness.
pub const CORE_GOVERNOR_CAUSE_STALENESS: &str = "core.governor.cause_staleness";
/// Step-downs whose dominant pressure input was peer-confidence collapse.
pub const CORE_GOVERNOR_CAUSE_CONFIDENCE: &str = "core.governor.cause_confidence";
/// Step-downs whose dominant pressure input was steering-filter pressure.
pub const CORE_GOVERNOR_CAUSE_STEERING: &str = "core.governor.cause_steering";
/// Step-downs whose dominant pressure input was a prediction-deadline
/// firing.
pub const CORE_GOVERNOR_CAUSE_DEADLINE: &str = "core.governor.cause_deadline";
/// Step-downs whose dominant pressure input was service-load backlog.
pub const CORE_GOVERNOR_CAUSE_LOAD: &str = "core.governor.cause_load";
/// Current governor rung (0 Healthy, 1 Degraded, 2 Survival). Gauge:
/// fleet merges keep the worst node, so a campaign artifact's value is
/// the fleet's worst health at end of run.
pub const CORE_GOVERNOR_RUNG: &str = "core.governor.rung";
/// Sim-ns spent in `Healthy`, one histogram sample per node — a fleet
/// merge yields the cross-node time-in-state distribution.
pub const CORE_GOVERNOR_HEALTHY_NS: &str = "core.governor.in_healthy_sim_ns";
/// Sim-ns spent in `Degraded`, one histogram sample per node.
pub const CORE_GOVERNOR_DEGRADED_NS: &str = "core.governor.in_degraded_sim_ns";
/// Sim-ns spent in `Survival`, one histogram sample per node.
pub const CORE_GOVERNOR_SURVIVAL_NS: &str = "core.governor.in_survival_sim_ns";
/// Decisions the ladder resolved on the full-lookahead rung (rung 0).
pub const CORE_LADDER_RUNG_LOOKAHEAD: &str = "core.ladder.rung_lookahead";
/// Decisions the ladder resolved on the cached-lookahead rung (rung 1).
pub const CORE_LADDER_RUNG_CACHED: &str = "core.ladder.rung_cached";
/// Decisions the ladder resolved on the precomputed-table rung (rung 2) —
/// store-served warm hits.
pub const CORE_LADDER_RUNG_PRECOMPUTED: &str = "core.ladder.rung_precomputed";
/// Decisions the ladder resolved on the learned-bandit rung (rung 3).
pub const CORE_LADDER_RUNG_LEARNED: &str = "core.ladder.rung_learned";
/// Decisions the ladder resolved on the feature-heuristic rung (rung 4).
pub const CORE_LADDER_RUNG_HEURISTIC: &str = "core.ladder.rung_heuristic";
/// Decisions the ladder resolved on the static-safe-default rung (rung 5).
pub const CORE_LADDER_RUNG_STATIC: &str = "core.ladder.rung_static";
/// Decisions answered from the cross-run policy store.
pub const CORE_POLICY_HITS: &str = "core.policy.hits";
/// Decisions a loaded policy store could not answer (no entry, or the
/// stored option key was not among the offered options).
pub const CORE_POLICY_MISSES: &str = "core.policy.misses";
/// Governor-gated refresh checks whose fresh lookahead disagreed with the
/// stored entry — staleness caught and the fresh answer served.
pub const CORE_POLICY_STALE: &str = "core.policy.stale";
/// Decisions recorded into a policy store being trained this run.
pub const CORE_POLICY_INSERTS: &str = "core.policy.inserts";
/// Governor-gated refresh lookaheads actually performed (the every-Nth-hit
/// re-run). Suppressed outside `Healthy`: refresh work is the first thing
/// shed under overload.
pub const CORE_POLICY_REFRESH: &str = "core.policy.refresh";
/// Controller (background prediction) cycles executed.
pub const CORE_CONTROLLER_CYCLES: &str = "core.controller.cycles";
/// Checkpoints sent to neighbors.
pub const CORE_CHECKPOINTS_SENT: &str = "core.checkpoints.sent";
/// Checkpoints received from neighbors.
pub const CORE_CHECKPOINTS_RECEIVED: &str = "core.checkpoints.received";
/// Prefix for per-resolver-arm decision counters: the full key is
/// `core.resolver_arm.<arm>` where `<arm>` is [`crate::keys`]-free text
/// supplied by the resolver (e.g. `random`, `first`, `lookahead`, `cached`).
pub const CORE_RESOLVER_ARM_PREFIX: &str = "core.resolver_arm.";

// ---- cb-workload: open-loop aggregate client load ----

/// First-attempt aggregate user operations offered by load generators.
pub const WORKLOAD_OFFERED: &str = "workload.offered";
/// Total aggregate send attempts, first tries plus retries.
pub const WORKLOAD_ATTEMPTS: &str = "workload.attempts";
/// Retry attempts only (attempts minus offered).
pub const WORKLOAD_RETRIES: &str = "workload.retries";
/// Aggregate operations admitted into service queues.
pub const WORKLOAD_ADMITTED: &str = "workload.admitted";
/// Aggregate operations shed at admission.
pub const WORKLOAD_SHED: &str = "workload.shed";
/// Admitted operations dropped in queue past their service deadline.
pub const WORKLOAD_EXPIRED: &str = "workload.expired";
/// Admitted operations drained within deadline — the goodput numerator.
pub const WORKLOAD_SERVED: &str = "workload.served";
/// Operations abandoned after exhausting their retry budget.
pub const WORKLOAD_FAILED: &str = "workload.failed";

// ---- cb-simnet: network-level counters ----

/// Messages handed to the network.
pub const NET_MSGS_SENT: &str = "net.msgs_sent";
/// Messages delivered to a live destination.
pub const NET_MSGS_DELIVERED: &str = "net.msgs_delivered";
/// Messages dropped (loss, partition, or dead destination).
pub const NET_MSGS_DROPPED: &str = "net.msgs_dropped";
/// Payload bytes handed to the network.
pub const NET_BYTES_SENT: &str = "net.bytes_sent";
/// Connections that reached the established state.
pub const NET_CONNS_ESTABLISHED: &str = "net.conns_established";
/// Established connections torn down by faults.
pub const NET_CONNS_BROKEN: &str = "net.conns_broken";
/// End-to-end delivery latency histogram, sim µs (deterministic).
pub const NET_DELIVERY_LATENCY_US: &str = "net.delivery_latency_us";

// ---- provenance tracing (cb-trace flight recorders + simnet trace ring) ----

/// Flat simnet trace-ring records evicted to honour the ring's capacity
/// bound. Nonzero means the retained window (and any failure-artifact
/// trace tail) shows only the end of the run; the ring's fingerprint still
/// covers every record.
pub const SIMNET_TRACE_EVICTED: &str = "simnet.trace.evicted";
/// Provenance spans recorded across all per-node flight recorders.
pub const TRACE_SPANS_RECORDED: &str = "trace.spans_recorded";
/// Provenance spans evicted from the bounded flight-recorder rings.
pub const TRACE_SPANS_EVICTED: &str = "trace.spans_evicted";

// ---- cb-mck: model-checker exploration budgets ----

/// Unique states inserted into the visited set.
pub const MCK_STATES_VISITED: &str = "mck.states_visited";
/// States popped and expanded.
pub const MCK_STATES_EXPANDED: &str = "mck.states_expanded";
/// Transitions (edges) examined.
pub const MCK_TRANSITIONS: &str = "mck.transitions";
/// Transitions that led to an already-visited state (dedup ratio is
/// `dedup_hits / transitions`).
pub const MCK_DEDUP_HITS: &str = "mck.dedup_hits";
/// Peak frontier size (gauge; merge keeps the max).
pub const MCK_FRONTIER_PEAK: &str = "mck.frontier_peak";
/// Deepest level reached (gauge; merge keeps the max).
pub const MCK_MAX_DEPTH: &str = "mck.max_depth";
/// Parallel-BFS shard-lock contention events (try_lock failures).
/// Scheduling-dependent, hence `wall`: fingerprint-exempt.
pub const MCK_SHARD_CONTENTION_WALL: &str = "mck.shard_contention_wall";

/// Pre-creates every standard metric at its zero value (idempotent).
///
/// Call once per registry before the run starts. This keeps the steady
/// state allocation-free and — just as important for artifact diffing —
/// makes every run export the same key set regardless of which components
/// actually fired.
pub fn preregister_standard(reg: &mut Registry) {
    for c in [
        CORE_DECISIONS_TOTAL,
        CORE_STATES_EXPLORED,
        CORE_CACHE_HITS,
        CORE_CACHE_MISSES,
        CORE_CACHE_REFRESHES,
        CORE_LOOKAHEAD_EVALUATIONS,
        CORE_EVALCACHE_HITS,
        CORE_EVALCACHE_MISSES,
        CORE_EVALCACHE_FUSED_SEARCHES_SAVED,
        CORE_STEERING_DROPPED,
        CORE_STEERING_BREAKS,
        CORE_STEERING_INSTALLED,
        CORE_STEERING_FIRED,
        CORE_STEERING_EXPIRED,
        CORE_STEERING_REMOVED,
        CORE_PREDICT_PARTIAL_EVALS,
        CORE_PREDICT_DEADLINE_OVERRUNS,
        CORE_GOVERNOR_TRANSITIONS,
        CORE_GOVERNOR_STEP_DOWNS,
        CORE_GOVERNOR_RECOVERIES,
        CORE_GOVERNOR_DECISIONS_HEALTHY,
        CORE_GOVERNOR_DECISIONS_DEGRADED,
        CORE_GOVERNOR_DECISIONS_SURVIVAL,
        CORE_GOVERNOR_CAUSE_STALENESS,
        CORE_GOVERNOR_CAUSE_CONFIDENCE,
        CORE_GOVERNOR_CAUSE_STEERING,
        CORE_GOVERNOR_CAUSE_DEADLINE,
        CORE_GOVERNOR_CAUSE_LOAD,
        CORE_LADDER_RUNG_LOOKAHEAD,
        CORE_LADDER_RUNG_CACHED,
        CORE_LADDER_RUNG_PRECOMPUTED,
        CORE_LADDER_RUNG_LEARNED,
        CORE_LADDER_RUNG_HEURISTIC,
        CORE_LADDER_RUNG_STATIC,
        CORE_POLICY_HITS,
        CORE_POLICY_MISSES,
        CORE_POLICY_STALE,
        CORE_POLICY_INSERTS,
        CORE_POLICY_REFRESH,
        WORKLOAD_OFFERED,
        WORKLOAD_ATTEMPTS,
        WORKLOAD_RETRIES,
        WORKLOAD_ADMITTED,
        WORKLOAD_SHED,
        WORKLOAD_EXPIRED,
        WORKLOAD_SERVED,
        WORKLOAD_FAILED,
        CORE_CONTROLLER_CYCLES,
        CORE_CHECKPOINTS_SENT,
        CORE_CHECKPOINTS_RECEIVED,
        NET_MSGS_SENT,
        NET_MSGS_DELIVERED,
        NET_MSGS_DROPPED,
        NET_BYTES_SENT,
        NET_CONNS_ESTABLISHED,
        NET_CONNS_BROKEN,
        SIMNET_TRACE_EVICTED,
        TRACE_SPANS_RECORDED,
        TRACE_SPANS_EVICTED,
        MCK_STATES_VISITED,
        MCK_STATES_EXPANDED,
        MCK_TRANSITIONS,
        MCK_DEDUP_HITS,
        MCK_SHARD_CONTENTION_WALL,
    ] {
        reg.register_counter(c);
    }
    for g in [MCK_FRONTIER_PEAK, MCK_MAX_DEPTH, CORE_GOVERNOR_RUNG] {
        reg.register_gauge(g);
    }
    for h in [
        CORE_DECISION_LATENCY_SIM_US,
        CORE_DECISION_LATENCY_WALL_NS,
        NET_DELIVERY_LATENCY_US,
        CORE_GOVERNOR_HEALTHY_NS,
        CORE_GOVERNOR_DEGRADED_NS,
        CORE_GOVERNOR_SURVIVAL_NS,
    ] {
        reg.register_hist(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::is_wall_key;

    #[test]
    fn preregister_is_idempotent_and_zero() {
        let mut r = Registry::new();
        preregister_standard(&mut r);
        r.inc(CORE_DECISIONS_TOTAL);
        preregister_standard(&mut r);
        assert_eq!(r.counter(CORE_DECISIONS_TOTAL), 1);
        assert_eq!(r.counter(NET_MSGS_SENT), 0);
        assert_eq!(r.gauge(MCK_FRONTIER_PEAK), 0);
        assert!(r.hist(CORE_DECISION_LATENCY_SIM_US).unwrap().is_empty());
    }

    #[test]
    fn wall_exemptions_are_exactly_the_wall_keys() {
        assert!(is_wall_key(CORE_DECISION_LATENCY_WALL_NS));
        assert!(is_wall_key(MCK_SHARD_CONTENTION_WALL));
        for deterministic in [
            CORE_DECISIONS_TOTAL,
            CORE_DECISION_LATENCY_SIM_US,
            NET_DELIVERY_LATENCY_US,
            MCK_STATES_VISITED,
            MCK_DEDUP_HITS,
        ] {
            assert!(!is_wall_key(deterministic), "{deterministic}");
        }
    }

    #[test]
    fn dual_clock_names_share_the_base() {
        assert_eq!(
            CORE_DECISION_LATENCY_SIM_US,
            format!("{CORE_DECISION_LATENCY_BASE}_sim_us")
        );
        assert_eq!(
            CORE_DECISION_LATENCY_WALL_NS,
            format!("{CORE_DECISION_LATENCY_BASE}_wall_ns")
        );
    }
}
