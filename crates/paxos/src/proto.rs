//! Paxos wire protocol and ballot arithmetic.
//!
//! A multi-decree Paxos in the coordinated (Mencius-like) style: the log is
//! partitioned into slot ranges with a designated **owner** per slot, and
//! an owner's base ballot is implicitly promised by every acceptor — so the
//! owner commits in one round trip (Accept/Accepted), while any other
//! proposer must run an explicit Prepare/Promise with a higher ballot
//! first. This is what lets "every node propose" cheaply, the property the
//! paper's consensus example (§3.1) wants exposed as a choice.

use cb_simnet::topology::NodeId;

/// Maximum replicas a ballot can encode (ballot = round × MAX + owner).
pub const MAX_REPLICAS: u64 = 64;

/// A ballot number: globally ordered, collision-free across proposers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot(pub u64);

impl Ballot {
    /// The base (round-0) ballot of a proposer.
    pub fn base(proposer: u64) -> Ballot {
        Ballot(proposer)
    }

    /// Creates the ballot for `round` belonging to `proposer`.
    ///
    /// # Panics
    ///
    /// Panics if `proposer >= MAX_REPLICAS`.
    pub fn new(round: u64, proposer: u64) -> Ballot {
        assert!(
            proposer < MAX_REPLICAS,
            "proposer id {proposer} out of range"
        );
        Ballot(round * MAX_REPLICAS + proposer)
    }

    /// The proposer this ballot belongs to.
    pub fn proposer(self) -> u64 {
        self.0 % MAX_REPLICAS
    }

    /// The round of this ballot.
    pub fn round(self) -> u64 {
        self.0 / MAX_REPLICAS
    }

    /// The next-higher ballot belonging to `proposer`.
    pub fn bump_for(self, proposer: u64) -> Ballot {
        Ballot::new(self.round() + 1, proposer)
    }
}

/// A replicated command: packs the submitting client and a sequence number
/// so the committing proposer can acknowledge the right client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Command(pub u64);

impl Command {
    /// Builds a command from a client node and its local sequence number.
    pub fn new(client: NodeId, seq: u32) -> Command {
        Command(((client.0 as u64) << 32) | seq as u64)
    }

    /// The submitting client.
    pub fn client(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }

    /// The client-local sequence number.
    pub fn seq(self) -> u32 {
        self.0 as u32
    }
}

/// Paxos messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PaxosMsg {
    /// Client asks a proposer to get a command committed.
    Submit {
        /// The command.
        cmd: Command,
    },
    /// Phase 1a: ask acceptors to promise `ballot` for `slot`.
    Prepare {
        /// Log slot.
        slot: u64,
        /// Proposed ballot.
        ballot: Ballot,
    },
    /// Phase 1b: a promise, carrying any previously accepted value.
    Promise {
        /// Log slot.
        slot: u64,
        /// The promised ballot.
        ballot: Ballot,
        /// Highest accepted (ballot, value) at this acceptor, if any.
        accepted: Option<(Ballot, Command)>,
    },
    /// Phase 2a: ask acceptors to accept `value` at `ballot`.
    Accept {
        /// Log slot.
        slot: u64,
        /// The ballot.
        ballot: Ballot,
        /// The value.
        value: Command,
    },
    /// Phase 2b: the acceptor accepted.
    Accepted {
        /// Log slot.
        slot: u64,
        /// The accepted ballot.
        ballot: Ballot,
    },
    /// Rejection: the acceptor has promised a higher ballot.
    Nack {
        /// Log slot.
        slot: u64,
        /// The ballot the acceptor is holding out for.
        promised: Ballot,
    },
    /// The chosen value, broadcast to learners.
    Learn {
        /// Log slot.
        slot: u64,
        /// The chosen value.
        value: Command,
    },
    /// Ack to the submitting client.
    Committed {
        /// The committed command.
        cmd: Command,
    },
    /// Operations/repair hook: drive consensus for a *specific* slot
    /// through the receiving replica, even if it does not own the slot
    /// (runs the explicit higher-ballot phase 1; any already-accepted
    /// value is adopted, preserving safety).
    SubmitAt {
        /// The slot to contend for.
        slot: u64,
        /// The value to propose if the slot is free.
        cmd: Command,
    },
    /// Learner catch-up: ask a peer to re-send its learned log from
    /// `from_slot` up (bounded batch). Decided values are safe to copy —
    /// this is how a restarted amnesiac rejoins without ever touching the
    /// acceptor or revocation paths for its missing history.
    LearnReq {
        /// First slot the requester is missing.
        from_slot: u64,
    },
    /// State-machine execution result, sent to the submitting client by
    /// each replica whose executed prefix reaches the command's slot. The
    /// Mencius KV layer acks clients with this — *after* every earlier
    /// slot is decided and executed — rather than with [`PaxosMsg::Committed`],
    /// which fires at accept-quorum and would break the real-time ordering
    /// the linearizability oracle checks.
    Result {
        /// The executed command.
        cmd: Command,
        /// Execution result: the read value for gets, the written value
        /// for puts.
        value: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_round_trip() {
        let b = Ballot::new(7, 3);
        assert_eq!(b.round(), 7);
        assert_eq!(b.proposer(), 3);
        assert!(Ballot::new(7, 4) > b);
        assert!(Ballot::new(8, 0) > b);
    }

    #[test]
    fn base_ballots_order_by_proposer() {
        assert!(Ballot::base(2) > Ballot::base(1));
        assert_eq!(Ballot::base(5).round(), 0);
    }

    #[test]
    fn bump_produces_strictly_higher_ballot_for_any_proposer() {
        let b = Ballot::new(3, 9);
        let higher = b.bump_for(1);
        assert!(higher > b);
        assert_eq!(higher.proposer(), 1);
        assert_eq!(higher.round(), 4);
    }

    #[test]
    fn command_packs_client_and_seq() {
        let c = Command::new(NodeId(12), 99);
        assert_eq!(c.client(), NodeId(12));
        assert_eq!(c.seq(), 99);
        assert_ne!(Command::new(NodeId(12), 100), c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_proposer_rejected() {
        let _ = Ballot::new(0, MAX_REPLICAS);
    }
}
