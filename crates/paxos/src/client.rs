//! The consensus client: where the proposer choice lives.
//!
//! §3.1: "an implementation can expose the choice of a proposer and let the
//! runtime pick the best proposer for high performance across a range of
//! deployment settings." Our client submits each command to a proposer
//! picked by one of three regimes:
//!
//! * [`ProposerRegime::FixedLeader`] — everything goes to replica 0, the
//!   classic deployment that degrades when the leader's uplink or CPU
//!   saturates or the client is far away.
//! * [`ProposerRegime::RoundRobin`] — Mencius-style rotation: load spreads,
//!   but a client routinely submits to far-away proposers.
//! * [`ProposerRegime::Resolved`] — the proposer is an **exposed choice**
//!   (`"paxos.proposer"`) with the runtime-measured latency as a feature;
//!   commit-latency feedback teaches the learned resolver which proposer
//!   is best for *this* client under the *current* load.

use crate::proto::{Command, PaxosMsg};
use crate::replica::ReplicaCheckpoint;
use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::runtime::ServiceCtx;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::HashMap;

/// Client submit-loop timer tag.
pub const SUBMIT_TIMER: u64 = 10;

/// Client retry-sweep timer tag.
pub const CLIENT_SWEEP_TIMER: u64 = 11;

/// Commands unacknowledged for this long are resubmitted.
const RESUBMIT_AFTER: SimDuration = SimDuration::from_secs(10);

/// How a client picks the proposer for each command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProposerRegime {
    /// Always the fixed leader (replica index 0).
    FixedLeader,
    /// Rotate deterministically across all replicas.
    RoundRobin,
    /// Exposed choice resolved by the runtime.
    Resolved,
}

impl ProposerRegime {
    /// Label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ProposerRegime::FixedLeader => "Fixed leader",
            ProposerRegime::RoundRobin => "Round-robin",
            ProposerRegime::Resolved => "Runtime-Resolved",
        }
    }
}

/// A closed-loop-ish client: submits at a fixed rate up to a command budget
/// and records commit latencies.
pub struct Client {
    me: NodeId,
    /// The replica group, in index order.
    pub group: Vec<NodeId>,
    regime: ProposerRegime,
    period: SimDuration,
    /// Total commands to submit.
    pub target: u32,
    next_seq: u32,
    /// Outstanding commands: seq -> (submitted at, proposer used, attempt).
    pending: HashMap<u32, (SimTime, NodeId, u32)>,
    /// Commit latencies, seconds, in completion order.
    pub latencies: Vec<f64>,
    /// Commands resubmitted after a timeout.
    pub resubmits: u64,
}

impl Client {
    /// Creates a client submitting `target` commands every `period`.
    pub fn new(
        me: NodeId,
        group: Vec<NodeId>,
        regime: ProposerRegime,
        period: SimDuration,
        target: u32,
    ) -> Self {
        Client {
            me,
            group,
            regime,
            period,
            target,
            next_seq: 0,
            pending: HashMap::new(),
            latencies: Vec::new(),
            resubmits: 0,
        }
    }

    /// Commands committed so far.
    pub fn committed(&self) -> usize {
        self.latencies.len()
    }

    /// Mean commit latency in seconds (infinite when nothing committed).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.latencies.is_empty() {
            f64::INFINITY
        } else {
            self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
        }
    }

    fn pick_proposer(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        seq: u32,
        attempt: u32,
    ) -> NodeId {
        match self.regime {
            // Fixed schedules fail over by rotating on retries.
            ProposerRegime::FixedLeader => self.group[attempt as usize % self.group.len()],
            ProposerRegime::RoundRobin => {
                self.group[(seq as usize + attempt as usize) % self.group.len()]
            }
            ProposerRegime::Resolved => {
                let now = ctx.now();
                let options: Vec<OptionDesc> = self
                    .group
                    .iter()
                    .map(|&r| {
                        let latency_ms = ctx
                            .net_model()
                            .predicted_latency(r, now)
                            .map_or(40.0, |(l, _)| l.as_millis_f64());
                        OptionDesc::with_features(r.0 as u64, vec![latency_ms])
                    })
                    .collect();
                let i = ctx.choose("paxos.proposer", ContextKey::default(), &options);
                self.group[i]
            }
        }
    }

    /// Submits the next command, if the budget allows.
    pub fn submit_next(&mut self, ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>) {
        if self.next_seq >= self.target {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let proposer = self.pick_proposer(ctx, seq, 0);
        self.pending.insert(seq, (ctx.now(), proposer, 0));
        ctx.send_sized(
            proposer,
            PaxosMsg::Submit {
                cmd: Command::new(self.me, seq),
            },
            crate::scenario::CMD_BYTES,
        );
    }

    /// Handles a commit acknowledgement.
    pub fn on_committed(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        cmd: Command,
    ) {
        if cmd.client() != self.me {
            return;
        }
        if let Some((sent, proposer, _attempt)) = self.pending.remove(&cmd.seq()) {
            let lat = ctx.now().saturating_since(sent).as_secs_f64();
            self.latencies.push(lat);
            if self.regime == ProposerRegime::Resolved {
                // Saturating reward: ~1 for instant commits, ~0 for seconds.
                let reward = 0.2 / (0.2 + lat);
                ctx.feedback(
                    "paxos.proposer",
                    ContextKey::default(),
                    proposer.0 as u64,
                    reward,
                );
            }
        }
    }

    /// Resubmits commands that timed out (through a fresh proposer choice).
    pub fn sweep(&mut self, ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>) {
        let now = ctx.now();
        let expired: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, (at, _, _))| now.saturating_since(*at) > RESUBMIT_AFTER)
            .map(|(&s, _)| s)
            .collect();
        for seq in expired {
            self.resubmits += 1;
            let (_, old, attempt) = self.pending[&seq];
            if self.regime == ProposerRegime::Resolved {
                ctx.feedback("paxos.proposer", ContextKey::default(), old.0 as u64, 0.0);
            }
            let proposer = self.pick_proposer(ctx, seq, attempt + 1);
            self.pending.insert(seq, (now, proposer, attempt + 1));
            ctx.send_sized(
                proposer,
                PaxosMsg::Submit {
                    cmd: Command::new(self.me, seq),
                },
                crate::scenario::CMD_BYTES,
            );
        }
    }

    /// True when every command has been committed.
    pub fn done(&self) -> bool {
        self.next_seq >= self.target && self.pending.is_empty()
    }

    /// The submit period.
    pub fn period(&self) -> SimDuration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_labels() {
        assert_eq!(ProposerRegime::FixedLeader.label(), "Fixed leader");
        assert_eq!(ProposerRegime::RoundRobin.label(), "Round-robin");
        assert_eq!(ProposerRegime::Resolved.label(), "Runtime-Resolved");
    }

    #[test]
    fn fresh_client_state() {
        let c = Client::new(
            NodeId(9),
            (0..5).map(NodeId).collect(),
            ProposerRegime::FixedLeader,
            SimDuration::from_millis(100),
            20,
        );
        assert_eq!(c.committed(), 0);
        assert!(!c.done());
        assert_eq!(c.mean_latency_secs(), f64::INFINITY);
    }
}
