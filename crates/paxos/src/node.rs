//! The unified Paxos node: replica or client, one [`Service`] type.
//!
//! The simulator hosts one actor type per run, so replicas and clients are
//! two roles of a single service; dispatch is by construction, not by
//! message inspection.

use crate::client::{Client, CLIENT_SWEEP_TIMER, SUBMIT_TIMER};
use crate::proto::PaxosMsg;
use crate::replica::{Replica, ReplicaCheckpoint};
use cb_core::model::state::StateModel;
use cb_core::runtime::{Service, ServiceCtx};
use cb_simnet::time::SimDuration;
use cb_simnet::topology::NodeId;

/// A node of the consensus deployment.
pub enum PaxosNode {
    /// A replica (acceptor + learner + proposer).
    Replica(Replica),
    /// A command-submitting client.
    Client(Client),
    /// A host that takes no part (topology filler).
    Idle,
}

impl PaxosNode {
    /// The replica inside, if this is one.
    pub fn as_replica(&self) -> Option<&Replica> {
        match self {
            PaxosNode::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The client inside, if this is one.
    pub fn as_client(&self) -> Option<&Client> {
        match self {
            PaxosNode::Client(c) => Some(c),
            _ => None,
        }
    }
}

impl Service for PaxosNode {
    type Msg = PaxosMsg;
    type Checkpoint = ReplicaCheckpoint;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>) {
        if let PaxosNode::Client(c) = self {
            // Probe every replica so the network model is warm before the
            // first proposer choice.
            for &r in &c.group.clone() {
                ctx.probe(r);
            }
            let jitter = SimDuration::from_nanos(ctx.rng().gen_below(c.period().as_nanos().max(1)));
            ctx.set_timer(c.period() + jitter, SUBMIT_TIMER);
            ctx.set_timer(SimDuration::from_secs(5), CLIENT_SWEEP_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>, tag: u64) {
        let PaxosNode::Client(c) = self else { return };
        match tag {
            SUBMIT_TIMER => {
                c.submit_next(ctx);
                if !c.done() {
                    ctx.set_timer(c.period(), SUBMIT_TIMER);
                }
            }
            CLIENT_SWEEP_TIMER => {
                c.sweep(ctx);
                if !c.done() {
                    ctx.set_timer(SimDuration::from_secs(5), CLIENT_SWEEP_TIMER);
                }
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        msg: PaxosMsg,
    ) {
        match self {
            PaxosNode::Replica(r) => r.handle(ctx, from, msg),
            PaxosNode::Client(c) => {
                if let PaxosMsg::Committed { cmd } = msg {
                    c.on_committed(ctx, cmd);
                }
            }
            PaxosNode::Idle => {}
        }
    }

    fn checkpoint(&self, _model: &StateModel<ReplicaCheckpoint>) -> ReplicaCheckpoint {
        match self {
            PaxosNode::Replica(r) => ReplicaCheckpoint {
                learned: r.learned.len() as u64,
                log_high: r.learned.keys().next_back().map_or(0, |&s| s + 1),
            },
            _ => ReplicaCheckpoint {
                learned: 0,
                log_high: 0,
            },
        }
    }

    fn neighbors(&self) -> Vec<NodeId> {
        match self {
            PaxosNode::Replica(r) => r.group_peers(),
            _ => Vec::new(),
        }
    }
}
