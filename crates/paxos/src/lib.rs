//! # cb-paxos — consensus with an exposed proposer choice
//!
//! A multi-decree Paxos in the coordinated (Mencius-like) style over the
//! explicit-choice runtime, built for the §3.1 consensus claim: fixed-
//! leader deployments degrade under leader load and client remoteness,
//! rotating proposers spread load, and **exposing the proposer choice** to
//! a learned runtime resolver gets low latency across deployment settings.
//!
//! * [`proto`] — ballots, commands, the Paxos message set.
//! * [`replica`] — acceptor/learner/proposer with slot ownership
//!   (fixed-leader or round-robin schedules) and full Prepare/Promise
//!   recovery for contended slots.
//! * [`client`] — the submitting client and the three proposer regimes.
//! * [`node`] — the unified service hosting either role.
//! * [`scenario`] — the WAN deployment and regime comparison (E7).
//! * [`mencius`] — a multi-leader replicated KV layered on the core, with
//!   execution-order client acks and a linearizability oracle.

pub mod campaign;
pub mod client;
pub mod mencius;
pub mod node;
pub mod proto;
pub mod replica;
pub mod scenario;

pub use campaign::PaxosCampaign;
pub use client::{Client, ProposerRegime};
pub use mencius::{MenciusCampaign, MenciusLoadGen, MenciusNode, MenciusReplica, MenciusSession};
pub use node::PaxosNode;
pub use proto::{Ballot, Command, PaxosMsg, MAX_REPLICAS};
pub use replica::{Replica, ReplicaCheckpoint, SlotOwnership};
pub use scenario::{run_paxos, PaxosConfig, PaxosOutcome};
