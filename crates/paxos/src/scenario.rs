//! The consensus experiment: proposer regimes across a WAN (E7).
//!
//! Five replicas, one per region of a transit-stub WAN; clients spread over
//! the regions submit at a configurable aggregate rate. Replica uplinks are
//! modest, so a fixed leader saturates as load grows — the §3.1 failure
//! mode ("reduced performance due to CPU overload or network congestion") —
//! while rotating or runtime-resolved proposers spread the load, and the
//! resolved regime additionally keeps commits near the client.

use crate::client::{Client, ProposerRegime};
use crate::node::PaxosNode;
use crate::proto::PaxosMsg;
use crate::replica::{Replica, SlotOwnership};
use cb_core::choice::Resolver;
use cb_core::resolve::learned::{BanditPolicy, LearnedResolver};
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{RuntimeConfig, RuntimeNode};
use cb_simnet::sim::Sim;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::{AccessLink, NodeId, Topology, TransitStubConfig};

/// Size ascribed to Accept/Learn payloads (command + metadata), bytes.
/// Large enough that proposer uplink bandwidth matters.
pub const CMD_BYTES: u32 = 8_192;

/// Consensus scenario parameters.
#[derive(Clone, Debug)]
pub struct PaxosConfig {
    /// Number of replicas (one per region; 5 regions are generated).
    pub replicas: usize,
    /// Number of clients, spread round-robin over the regions.
    pub clients: usize,
    /// Commands per client.
    pub commands_per_client: u32,
    /// Per-client submit period (aggregate rate = clients / period).
    pub submit_period: SimDuration,
    /// Replica uplink capacity, bits per second (the contended resource).
    pub replica_uplink_bps: u64,
    /// Simulated run limit.
    pub horizon: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Default for PaxosConfig {
    fn default() -> Self {
        PaxosConfig {
            replicas: 5,
            clients: 10,
            commands_per_client: 40,
            submit_period: SimDuration::from_millis(250),
            replica_uplink_bps: 20_000_000,
            horizon: SimDuration::from_secs(300),
            seed: 1,
        }
    }
}

/// Outcome of one consensus run.
#[derive(Clone, Debug)]
pub struct PaxosOutcome {
    /// The regime that ran.
    pub regime: ProposerRegime,
    /// Commands committed across all clients.
    pub committed: usize,
    /// Commands submitted across all clients.
    pub submitted: usize,
    /// Mean commit latency over committed commands, seconds.
    pub mean_latency_secs: f64,
    /// 99th-percentile commit latency, seconds.
    pub p99_latency_secs: f64,
    /// Client resubmissions after timeouts.
    pub resubmits: u64,
    /// Ballot conflicts (Nacks) observed at replicas.
    pub nacks: u64,
    /// Commands proposed by each replica (load distribution).
    pub per_replica_commits: Vec<u64>,
}

fn resolver_for(regime: ProposerRegime, seed: u64) -> Box<dyn Resolver> {
    match regime {
        ProposerRegime::FixedLeader | ProposerRegime::RoundRobin => {
            Box::new(RandomResolver::new(seed))
        }
        ProposerRegime::Resolved => {
            // The feature is the runtime-measured latency (ms); the prior
            // mirrors the client's commit-latency reward so new arms start
            // from the network model instead of forced exploration.
            Box::new(
                LearnedResolver::new(BanditPolicy::Ucb1 { c: 0.3 }, seed).with_prior(
                    |o| {
                        let rtt = 2.0 * o.features.first().copied().unwrap_or(40.0) / 1000.0;
                        0.2 / (0.2 + rtt + 0.05)
                    },
                    3.0,
                ),
            )
        }
    }
}

/// Runs one consensus experiment arm.
pub fn run_paxos(cfg: &PaxosConfig, regime: ProposerRegime) -> PaxosOutcome {
    let regions = 5;
    let hosts_needed = cfg.replicas + cfg.clients;
    let ts = TransitStubConfig {
        transit_routers: regions,
        stubs_per_transit: 1,
        hosts_per_stub: hosts_needed.div_ceil(regions),
        ..Default::default()
    };
    let mut trng = cb_simnet::rng::SimRng::seed_from(cfg.seed.wrapping_mul(0x1234_5677));
    let mut topo = Topology::transit_stub(&ts, &mut trng);

    // One replica per region: pick the first host of each domain.
    let mut replicas: Vec<NodeId> = Vec::new();
    for d in 0..regions as u32 {
        let host = topo
            .hosts()
            .find(|&h| topo.domain(h) == d)
            .expect("every region has hosts");
        replicas.push(host);
        if replicas.len() == cfg.replicas {
            break;
        }
    }
    for &r in &replicas {
        topo.set_access(
            r,
            AccessLink {
                up_bps: cfg.replica_uplink_bps,
                down_bps: 100_000_000,
            },
        );
    }
    // Clients: remaining hosts, round-robin across regions.
    let mut clients: Vec<NodeId> = Vec::new();
    let mut by_domain: Vec<Vec<NodeId>> = vec![Vec::new(); regions];
    for h in topo.hosts() {
        if !replicas.contains(&h) {
            by_domain[topo.domain(h) as usize].push(h);
        }
    }
    'outer: loop {
        for domain in by_domain.iter_mut() {
            if let Some(h) = domain.pop() {
                clients.push(h);
                if clients.len() == cfg.clients {
                    break 'outer;
                }
            }
        }
        if by_domain.iter().all(Vec::is_empty) {
            break;
        }
    }
    assert_eq!(clients.len(), cfg.clients, "not enough hosts for clients");

    let ownership = match regime {
        ProposerRegime::FixedLeader => SlotOwnership::FixedLeader { leader: 0 },
        _ => SlotOwnership::RoundRobin,
    };
    let group = replicas.clone();
    let seed = cfg.seed;
    let period = cfg.submit_period;
    let per_client = cfg.commands_per_client;
    let clients_clone = clients.clone();
    let mut sim = Sim::new(topo, seed, move |id| {
        let svc = if let Some(idx) = group.iter().position(|&r| r == id) {
            PaxosNode::Replica(Replica::new(id, idx as u64, group.clone(), ownership))
        } else if clients_clone.contains(&id) {
            PaxosNode::Client(Client::new(id, group.clone(), regime, period, per_client))
        } else {
            PaxosNode::Idle
        };
        RuntimeNode::new(
            svc,
            RuntimeConfig::new(resolver_for(regime, seed ^ ((id.0 as u64) << 24)))
                .controller_every(SimDuration::from_secs(5)),
        )
    });
    for &r in &replicas {
        sim.schedule_start(r, SimTime::ZERO);
    }
    for &c in &clients {
        sim.schedule_start(c, SimTime::ZERO);
    }
    sim.trace_mut().set_enabled(false);
    sim.run_until(SimTime::ZERO + cfg.horizon);

    let mut latencies: Vec<f64> = Vec::new();
    let mut resubmits = 0;
    for &c in &clients {
        let client = sim.actor(c).service().as_client().expect("client role");
        latencies.extend(client.latencies.iter());
        resubmits += client.resubmits;
    }
    let submitted = clients.len() * cfg.commands_per_client as usize;
    let committed = latencies.len();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = if committed == 0 {
        f64::INFINITY
    } else {
        latencies.iter().sum::<f64>() / committed as f64
    };
    let p99 = if committed == 0 {
        f64::INFINITY
    } else {
        latencies[((committed as f64 * 0.99).ceil() as usize).clamp(1, committed) - 1]
    };
    let mut per_replica_commits = Vec::new();
    let mut nacks = 0;
    for &r in &replicas {
        let rep = sim.actor(r).service().as_replica().expect("replica role");
        per_replica_commits.push(rep.committed_here);
        nacks += rep.nacks_seen;
    }
    PaxosOutcome {
        regime,
        committed,
        submitted,
        mean_latency_secs: mean,
        p99_latency_secs: p99,
        resubmits,
        nacks,
        per_replica_commits,
    }
}

/// The message type alias used by integration tests.
pub type Msg = PaxosMsg;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> PaxosConfig {
        PaxosConfig {
            clients: 5,
            commands_per_client: 20,
            horizon: SimDuration::from_secs(120),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn all_regimes_commit_everything() {
        for regime in [
            ProposerRegime::FixedLeader,
            ProposerRegime::RoundRobin,
            ProposerRegime::Resolved,
        ] {
            let out = run_paxos(&quick(2), regime);
            assert_eq!(out.committed, out.submitted, "{}: {out:?}", regime.label());
            assert!(out.mean_latency_secs.is_finite());
            assert!(out.p99_latency_secs >= out.mean_latency_secs * 0.5);
        }
    }

    #[test]
    fn fixed_leader_concentrates_load_round_robin_spreads_it() {
        let fixed = run_paxos(&quick(3), ProposerRegime::FixedLeader);
        assert!(fixed.per_replica_commits[0] > 0);
        assert!(
            fixed.per_replica_commits[1..].iter().all(|&c| c == 0),
            "{:?}",
            fixed.per_replica_commits
        );
        let rr = run_paxos(&quick(3), ProposerRegime::RoundRobin);
        let active = rr.per_replica_commits.iter().filter(|&&c| c > 0).count();
        assert_eq!(active, 5, "{:?}", rr.per_replica_commits);
    }

    #[test]
    fn learned_log_agrees_across_replicas() {
        let cfg = quick(4);
        let regime = ProposerRegime::RoundRobin;
        // Re-run and inspect learned logs directly.
        let out = run_paxos(&cfg, regime);
        assert_eq!(out.committed, out.submitted);
        // Safety proxy: no replica observed a ballot conflict in the
        // uncontended schedule.
        assert_eq!(out.nacks, 0, "unexpected ballot conflicts");
    }

    #[test]
    fn resolved_regime_is_not_slower_than_fixed_leader() {
        let mut fixed = 0.0;
        let mut resolved = 0.0;
        for seed in [5u64, 6] {
            fixed += run_paxos(&quick(seed), ProposerRegime::FixedLeader).mean_latency_secs;
            resolved += run_paxos(&quick(seed), ProposerRegime::Resolved).mean_latency_secs;
        }
        assert!(
            resolved <= fixed * 1.2,
            "resolved {resolved:.3}s much worse than fixed {fixed:.3}s"
        );
    }
}
