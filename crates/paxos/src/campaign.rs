//! Campaign registration: multi-Paxos under fault schedules.
//!
//! A small star-topology deployment — five replicas (`NodeId 0..5`) with
//! round-robin slot ownership, four clients (`NodeId 5..9`) — checked
//! against consensus's two defining invariants:
//!
//! * `paxos.agreement` (safety) — no two replicas ever learn different
//!   commands for the same slot, no matter what the fault schedule did;
//! * `paxos.progress` (liveness-by-horizon) — once faults heal and a
//!   majority is back, every submitted command commits before the horizon
//!   (clients resubmit on timeout, so transient faults only add latency).
//!
//! Agreement must hold under *any* plan; progress is only demanded of
//! plans that heal (the default plans do).

use crate::client::{Client, ProposerRegime};
use crate::node::PaxosNode;
use crate::replica::{Replica, SlotOwnership};
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode};
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;
use std::collections::BTreeMap;

/// The campaign-facing consensus scenario.
pub struct PaxosCampaign {
    /// Number of replicas (ids `0..replicas`).
    pub replicas: usize,
    /// Number of clients (ids `replicas..replicas+clients`).
    pub clients: usize,
    /// Commands per client.
    pub commands_per_client: u32,
    /// Run horizon.
    pub horizon: SimTime,
}

impl Default for PaxosCampaign {
    fn default() -> Self {
        PaxosCampaign {
            replicas: 5,
            clients: 4,
            commands_per_client: 10,
            horizon: SimTime::from_secs(180),
        }
    }
}

impl Scenario for PaxosCampaign {
    fn name(&self) -> &'static str {
        "paxos"
    }

    fn node_count(&self) -> usize {
        self.replicas + self.clients
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // Crash one rotating replica mid-run and restart it (majority
        // stays up), cut a different replica off behind a healed
        // partition, and add a loss window. Clients are never faulted.
        let r = self.replicas as u64;
        let victim = (seed % r) as u32;
        let cut = ((seed + 2) % r) as u32;
        let mut plan = FaultPlan::none()
            .crash(victim, 20_000)
            .restart(victim, 45_000)
            .loss(0.05, 10_000, 30_000);
        if cut != victim {
            let others: Vec<u32> = (0..self.node_count() as u32)
                .filter(|&i| i != cut)
                .collect();
            plan = plan.partition(&[cut], &others, 30_000, Some(60_000));
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let topo = Topology::star(self.node_count(), SimDuration::from_millis(20), 20_000_000);
        let group: Vec<NodeId> = (0..self.replicas as u32).map(NodeId).collect();
        let replicas = self.replicas;
        let clients = self.clients;
        let per_client = self.commands_per_client;
        let group_clone = group.clone();
        let mut sim: Sim<RuntimeNode<PaxosNode>> = Sim::new(topo, seed, move |id| {
            let svc = if (id.0 as usize) < replicas {
                PaxosNode::Replica(Replica::new(
                    id,
                    id.0 as u64,
                    group_clone.clone(),
                    SlotOwnership::RoundRobin,
                ))
            } else if (id.0 as usize) < replicas + clients {
                PaxosNode::Client(Client::new(
                    id,
                    group_clone.clone(),
                    ProposerRegime::RoundRobin,
                    SimDuration::from_millis(500),
                    per_client,
                ))
            } else {
                PaxosNode::Idle
            };
            RuntimeNode::new(
                svc,
                RuntimeConfig::new(Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 24))))
                    .controller_every(SimDuration::from_secs(5)),
            )
        });
        for i in 0..self.node_count() as u32 {
            sim.schedule_start(NodeId(i), SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0x5eed, self.horizon);

        // Agreement: across replicas, every learned slot maps to one
        // command. A restarted replica has a truncated log; that's fine —
        // what it *has* learned must still agree.
        let mut by_slot: BTreeMap<u64, (u64, NodeId)> = BTreeMap::new();
        let mut conflict = None;
        for &r in &group {
            let Some(rep) = sim.actor(r).service().as_replica() else {
                continue;
            };
            for (&slot, &cmd) in &rep.learned {
                match by_slot.get(&slot) {
                    Some(&(prev, who)) if prev != cmd.0 => {
                        conflict = Some(format!(
                            "slot {slot}: replica {} learned {prev:#x}, replica {} learned {:#x}",
                            who.0, r.0, cmd.0
                        ));
                    }
                    Some(_) => {}
                    None => {
                        by_slot.insert(slot, (cmd.0, r));
                    }
                }
            }
        }
        // Progress: every client committed everything it submitted.
        let mut committed = 0usize;
        for i in replicas as u32..(replicas + clients) as u32 {
            if let Some(c) = sim.actor(NodeId(i)).service().as_client() {
                committed += c.committed();
            }
        }
        let submitted = clients * per_client as usize;
        let verdicts = vec![
            OracleVerdict::check(
                "paxos.agreement",
                conflict.is_none(),
                conflict.unwrap_or_else(|| {
                    format!("{} learned slots consistent across replicas", by_slot.len())
                }),
            ),
            OracleVerdict::check(
                "paxos.progress",
                committed == submitted,
                format!("{committed}/{submitted} commands committed"),
            ),
        ];
        // Clients keep resubmit timers armed and the controller re-arms
        // forever; skip the quiescence oracle.
        RunReport::from_sim_quiescence(self.name(), seed, plan, &sim, self.horizon, verdicts, false)
            .with_telemetry(fleet_telemetry(&sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = PaxosCampaign::default();
        let r = s.run(1, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn default_plan_recovers() {
        let s = PaxosCampaign::default();
        let plan = s.default_plan(3);
        let r = s.run(3, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn majority_loss_stalls_progress_but_keeps_agreement() {
        let s = PaxosCampaign::default();
        // Permanently cut three of five replicas off: no quorum, no
        // progress — but agreement must survive.
        let others: Vec<u32> = (0..9u32).filter(|&i| i > 2).collect();
        let plan = FaultPlan::none().partition(&[0, 1, 2], &others, 5_000, None);
        let r = s.run(7, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        let failing = r.failing_oracles();
        assert!(failing.contains(&"paxos.progress"), "{failing:?}");
        assert!(!failing.contains(&"paxos.agreement"), "{failing:?}");
    }
}
