//! Mencius-flavored multi-leader KV: a replicated state machine over the
//! coordinated-Paxos core, with every replica proposing in its own slots.
//!
//! Where `crates/kv` routes all writes through a single elected leader,
//! this layer runs the paper's other deployment shape: **every replica is
//! a leader** for the log slots it owns (round-robin schedule — the
//! Mencius arrangement the core's implicit round-0 promise was built for),
//! and the client-facing choice is *which replica to submit through*
//! (`mencius.submitter`). Commands are tiny KV operations packed into the
//! consensus [`Command`] word; results flow back at **execution** time:
//!
//! * a replica executes its learned log strictly in slot order, applying
//!   puts to a local store and sending a [`PaxosMsg::Result`] to the
//!   submitting client for each executed command;
//! * a client is acked only when some replica's contiguous executed
//!   prefix reaches its command — *not* at accept-quorum. This is the
//!   linearizability-critical rule: a put acked at quorum time could be
//!   ordered after a later-invoked get that snuck into an earlier unfilled
//!   slot; execution-time acks make "acked" imply "every earlier slot
//!   decided", restoring real-time order.
//! * idle owners leave holes; any replica whose execution cursor stalls
//!   while later slots are learned **revokes** the missing slots with
//!   no-op proposals (explicit phase 1, so already-accepted values are
//!   adopted, never overwritten).
//!
//! Restart safety: a restarted replica has forgotten which of its owned
//! slots it used, and re-proposing at its base ballot could put a second
//! value under an already-decided ballot. Restarted replicas therefore
//! never use the implicit-promise fast path again — fresh commands go
//! through explicit phase 1 in a fresh owned slot beyond everything they
//! have learned. Two further amnesia hazards are closed the same way:
//! the incarnation's explicit ballots are floored above anything its
//! predecessor could have used (a forgotten bumped ballot reused for a
//! different value is the same double-decide), and the incarnation never
//! serves as an **acceptor** again — its forgotten promises and accepts
//! would let a second quorum form for a slot the old incarnation already
//! helped decide. It stays a learner and proposer, which a 5-replica
//! group tolerates: quorums only need 3 of the 4 intact acceptors.

use crate::proto::{Command, PaxosMsg};
use crate::replica::{Replica, ReplicaCheckpoint, SlotOwnership};
use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode, Service, ServiceCtx};
use cb_harness::linearizability::{check_history, Op, OpKind, INIT_VALUE};
use cb_harness::overload;
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;
use cb_telemetry::keys;
use cb_workload::{ArrivalEngine, WorkloadProfile};
use std::collections::BTreeMap;

/// Replica execution/revocation tick tag.
pub const MENCIUS_TICK: u64 = 1;

/// Client next-operation timer tag.
pub const MOP_TIMER: u64 = 10;

/// Client retry-sweep timer tag.
pub const MSWEEP_TIMER: u64 = 11;

/// Workload-generator window timer tag.
pub const MGEN_WINDOW: u64 = 30;

/// Workload-generator retry-sweep timer tag.
pub const MGEN_SWEEP: u64 = 31;

/// Ticks the execution cursor may stall (with later slots learned) before
/// the replica revokes the missing slots with no-ops.
const REVOKE_AFTER_TICKS: u32 = 3;

/// Think time between an ack and a session's next operation.
const THINK: SimDuration = SimDuration::from_millis(500);

/// Operations unacknowledged for this long are resubmitted.
const RESUBMIT_AFTER: SimDuration = SimDuration::from_secs(3);

/// KV operation kinds packed into a [`Command`].
const KIND_PUT: u8 = 0;
const KIND_GET: u8 = 1;
const KIND_NOOP: u8 = 2;
/// An aggregate bulk marker from the open-loop workload generator: the
/// command word carries `(generator, seq, region)`; the user-request
/// *count* it stands for stays in the generator's local ledger, so a
/// window of thousands of arrivals costs one consensus slot per region.
const KIND_BULK: u8 = 3;

/// Packs a KV operation into a consensus command word: client id in the
/// high 32 bits (keeping [`Command::client`] routing intact), then
/// `[seq:16][kind:8][key:8]` in the low 32.
fn encode(client: NodeId, seq: u16, kind: u8, key: u8) -> Command {
    Command(((client.0 as u64) << 32) | ((seq as u64) << 16) | ((kind as u64) << 8) | key as u64)
}

/// Unpacks the `(seq, kind, key)` triple of a command word.
fn decode(cmd: Command) -> (u16, u8, u8) {
    ((cmd.0 >> 16) as u16, (cmd.0 >> 8) as u8, cmd.0 as u8)
}

/// The value a put writes, derived at execution: session id over sequence,
/// never zero, unique per operation — so any read result names exactly one
/// write (or the initial [`INIT_VALUE`]).
fn put_value(client: NodeId, seq: u16) -> u64 {
    ((client.0 as u64) << 32) | seq as u64
}

/// A no-op used to revoke an unfilled slot. It carries the *revoking
/// replica's* id in the client field so the core's commit ack routes to a
/// replica (which ignores it) instead of an arbitrary node.
fn noop(owner: NodeId) -> Command {
    encode(owner, 0, KIND_NOOP, 0)
}

type Cx<'a, 'b> = ServiceCtx<'a, 'b, PaxosMsg, ReplicaCheckpoint>;

/// A Mencius KV replica: the consensus core plus an executed state machine.
pub struct MenciusReplica {
    /// The coordinated-Paxos core (acceptor/learner/proposer).
    pub core: Replica,
    /// First log slot not yet executed.
    pub exec_cursor: u64,
    /// The executed KV state.
    pub store: BTreeMap<u8, u64>,
    /// client id -> highest executed put sequence (duplicate suppression:
    /// a resubmitted put may occupy two slots, and re-applying the earlier
    /// copy after an intervening write would clobber it).
    last_exec: BTreeMap<u32, u16>,
    /// Set when this incarnation started with the clock already running —
    /// the implicit-promise fast path is poisoned for it (see module docs).
    pub restarted: bool,
    /// Restarted-path proposal cursor: the next fresh command goes in an
    /// owned slot at or after this (keeps concurrent submissions from
    /// contending for the same explicit-phase-1 slot).
    restarted_next: u64,
    exec_cursor_at_tick: u64,
    stall_ticks: u32,
    /// Counts stall epochs; rotates which replica is the designated
    /// revoker of a hole so revocations do not duel.
    revoke_epoch: u64,
    /// Slots this replica revoked with no-ops (report color).
    pub revocations: u64,
}

impl MenciusReplica {
    /// Creates replica `index` of `group` under the round-robin schedule.
    pub fn new(me: NodeId, index: u64, group: Vec<NodeId>) -> Self {
        MenciusReplica {
            core: Replica::new(me, index, group, SlotOwnership::RoundRobin),
            exec_cursor: 0,
            store: BTreeMap::new(),
            last_exec: BTreeMap::new(),
            restarted: false,
            restarted_next: 0,
            exec_cursor_at_tick: 0,
            stall_ticks: 0,
            revoke_epoch: 0,
            revocations: 0,
        }
    }

    fn me(&self) -> NodeId {
        self.core.group[self.core.index as usize]
    }

    fn highest_learned(&self) -> Option<u64> {
        self.core.learned.keys().next_back().copied()
    }

    /// Executes every contiguously learned slot, sending execution results
    /// to the submitting clients.
    fn execute_ready(&mut self, ctx: &mut Cx<'_, '_>) {
        while let Some(&cmd) = self.core.learned.get(&self.exec_cursor) {
            self.exec_cursor += 1;
            let (seq, kind, key) = decode(cmd);
            match kind {
                KIND_PUT => {
                    let c = cmd.client();
                    // Duplicate puts from resubmission: the closed-loop
                    // session makes put sequences monotone in slot order,
                    // so `seq <= last_exec` identifies a stale copy.
                    if self.last_exec.get(&c.0).copied().unwrap_or(0) < seq {
                        self.last_exec.insert(c.0, seq);
                        self.store.insert(key, put_value(c, seq));
                    }
                    ctx.send(
                        c,
                        PaxosMsg::Result {
                            cmd,
                            value: put_value(c, seq),
                        },
                    );
                }
                KIND_GET => {
                    let value = self.store.get(&key).copied().unwrap_or(INIT_VALUE);
                    ctx.send(cmd.client(), PaxosMsg::Result { cmd, value });
                }
                KIND_BULK => {
                    // Aggregate workload batch: no state-machine effect,
                    // but the generator is acked at execution time like any
                    // client (duplicates from resubmission dedup there).
                    ctx.send(cmd.client(), PaxosMsg::Result { cmd, value: 0 });
                }
                _ => {} // no-op filler
            }
        }
    }

    /// A fresh client submission. Non-restarted replicas use the owned-slot
    /// fast path, fast-forwarded past everything learned so the proposal
    /// cannot land in the past — and no-op-fill the owned slots the
    /// fast-forward jumps over (Mencius "skip" messages), so the holes are
    /// closed at creation instead of waiting for revocation. Restarted
    /// replicas run explicit phase 1 in a fresh owned slot beyond their
    /// whole log view.
    fn on_submit(&mut self, ctx: &mut Cx<'_, '_>, cmd: Command) {
        let floor = self.highest_learned().map_or(0, |h| h + 1);
        if self.restarted {
            if self
                .highest_learned()
                .is_some_and(|h| self.exec_cursor <= h)
            {
                // Still copying history: this replica's log view is stale,
                // and proposing at `floor` would contend for long-decided
                // slots (the command silently loses to the adopted value).
                // Hand the submission to an intact peer instead.
                let peers: Vec<NodeId> = self
                    .core
                    .group
                    .iter()
                    .copied()
                    .filter(|&p| p != self.me())
                    .collect();
                let peer = peers[ctx.rng().gen_below(peers.len() as u64) as usize];
                ctx.send(peer, PaxosMsg::Submit { cmd });
                return;
            }
            let from = (floor + self.core.group.len() as u64).max(self.restarted_next);
            if let Some(slot) = self.core.first_owned_at_or_after(from) {
                self.restarted_next = slot + 1;
                self.core.propose_in_slot(ctx, slot, cmd);
            }
        } else {
            let skipped = self.core.fast_forward_owned(floor);
            let filler = noop(self.me());
            for slot in skipped {
                self.core.propose_base_in_slot(ctx, slot, filler);
            }
            self.core.propose_owned(ctx, cmd);
        }
    }

    /// Periodic tick: detect a stalled execution cursor and revoke the
    /// missing slots below the learned frontier with no-ops. Exactly one
    /// replica is the designated revoker of a hole per stall epoch —
    /// rotating from the hole's owner (the replica most likely to be the
    /// dead one) — so revocations do not duel over ballots.
    pub fn tick(&mut self, ctx: &mut Cx<'_, '_>) {
        if self.restarted {
            // An amnesiac's holes are its own, not the cluster's: revoking
            // them would storm phase 1 over the entire decided history
            // (and congest everyone else into stalling). Copy the decided
            // log from a peer instead — `exec_cursor` is exactly the first
            // slot this replica is missing.
            if self
                .highest_learned()
                .is_some_and(|h| h >= self.exec_cursor)
            {
                let peers: Vec<NodeId> = self
                    .core
                    .group
                    .iter()
                    .copied()
                    .filter(|&p| p != self.me())
                    .collect();
                let peer = peers[ctx.rng().gen_below(peers.len() as u64) as usize];
                ctx.send(
                    peer,
                    PaxosMsg::LearnReq {
                        from_slot: self.exec_cursor,
                    },
                );
            }
            self.execute_ready(ctx);
            let delay = SimDuration::from_millis(400 + ctx.rng().gen_below(200));
            ctx.set_timer(delay, MENCIUS_TICK);
            return;
        }
        if self.exec_cursor != self.exec_cursor_at_tick {
            self.exec_cursor_at_tick = self.exec_cursor;
            self.stall_ticks = 0;
        } else if let Some(h) = self.highest_learned() {
            if h >= self.exec_cursor {
                self.stall_ticks += 1;
                if self.stall_ticks >= REVOKE_AFTER_TICKS {
                    self.stall_ticks = 0;
                    self.revoke_epoch += 1;
                    let replicas = self.core.group.len() as u64;
                    let missing: Vec<u64> = (self.exec_cursor..h)
                        .filter(|s| !self.core.learned.contains_key(s))
                        .collect();
                    let filler = noop(self.me());
                    for slot in missing {
                        let revoker = (slot % replicas + self.revoke_epoch) % replicas;
                        if revoker == self.core.index {
                            self.revocations += 1;
                            self.core.propose_in_slot(ctx, slot, filler);
                        }
                    }
                }
            }
        }
        self.execute_ready(ctx);
        let delay = SimDuration::from_millis(400 + ctx.rng().gen_below(200));
        ctx.set_timer(delay, MENCIUS_TICK);
    }

    /// Dispatches one message through the core, then drains newly
    /// executable slots.
    pub fn handle(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, msg: PaxosMsg) {
        match msg {
            PaxosMsg::Submit { cmd } => self.on_submit(ctx, cmd),
            // A restarted incarnation has forgotten its promises and
            // accepted values; answering phase 1/2 again could seat a
            // second quorum under a slot it already helped decide. It
            // stays a learner and proposer only.
            PaxosMsg::Prepare { .. } | PaxosMsg::Accept { .. } if self.restarted => {}
            other => self.core.handle(ctx, from, other),
        }
        self.execute_ready(ctx);
    }
}

/// What a Mencius session currently has in flight.
enum MInFlight {
    Idle,
    /// The command word, submit time, and whether it is a put.
    Op {
        cmd: Command,
        at: SimTime,
    },
}

/// One closed-loop Mencius KV client session.
pub struct MenciusSession {
    me: NodeId,
    /// The replica group, in index order.
    pub group: Vec<NodeId>,
    /// Keys are drawn from `0..keys`.
    pub keys: u8,
    /// Operations to run before going quiet.
    pub target: u32,
    seq: u16,
    inflight: MInFlight,
    open_idx: usize,
    submitted_to: NodeId,
    /// Every operation this session invoked, in invoke order.
    pub history: Vec<Op>,
    /// Operations resubmitted after a timeout.
    pub resubmits: u64,
}

impl MenciusSession {
    /// Creates a session running `target` ops over `keys` keys.
    pub fn new(me: NodeId, group: Vec<NodeId>, keys: u8, target: u32) -> Self {
        MenciusSession {
            me,
            group,
            keys,
            target,
            seq: 0,
            inflight: MInFlight::Idle,
            open_idx: 0,
            submitted_to: NodeId(0),
            history: Vec::new(),
            resubmits: 0,
        }
    }

    /// Completed operations (acked, so their history windows are closed).
    pub fn completed(&self) -> usize {
        self.history
            .iter()
            .filter(|op| op.respond_ns.is_some())
            .count()
    }

    /// Schedules the opening timers.
    pub fn on_start(&mut self, ctx: &mut Cx<'_, '_>) {
        for &r in &self.group.clone() {
            ctx.probe(r);
        }
        let first = SimDuration::from_millis(200 + ctx.rng().gen_below(800));
        ctx.set_timer(first, MOP_TIMER);
        ctx.set_timer(SimDuration::from_secs(1), MSWEEP_TIMER);
    }

    /// The exposed submitter choice: which replica carries this command.
    fn pick_submitter(&mut self, ctx: &mut Cx<'_, '_>) -> NodeId {
        let now = ctx.now();
        let options: Vec<OptionDesc> = self
            .group
            .iter()
            .map(|&r| {
                let latency_ms = ctx
                    .net_model()
                    .predicted_latency(r, now)
                    .map_or(40.0, |(l, _)| l.as_millis_f64());
                OptionDesc::with_features(r.0 as u64, vec![latency_ms])
            })
            .collect();
        let i = ctx.choose("mencius.submitter", ContextKey::default(), &options);
        self.group[i]
    }

    /// Invokes the next operation, if idle and under budget.
    pub fn next_op(&mut self, ctx: &mut Cx<'_, '_>) {
        if !matches!(self.inflight, MInFlight::Idle) || self.seq as u32 >= self.target {
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        let key = ctx.rng().gen_below(self.keys as u64) as u8;
        let now = ctx.now();
        let cmd = if ctx.rng().gen_below(2) == 0 {
            self.open_idx = self.history.len();
            self.history.push(Op::pending_write(
                self.me.0 as u64,
                key as u64,
                put_value(self.me, seq),
                now.as_nanos(),
            ));
            encode(self.me, seq, KIND_PUT, key)
        } else {
            self.open_idx = self.history.len();
            self.history.push(Op::pending_read(
                self.me.0 as u64,
                key as u64,
                now.as_nanos(),
            ));
            encode(self.me, seq, KIND_GET, key)
        };
        self.inflight = MInFlight::Op { cmd, at: now };
        let to = self.pick_submitter(ctx);
        self.submitted_to = to;
        ctx.send(to, PaxosMsg::Submit { cmd });
    }

    /// Handles an execution result (the first replica to execute wins;
    /// later copies are ignored).
    pub fn on_result(&mut self, ctx: &mut Cx<'_, '_>, cmd: Command, value: u64) {
        let MInFlight::Op { cmd: want, at } = self.inflight else {
            return;
        };
        if cmd != want {
            return;
        }
        let (_, kind, _) = decode(cmd);
        let op = &mut self.history[self.open_idx];
        if kind == KIND_GET {
            op.kind = OpKind::Read(value);
        }
        op.respond_ns = Some(ctx.now().as_nanos());
        let lat = ctx.now().saturating_since(at).as_secs_f64();
        ctx.feedback(
            "mencius.submitter",
            ContextKey::default(),
            self.submitted_to.0 as u64,
            0.2 / (0.2 + lat),
        );
        self.inflight = MInFlight::Idle;
        ctx.set_timer(THINK, MOP_TIMER);
    }

    /// Resubmits the in-flight command (same word — duplicates are deduped
    /// at execution) through a fresh submitter choice.
    pub fn sweep(&mut self, ctx: &mut Cx<'_, '_>) {
        let now = ctx.now();
        let resend = match &mut self.inflight {
            MInFlight::Op { cmd, at } if now.saturating_since(*at) > RESUBMIT_AFTER => {
                *at = now;
                Some(*cmd)
            }
            _ => None,
        };
        if let Some(cmd) = resend {
            self.resubmits += 1;
            let to = self.pick_submitter(ctx);
            self.submitted_to = to;
            ctx.send(to, PaxosMsg::Submit { cmd });
        }
        ctx.set_timer(SimDuration::from_secs(1), MSWEEP_TIMER);
    }

    /// True once every targeted op has been invoked and acked.
    pub fn done(&self) -> bool {
        self.seq as u32 >= self.target && matches!(self.inflight, MInFlight::Idle)
    }
}

/// One outstanding aggregate bulk command.
struct BulkInFlight {
    /// User requests this command stands for.
    count: u64,
    /// Send attempts so far (the first submission is attempt 1).
    attempt: u32,
    /// Last submission time.
    at: SimTime,
    /// The originating region (drives the submitter rotation).
    region: u64,
}

/// The open-loop workload generator for the Mencius deployment: the same
/// [`ArrivalEngine`] population model as the kv generator, but driven
/// through the scenario's *existing entry point* — each loaded region's
/// window total rides one `KIND_BULK` consensus command, acked at
/// execution time and resubmitted with backoff within the profile's retry
/// budget. Consensus work therefore scales with windows x regions, never
/// with users.
pub struct MenciusLoadGen {
    me: NodeId,
    /// The replica group the bulk commands are submitted through.
    pub group: Vec<NodeId>,
    engine: ArrivalEngine,
    windows: u64,
    emitted: u64,
    seq: u16,
    /// seq -> in-flight bulk ledger (the counts never travel).
    outstanding: BTreeMap<u16, BulkInFlight>,
    /// Total user requests offered (report color).
    pub offered: u64,
    /// Total per-request send attempts, retries included.
    pub attempts: u64,
    /// Requests whose bulk command committed and executed.
    pub served: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,
}

impl MenciusLoadGen {
    /// A generator emitting `windows` windows of `profile` traffic through
    /// the replica `group`.
    pub fn new(
        me: NodeId,
        group: Vec<NodeId>,
        profile: WorkloadProfile,
        seed: u64,
        windows: u64,
    ) -> Self {
        MenciusLoadGen {
            me,
            group,
            engine: ArrivalEngine::new(profile, seed),
            windows,
            emitted: 0,
            seq: 0,
            outstanding: BTreeMap::new(),
            offered: 0,
            attempts: 0,
            served: 0,
            failed: 0,
        }
    }

    /// Startup: window 0 immediately, then the window clock plus a 1 s
    /// resubmission sweep.
    pub fn on_start(&mut self, ctx: &mut Cx<'_, '_>) {
        self.emit_window(ctx);
        if self.emitted < self.windows {
            let w = self.engine.profile().window;
            ctx.set_timer(w, MGEN_WINDOW);
        }
        ctx.set_timer(SimDuration::from_secs(1), MGEN_SWEEP);
    }

    /// The window timer: one engine step, one bulk command per loaded
    /// region.
    pub fn on_window(&mut self, ctx: &mut Cx<'_, '_>) {
        self.emit_window(ctx);
        if self.emitted < self.windows {
            let w = self.engine.profile().window;
            ctx.set_timer(w, MGEN_WINDOW);
        }
    }

    fn emit_window(&mut self, ctx: &mut Cx<'_, '_>) {
        if self.emitted >= self.windows {
            return;
        }
        let w = self.engine.window(self.emitted);
        self.emitted += 1;
        self.offered += w.total;
        ctx.count(keys::WORKLOAD_OFFERED, w.total);
        let now = ctx.now();
        for (region, &count) in w.per_region.clone().iter().enumerate() {
            if count == 0 {
                continue;
            }
            self.seq += 1;
            let seq = self.seq;
            self.outstanding.insert(
                seq,
                BulkInFlight {
                    count,
                    attempt: 1,
                    at: now,
                    region: region as u64,
                },
            );
            self.submit(ctx, seq, region as u64, 1, count);
        }
    }

    fn submit(&mut self, ctx: &mut Cx<'_, '_>, seq: u16, region: u64, attempt: u32, count: u64) {
        // Rotate region -> submitter per seq so the Zipf-heavy region does
        // not pin one replica; retries rotate further by attempt.
        let idx = (region + seq as u64 + attempt as u64 - 1) % self.group.len() as u64;
        let to = self.group[idx as usize];
        self.attempts += count;
        ctx.count(keys::WORKLOAD_ATTEMPTS, count);
        let cmd = encode(self.me, seq, KIND_BULK, region as u8);
        ctx.send(to, PaxosMsg::Submit { cmd });
    }

    /// An execution-time ack: credit the whole batch as served. Later
    /// copies of a resubmitted bulk find no ledger entry and fall through.
    pub fn on_result(&mut self, ctx: &mut Cx<'_, '_>, cmd: Command) {
        let (seq, kind, _) = decode(cmd);
        if kind != KIND_BULK || cmd.client() != self.me {
            return;
        }
        if let Some(b) = self.outstanding.remove(&seq) {
            self.served += b.count;
            ctx.count(keys::WORKLOAD_SERVED, b.count);
        }
    }

    /// The resubmission sweep: any bulk unacked past its backoff goes out
    /// again, within the profile's retry budget.
    pub fn on_sweep(&mut self, ctx: &mut Cx<'_, '_>) {
        let now = ctx.now();
        let p = self.engine.profile();
        let budget = p.retry_budget;
        let mut resend: Vec<(u16, u64, u32, u64)> = Vec::new();
        let mut exhausted: Vec<u16> = Vec::new();
        for (&seq, b) in &self.outstanding {
            // Exponential backoff on the consensus resubmission timeout.
            let wait = RESUBMIT_AFTER.mul_f64((1u64 << (b.attempt - 1).min(4)) as f64);
            if now.saturating_since(b.at) <= wait {
                continue;
            }
            match budget {
                Some(max) if b.attempt >= max => exhausted.push(seq),
                _ => resend.push((seq, b.region, b.attempt + 1, b.count)),
            }
        }
        for seq in exhausted {
            if let Some(b) = self.outstanding.remove(&seq) {
                self.failed += b.count;
                ctx.count(keys::WORKLOAD_FAILED, b.count);
            }
        }
        for (seq, region, attempt, count) in resend {
            ctx.count(keys::WORKLOAD_RETRIES, count);
            if let Some(b) = self.outstanding.get_mut(&seq) {
                b.attempt = attempt;
                b.at = now;
            }
            self.submit(ctx, seq, region, attempt, count);
        }
        ctx.set_timer(SimDuration::from_secs(1), MGEN_SWEEP);
    }
}

/// A node of the Mencius KV deployment.
pub enum MenciusNode {
    /// A replica (consensus core + executed state machine).
    Replica(MenciusReplica),
    /// A client session.
    Client(MenciusSession),
    /// The aggregate open-loop workload generator.
    Load(MenciusLoadGen),
    /// A host that takes no part (topology filler).
    Idle,
}

impl MenciusNode {
    /// The replica inside, if this is one.
    pub fn as_replica(&self) -> Option<&MenciusReplica> {
        match self {
            MenciusNode::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The session inside, if this is one.
    pub fn as_session(&self) -> Option<&MenciusSession> {
        match self {
            MenciusNode::Client(s) => Some(s),
            _ => None,
        }
    }

    /// The workload generator inside, if this is one.
    pub fn as_loadgen(&self) -> Option<&MenciusLoadGen> {
        match self {
            MenciusNode::Load(g) => Some(g),
            _ => None,
        }
    }
}

impl Service for MenciusNode {
    type Msg = PaxosMsg;
    type Checkpoint = ReplicaCheckpoint;

    fn on_start(&mut self, ctx: &mut Cx<'_, '_>) {
        match self {
            MenciusNode::Replica(r) => {
                // An incarnation starting mid-run is a restart: the
                // owned-slot fast path is no longer safe for it.
                if ctx.now() > SimTime::ZERO {
                    r.restarted = true;
                    // Floor this incarnation's explicit ballots above any
                    // round the forgotten one can have reached (ballot
                    // duels bump rounds one at a time; wall-clock millis
                    // dwarf that).
                    r.core.set_ballot_round_floor(ctx.now().as_millis() + 1);
                }
                let first = SimDuration::from_millis(50 + ctx.rng().gen_below(200));
                ctx.set_timer(first, MENCIUS_TICK);
            }
            MenciusNode::Client(s) => s.on_start(ctx),
            MenciusNode::Load(g) => g.on_start(ctx),
            MenciusNode::Idle => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Cx<'_, '_>, tag: u64) {
        match self {
            MenciusNode::Replica(r) => {
                if tag == MENCIUS_TICK {
                    r.tick(ctx);
                }
            }
            MenciusNode::Client(s) => match tag {
                MOP_TIMER => s.next_op(ctx),
                MSWEEP_TIMER if !s.done() => s.sweep(ctx),
                _ => {}
            },
            MenciusNode::Load(g) => match tag {
                MGEN_WINDOW => g.on_window(ctx),
                MGEN_SWEEP => g.on_sweep(ctx),
                _ => {}
            },
            MenciusNode::Idle => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, msg: PaxosMsg) {
        match self {
            MenciusNode::Replica(r) => r.handle(ctx, from, msg),
            MenciusNode::Client(s) => {
                if let PaxosMsg::Result { cmd, value } = msg {
                    s.on_result(ctx, cmd, value);
                }
            }
            MenciusNode::Load(g) => {
                if let PaxosMsg::Result { cmd, .. } = msg {
                    g.on_result(ctx, cmd);
                }
            }
            MenciusNode::Idle => {}
        }
    }

    fn checkpoint(
        &self,
        _model: &cb_core::model::state::StateModel<ReplicaCheckpoint>,
    ) -> ReplicaCheckpoint {
        match self {
            MenciusNode::Replica(r) => ReplicaCheckpoint {
                learned: r.core.learned.len() as u64,
                log_high: r.core.learned.keys().next_back().map_or(0, |&s| s + 1),
            },
            _ => ReplicaCheckpoint {
                learned: 0,
                log_high: 0,
            },
        }
    }

    fn neighbors(&self) -> Vec<NodeId> {
        match self {
            MenciusNode::Replica(r) => r.core.group_peers(),
            _ => Vec::new(),
        }
    }
}

/// The campaign-facing Mencius KV scenario.
pub struct MenciusCampaign {
    /// Number of replicas (ids `0..replicas`).
    pub replicas: usize,
    /// Number of client sessions (ids `replicas..replicas+clients`).
    pub clients: usize,
    /// Operations per session.
    pub ops_per_client: u32,
    /// Distinct keys the workload touches.
    pub keys: u8,
    /// Run horizon.
    pub horizon: SimTime,
    /// Layer stalls, delay spikes, and heavier loss onto the default plan.
    pub storm: bool,
    /// Drive the deployment with an open-loop aggregate workload through
    /// the consensus entry point: one extra generator node submitting
    /// `KIND_BULK` commands, judged by the goodput-floor oracle. Driven by
    /// `campaign --workload <profile>`.
    pub workload: Option<WorkloadProfile>,
}

impl Default for MenciusCampaign {
    fn default() -> Self {
        MenciusCampaign {
            replicas: 5,
            clients: 4,
            ops_per_client: 10,
            keys: 4,
            horizon: SimTime::from_secs(180),
            storm: false,
            workload: None,
        }
    }
}

impl Scenario for MenciusCampaign {
    fn name(&self) -> &'static str {
        "mencius"
    }

    fn node_count(&self) -> usize {
        // The workload generator, when present, is the last node.
        self.replicas + self.clients + usize::from(self.workload.is_some())
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        let r = self.replicas as u64;
        let victim = (seed % r) as u32;
        let cut = ((seed + 2) % r) as u32;
        let mut plan = FaultPlan::none()
            .crash(victim, 20_000)
            .restart(victim, 45_000)
            .loss(0.05, 10_000, 30_000);
        if cut != victim {
            let others: Vec<u32> = (0..self.node_count() as u32)
                .filter(|&i| i != cut)
                .collect();
            plan = plan.partition(&[cut], &others, 30_000, Some(60_000));
        }
        if self.storm {
            let stalled = ((seed + 3) % r) as u32;
            plan = plan
                .stall(stalled, 12_000, 22_000)
                .delayspike(150, 8_000, 25_000)
                .loss(0.10, 65_000, 80_000);
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let topo = Topology::star(self.node_count(), SimDuration::from_millis(20), 20_000_000);
        let group: Vec<NodeId> = (0..self.replicas as u32).map(NodeId).collect();
        let replicas = self.replicas;
        let clients = self.clients;
        let per_client = self.ops_per_client;
        let keys = self.keys;
        let group_clone = group.clone();
        let workload = self.workload.clone();
        // Offered load ends at two-thirds of the horizon, leaving a tail
        // in which the consensus pipeline must drain outstanding bulks.
        let windows = workload.as_ref().map_or(0, |p| {
            (self.horizon.as_nanos() * 2 / 3) / p.window.as_nanos().max(1)
        });
        let mut sim: Sim<RuntimeNode<MenciusNode>> = Sim::new(topo, seed, move |id| {
            let svc = if (id.0 as usize) < replicas {
                MenciusNode::Replica(MenciusReplica::new(id, id.0 as u64, group_clone.clone()))
            } else if (id.0 as usize) < replicas + clients {
                MenciusNode::Client(MenciusSession::new(
                    id,
                    group_clone.clone(),
                    keys,
                    per_client,
                ))
            } else if let Some(p) = workload
                .clone()
                .filter(|_| id.0 as usize == replicas + clients)
            {
                MenciusNode::Load(MenciusLoadGen::new(
                    id,
                    group_clone.clone(),
                    p,
                    seed,
                    windows,
                ))
            } else {
                MenciusNode::Idle
            };
            RuntimeNode::new(
                svc,
                RuntimeConfig::new(Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 24))))
                    .controller_every(SimDuration::from_secs(5)),
            )
        });
        for i in 0..self.node_count() as u32 {
            sim.schedule_start(NodeId(i), SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0x5eed, self.horizon);

        // Agreement: across replicas, every learned slot maps to one
        // command (a restarted replica's truncated log must still agree).
        let mut by_slot: BTreeMap<u64, (u64, NodeId)> = BTreeMap::new();
        let mut conflict = None;
        for &r in &group {
            let Some(rep) = sim.actor(r).service().as_replica() else {
                continue;
            };
            for (&slot, &cmd) in &rep.core.learned {
                match by_slot.get(&slot) {
                    Some(&(prev, who)) if prev != cmd.0 => {
                        conflict = Some(format!(
                            "slot {slot}: replica {} learned {prev:#x}, replica {} learned {:#x}",
                            who.0, r.0, cmd.0
                        ));
                    }
                    Some(_) => {}
                    None => {
                        by_slot.insert(slot, (cmd.0, r));
                    }
                }
            }
        }
        // Linearizability: the WGL checker over all sessions' histories.
        let mut history: Vec<Op> = Vec::new();
        let mut completed = 0usize;
        for i in replicas as u32..(replicas + clients) as u32 {
            if let Some(s) = sim.actor(NodeId(i)).service().as_session() {
                history.extend(s.history.iter().cloned());
                completed += s.completed();
            }
        }
        let lin = match check_history(&history) {
            Ok(()) => OracleVerdict::pass(
                "mencius.linearizable",
                format!("{} ops linearizable", history.len()),
            ),
            Err(v) => OracleVerdict::fail("mencius.linearizable", v.detail()),
        };
        let target = clients * per_client as usize;
        let fleet = fleet_telemetry(&sim);
        let mut verdicts = vec![
            OracleVerdict::check(
                "mencius.agreement",
                conflict.is_none(),
                conflict.unwrap_or_else(|| {
                    format!("{} learned slots consistent across replicas", by_slot.len())
                }),
            ),
            lin,
            OracleVerdict::check(
                "mencius.progress",
                completed >= target,
                format!("{completed}/{target} ops completed"),
            ),
        ];
        if let Some(p) = &self.workload {
            verdicts.push(overload::goodput_floor(&fleet, p.goodput_floor));
        }
        RunReport::from_sim_quiescence(self.name(), seed, plan, &sim, self.horizon, verdicts, false)
            .with_telemetry(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_packing_round_trips() {
        let cmd = encode(NodeId(7), 513, KIND_GET, 3);
        assert_eq!(cmd.client(), NodeId(7));
        assert_eq!(decode(cmd), (513, KIND_GET, 3));
        assert_ne!(put_value(NodeId(7), 1), INIT_VALUE);
    }

    #[test]
    fn fault_free_run_passes() {
        let s = MenciusCampaign::default();
        let r = s.run(1, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn default_plan_recovers() {
        let s = MenciusCampaign::default();
        let plan = s.default_plan(3);
        let r = s.run(3, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn storm_keeps_agreement_and_linearizability() {
        let s = MenciusCampaign {
            storm: true,
            ..MenciusCampaign::default()
        };
        let plan = s.default_plan(5);
        let r = s.run(5, &plan);
        let failing = r.failing_oracles();
        assert!(!failing.contains(&"mencius.agreement"), "{:?}", r.verdicts);
        assert!(
            !failing.contains(&"mencius.linearizable"),
            "{:?}",
            r.verdicts
        );
    }

    #[test]
    fn workload_arm_commits_aggregate_bulks_above_the_goodput_floor() {
        let s = MenciusCampaign {
            workload: WorkloadProfile::by_name("steady"),
            ..MenciusCampaign::default()
        };
        let r = s.run(9, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
        let offered = r.telemetry.counter(keys::WORKLOAD_OFFERED);
        let served = r.telemetry.counter(keys::WORKLOAD_SERVED);
        assert!(offered > 10_000, "offered only {offered}");
        assert!(
            served as f64 >= 0.5 * offered as f64,
            "served {served} of {offered}"
        );
        // Aggregate flows: consensus work scales with windows, not users
        // (per-request consensus would cost several events per op; the
        // bulk path stays well under one).
        assert!(
            r.events_processed < offered / 4,
            "{} events for {offered} offered ops",
            r.events_processed
        );
    }

    #[test]
    fn majority_loss_stalls_progress_but_keeps_safety() {
        let s = MenciusCampaign::default();
        let others: Vec<u32> = (0..9u32).filter(|&i| i > 2).collect();
        let plan = FaultPlan::none().partition(&[0, 1, 2], &others, 5_000, None);
        let r = s.run(7, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        let failing = r.failing_oracles();
        assert!(failing.contains(&"mencius.progress"), "{failing:?}");
        assert!(!failing.contains(&"mencius.agreement"), "{failing:?}");
        assert!(!failing.contains(&"mencius.linearizable"), "{failing:?}");
    }
}
